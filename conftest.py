"""Ensure the in-tree package is importable when running pytest directly.

The package is normally installed with ``pip install -e .`` (or
``python setup.py develop`` on environments whose setuptools predates
PEP 660); this shim makes ``pytest`` work from a clean checkout too.
"""

import sys
from pathlib import Path

_ROOT = Path(__file__).parent
_SRC = _ROOT / "src"
for path in (str(_SRC), str(_ROOT)):
    if path not in sys.path:
        sys.path.insert(0, path)
