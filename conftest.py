"""Ensure the in-tree package is importable when running pytest directly.

The package is normally installed with ``pip install -e .`` (or
``python setup.py develop`` on environments whose setuptools predates
PEP 660); this shim makes ``pytest`` work from a clean checkout too.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
