"""Bringing your own data: fact checking a hand-built corpus.

Shows the public data model end to end, without the synthetic generators:
a small corpus of claims about a fictive product launch is assembled from
raw sources / documents / claims, persisted to JSON, reloaded, and then
validated through a session configured with batching (§6.2) and early
termination (§6.1) — the spec references the corpus *file*, so the entire
run is declaratively reproducible from the JSON pair alone.

Run with::

    python examples/custom_corpus.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    Claim,
    ClaimLink,
    Document,
    FactCheckSession,
    FactDatabase,
    SessionSpec,
    Source,
    Stance,
    save_database,
)


def build_corpus() -> FactDatabase:
    """A hand-written corpus: 3 outlets and a rumour mill cover 6 claims."""
    sources = [
        # features: [editorial_standards, reach]
        Source("wire-service", features=[0.9, 0.8]),
        Source("tech-blog", features=[0.6, 0.4]),
        Source("finance-daily", features=[0.8, 0.6]),
        Source("rumour-mill", features=[0.1, 0.9]),
    ]
    claims = [
        Claim("launch-date", "device launches in March", truth=True),
        Claim("price-drop", "price cut by 50% at launch", truth=False),
        Claim("new-sensor", "device ships a new sensor", truth=True),
        Claim("ceo-resigns", "CEO resigns before launch", truth=False),
        Claim("battery-life", "battery lasts two days", truth=False),
        Claim("eu-approval", "regulatory approval in the EU", truth=True),
    ]

    def doc(doc_id, source, quality, *links):
        return Document(
            doc_id,
            source_id=source,
            features=[quality, quality - 0.1],
            claim_links=tuple(
                ClaimLink(cid, Stance.SUPPORT if sup else Stance.REFUTE)
                for cid, sup in links
            ),
        )

    documents = [
        doc("d01", "wire-service", 0.9, ("launch-date", True),
            ("eu-approval", True)),
        doc("d02", "wire-service", 0.8, ("ceo-resigns", False)),
        doc("d03", "tech-blog", 0.6, ("new-sensor", True),
            ("battery-life", True)),
        doc("d04", "tech-blog", 0.5, ("launch-date", True)),
        doc("d05", "finance-daily", 0.8, ("price-drop", False),
            ("launch-date", True)),
        doc("d06", "finance-daily", 0.7, ("eu-approval", True)),
        doc("d07", "rumour-mill", 0.2, ("price-drop", True),
            ("ceo-resigns", True)),
        doc("d08", "rumour-mill", 0.1, ("battery-life", True),
            ("new-sensor", False)),
        doc("d09", "rumour-mill", 0.2, ("launch-date", False)),
    ]
    return FactDatabase(sources, documents, claims)


def main() -> None:
    database = build_corpus()
    print(f"hand-built corpus: {database!r}")

    # Persist to JSON — the integration point for downstream users with
    # real corpora — and reference the file from the session spec, so the
    # spec alone reproduces the run.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "corpus.json"
        save_database(database, path)
        print(f"persisted to {path.name}; the spec loads it back")

        spec = SessionSpec(
            seed=1,
            dataset={"path": str(path)},
            guidance={"strategy": "info"},
            effort={
                "batch_size": 2,               # §6.2: validate claim pairs
                "termination": [
                    {"kind": "urr",
                     "params": {"threshold": 0.01, "patience": 2}},
                ],
            },
        )
        with FactCheckSession(spec) as session:
            database = session.database
            print("\nautomated credibility estimates (no user input yet):")
            for index, claim in enumerate(database.claims):
                print(
                    f"  {claim.claim_id:>12}: "
                    f"P={database.probability(index):.2f} "
                    f"(truth: "
                    f"{'credible' if claim.truth else 'non-credible'})"
                )
            result = session.run()
            grounding = session.process.grounding

    print(f"\nvalidation stopped: {result.stop_reason}")
    print("trusted set of facts (the grounding):")
    for index, claim in enumerate(database.claims):
        verdict = "credible" if grounding[index] else "non-credible"
        marker = "*" if database.is_labelled(index) else " "
        print(f"  {marker} {claim.claim_id:>12}: {verdict}")
    print("(* = validated by the user)")
    print(f"final precision: {result.final_precision:.2f}")


if __name__ == "__main__":
    main()
