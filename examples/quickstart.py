"""Quickstart: guided fact checking on a Snopes-like corpus.

Generates a scaled replica of the Snopes corpus, then runs the paper's
full validation process (Alg. 1) with hybrid user guidance until the
knowledge base reaches 90% precision — printing what the framework does
at every iteration.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.datasets import load_dataset
from repro.guidance import make_strategy
from repro.validation import SimulatedUser, TruePrecisionGoal, ValidationProcess


def main() -> None:
    # A Snopes-shaped corpus: ~49 claims, ~800 documents, ~230 sources.
    database = load_dataset("snopes", seed=7, scale=0.01)
    print(f"corpus: {database!r}")

    process = ValidationProcess(
        database,
        strategy=make_strategy("hybrid"),
        user=SimulatedUser(seed=7),      # oracle user simulated from truth
        goal=TruePrecisionGoal(0.90),    # validation goal Δ
        candidate_limit=20,
        seed=7,
    )

    trace = process.initialize()
    print(
        f"before any user input: precision={trace.initial_precision:.3f} "
        f"entropy={trace.initial_entropy:.2f}"
    )

    while not process.goal.satisfied(process):
        if process.database.unlabelled_indices.size == 0:
            break
        record = process.step()
        claim = database.claims[record.claim_indices[0]]
        verdict = "credible" if record.user_values[0] else "non-credible"
        print(
            f"iter {record.iteration:>2}: [{record.strategy_used:>6}] "
            f"{claim.claim_id} -> {verdict:13} "
            f"precision={record.precision:.3f} "
            f"entropy={record.entropy:6.2f} "
            f"z={record.hybrid_score:.3f} "
            f"dt={record.response_seconds * 1000:.0f}ms"
        )

    trace.stop_reason = "goal"
    effort = database.num_labelled / database.num_claims
    print(
        f"\nreached {process.current_precision():.1%} precision with input "
        f"on {database.num_labelled}/{database.num_claims} claims "
        f"({effort:.0%} effort)"
    )


if __name__ == "__main__":
    main()
