"""Quickstart: guided fact checking on a Snopes-like corpus.

Generates a scaled replica of the Snopes corpus, then runs the paper's
full validation process (Alg. 1) through the declarative session API with
hybrid user guidance until the knowledge base reaches 90% precision —
printing what the framework does at every iteration.  The goal/budget/
exhaustion loop lives inside :meth:`FactCheckSession.run`, so the trace
always carries a correct stop reason.

Run with::

    python examples/quickstart.py

Set ``EXAMPLE_SMOKE=1`` for the reduced-scale variant CI executes.
"""

from __future__ import annotations

import os

from repro import FactCheckSession, SessionSpec

SMOKE = os.environ.get("EXAMPLE_SMOKE") == "1"


def main() -> None:
    # A Snopes-shaped corpus: ~49 claims, ~800 documents, ~230 sources.
    spec = SessionSpec(
        seed=7,
        dataset={"name": "snopes", "seed": 7, "scale": 0.006 if SMOKE else 0.01},
        guidance={"strategy": "hybrid", "candidate_limit": 20},
        effort={"goal": {"kind": "true_precision", "threshold": 0.90}},
    )

    with FactCheckSession(spec) as session:
        database = session.database
        print(f"corpus: {database!r}")
        trace = session.trace
        print(
            f"before any user input: precision={trace.initial_precision:.3f} "
            f"entropy={trace.initial_entropy:.2f}"
        )

        def report(record) -> None:
            verdict = "credible" if record.user_values[0] else "non-credible"
            print(
                f"iter {record.iteration:>2}: [{record.strategy_used:>6}] "
                f"{record.claim_ids[0]} -> {verdict:13} "
                f"precision={record.precision:.3f} "
                f"entropy={record.entropy:6.2f} "
                f"z={record.hybrid_score:.3f} "
                f"dt={record.response_seconds * 1000:.0f}ms"
            )

        result = session.run(on_iteration=report)

    effort = result.num_labelled / result.num_claims
    print(
        f"\nstopped ({result.stop_reason}) at {result.final_precision:.1%} "
        f"precision with input on {result.num_labelled}/{result.num_claims} "
        f"claims ({effort:.0%} effort)"
    )


if __name__ == "__main__":
    main()
