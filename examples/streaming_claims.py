"""Streaming fact checking: validating claims while they arrive.

Replays a healthcare-forum replica as a claim stream (Alg. 2) through a
streaming :class:`FactCheckSession`: the online model ingests arrivals with
stochastic-approximation EM, and after every 20% of the stream the session
runs an interleaved validation burst (Alg. 1) on the current snapshot —
with model parameters exchanged between the two algorithms, as in §7 of
the paper.  Finally the streaming validation order is compared to the
offline order with Kendall's τ_b (Table 2).

Run with::

    python examples/streaming_claims.py

Set ``EXAMPLE_SMOKE=1`` for the reduced-scale variant CI executes.
"""

from __future__ import annotations

import os

import numpy as np

from repro import FactCheckSession, SessionSpec, load_dataset, stream_from_database
from repro.metrics import sequence_rank_correlation

VALIDATION_PERIOD = 0.2
SMOKE = os.environ.get("EXAMPLE_SMOKE") == "1"
SCALE = 0.025 if SMOKE else 0.04


def offline_order(seed: int) -> list:
    """Validation order of the classic offline (batch) session."""
    spec = SessionSpec(
        seed=seed,
        dataset={"name": "health", "seed": 5, "scale": SCALE},
        guidance={"strategy": "hybrid", "candidate_limit": 15},
    )
    result = FactCheckSession(spec).run()
    return result.validated_claim_ids


def main() -> None:
    database = load_dataset("health", seed=5, scale=SCALE)
    print(f"corpus: {database!r}\n")

    print("offline pass (all claims known upfront) ...")
    offline = offline_order(seed=1)

    print("streaming pass (claims arrive one by one) ...")
    arrivals = list(stream_from_database(database))
    period = max(1, int(VALIDATION_PERIOD * len(arrivals)))
    spec = SessionSpec(
        mode="streaming",
        seed=3,
        guidance={"strategy": "hybrid", "candidate_limit": 15},
        stream={"validation_every": period},
    )

    update_times = []

    def report(update) -> None:
        update_times.append(update.elapsed_seconds)
        if update.arrival_index % period == 0:
            print(
                f"  after {update.arrival_index:>3} arrivals: "
                f"{update.num_claims:>3} claims / "
                f"{update.num_sources:>3} sources, avg update "
                f"{np.mean(update_times) * 1000:.0f}ms"
            )

    with FactCheckSession(spec) as session:
        result = session.run(arrivals=arrivals, on_iteration=report)

    tau = sequence_rank_correlation(offline, result.validated_claim_ids)
    print(
        f"\nvalidated {len(result.validated_claim_ids)} claims while "
        f"streaming ({result.stop_reason})"
    )
    print(
        f"validation-order similarity offline vs. streaming "
        f"(period {VALIDATION_PERIOD:.0%}): Kendall tau_b = {tau:.3f}"
    )
    print("larger validation periods approach the offline order (Table 2)")


if __name__ == "__main__":
    main()
