"""Streaming fact checking: validating claims while they arrive.

Replays a healthcare-forum replica as a claim stream (Alg. 2): the online
model ingests arrivals with stochastic-approximation EM, and after every
20% of the stream the validation process (Alg. 1) runs on the current
snapshot — with model parameters exchanged between the two algorithms, as
in §7 of the paper.  Finally the streaming validation order is compared
to the offline order with Kendall's τ_b (Table 2).

Run with::

    python examples/streaming_claims.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import load_dataset
from repro.guidance import make_strategy
from repro.inference import ICrf
from repro.metrics import sequence_rank_correlation
from repro.streaming import StreamingFactChecker, stream_from_database
from repro.validation import SimulatedUser, ValidationProcess

VALIDATION_PERIOD = 0.2


def offline_order(database, seed: int) -> list:
    """Validation order of the classic offline process."""
    process = ValidationProcess(
        database,
        strategy=make_strategy("hybrid"),
        user=SimulatedUser(seed=seed),
        candidate_limit=15,
        seed=seed,
    )
    trace = process.run()
    return [database.claim_id(i) for i in trace.validated_claims()]


def main() -> None:
    database = load_dataset("health", seed=5, scale=0.04)
    print(f"corpus: {database!r}\n")

    print("offline pass (all claims known upfront) ...")
    offline = offline_order(load_dataset("health", seed=5, scale=0.04), seed=1)

    print("streaming pass (claims arrive one by one) ...")
    checker = StreamingFactChecker(seed=5)
    arrivals = list(stream_from_database(database))
    period = max(1, int(VALIDATION_PERIOD * len(arrivals)))
    streaming_order: list = []
    update_times = []
    pending = 0
    for arrival in arrivals:
        update = checker.observe(arrival)
        update_times.append(update.elapsed_seconds)
        pending += 1
        if pending < period:
            continue
        pending = 0
        snapshot = checker.database
        icrf = ICrf(snapshot, seed=2)
        weights = checker.weights
        if weights is not None:
            icrf.set_weights(weights)          # Alg. 2, line 7
        process = ValidationProcess(
            snapshot,
            strategy=make_strategy("hybrid"),
            user=SimulatedUser(seed=3),
            icrf=icrf,
            candidate_limit=15,
            seed=3,
        )
        process.initialize()
        for _ in range(period):
            if snapshot.unlabelled_indices.size == 0:
                break
            record = process.step()
            for claim_index, value in zip(
                record.claim_indices, record.user_values
            ):
                claim_id = snapshot.claim_id(claim_index)
                checker.record_label(claim_id, value)
                streaming_order.append(claim_id)
        checker.receive_weights(icrf.weights)  # Alg. 2, line 10
        print(
            f"  after {update.arrival_index:>3} arrivals: validated "
            f"{len(streaming_order):>3} claims, avg update "
            f"{np.mean(update_times) * 1000:.0f}ms"
        )

    tau = sequence_rank_correlation(offline, streaming_order)
    print(
        f"\nvalidation-order similarity offline vs. streaming "
        f"(period {VALIDATION_PERIOD:.0%}): Kendall tau_b = {tau:.3f}"
    )
    print("larger validation periods approach the offline order (Table 2)")


if __name__ == "__main__":
    main()
