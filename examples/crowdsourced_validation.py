"""Crowdsourced validation: plugging crowd consensus into the loop.

Demonstrates the §8.9 deployment scenario end to end:

1. A simulated crowd answers redundant validation tasks; per-worker
   reliability is estimated with Dawid–Skene EM and compared to simple
   majority voting.
2. The crowd *consensus* then acts as the (imperfect) user of a
   fact-checking session — the session API accepts any custom
   :class:`User` — with the confirmation check of §5.2 repairing the
   mistakes the consensus makes, showing how the framework composes with
   a crowdsourcing frontend instead of a single expert.

Run with::

    python examples/crowdsourced_validation.py

Set ``EXAMPLE_SMOKE=1`` for the reduced-scale variant CI executes.
"""

from __future__ import annotations

import os
from typing import Optional

from repro import FactCheckSession, SessionSpec, User, load_dataset
from repro.crowd import (
    CROWD_PROFILES,
    DawidSkeneBinary,
    SimulatedValidator,
    majority_vote,
    run_deployment,
)
from repro.data.entities import Claim

SMOKE = os.environ.get("EXAMPLE_SMOKE") == "1"
SCALE = 0.006 if SMOKE else 0.01


class CrowdConsensusUser(User):
    """A 'user' whose answers are Dawid–Skene consensus of crowd votes."""

    def __init__(self, num_workers: int = 9, redundancy: int = 5,
                 seed: int = 0) -> None:
        profile = CROWD_PROFILES["snopes"]
        self._workers = [
            SimulatedValidator(profile, f"w{i}", seed=seed * 100 + i)
            for i in range(num_workers)
        ]
        self._redundancy = redundancy
        self._aggregator = DawidSkeneBinary()
        self.answers_collected = 0

    def validate(self, claim: Claim) -> Optional[int]:
        votes = {
            worker.worker_id: worker.answer(claim)
            for worker in self._workers[: self._redundancy]
        }
        self.answers_collected += len(votes)
        result = self._aggregator.aggregate({claim.claim_id: votes})
        return result.consensus[claim.claim_id]


def main() -> None:
    database = load_dataset("snopes", seed=9, scale=SCALE)

    print("=== 1. expert panel vs. crowd (Table 3 protocol) ===")
    outcomes = run_deployment(
        database, "snopes", num_claims=15 if SMOKE else 30, seed=9
    )
    for population, outcome in outcomes.items():
        print(
            f"  {population:>6}: accuracy={outcome.accuracy:.2f} "
            f"avg time={outcome.mean_seconds:.0f}s "
            f"({outcome.total_answers} answers)"
        )

    print("\n=== 2. majority vote vs. Dawid-Skene on adversarial crowds ===")
    profile = CROWD_PROFILES["snopes"]
    workers = [SimulatedValidator(profile, f"w{i}", seed=i) for i in range(9)]
    claims = [database.claims[i] for i in range(min(25, database.num_claims))]
    answers = {
        claim.claim_id: {w.worker_id: w.answer(claim) for w in workers}
        for claim in claims
    }
    truth = {c.claim_id: int(bool(c.truth)) for c in claims}
    mv = majority_vote(answers)
    ds = DawidSkeneBinary().aggregate(answers)
    mv_acc = sum(mv[c] == truth[c] for c in truth) / len(truth)
    ds_acc = sum(ds.consensus[c] == truth[c] for c in truth) / len(truth)
    print(f"  majority vote accuracy: {mv_acc:.2f}")
    print(f"  Dawid-Skene accuracy:   {ds_acc:.2f}")
    least_reliable = min(ds.worker_accuracy, key=ds.worker_accuracy.get)
    print(
        f"  least reliable worker: {least_reliable} "
        f"(estimated accuracy {ds.worker_accuracy[least_reliable]:.2f})"
    )

    print("\n=== 3. crowd consensus driving a fact-checking session ===")
    spec = SessionSpec(
        seed=9,
        dataset={"name": "snopes", "seed": 9, "scale": SCALE},
        guidance={"strategy": "hybrid", "candidate_limit": 15},
        effort={
            "goal": {"kind": "true_precision", "threshold": 0.9},
            "confirmation_interval": 5,   # §5.2 repairs crowd mistakes
        },
    )
    crowd_user = CrowdConsensusUser(seed=9)
    with FactCheckSession(spec, user=crowd_user) as session:
        result = session.run()
        repairs = session.process.robustness_stats.repairs
    print(
        f"  stop={result.stop_reason} precision={result.final_precision:.2f} "
        f"claims validated={result.num_labelled} "
        f"crowd answers consumed={crowd_user.answers_collected} "
        f"repairs={repairs}"
    )


if __name__ == "__main__":
    main()
