"""Service quickstart: many fact-checking sessions behind an HTTP API.

Drives the multi-session service (`repro.service`) through its thin
client: a batch validation session and a streaming claim-arrival session
are created from declarative ``SessionSpec`` documents, driven over HTTP,
checkpointed, and finalised — all against one server hosting both
concurrently.

By default the example boots its own in-process server on an ephemeral
port.  Point ``REPRO_SERVICE_URL`` at a running ``python -m repro serve``
instance to exercise a real deployment instead (this is what the CI
service-smoke job does).

Run with::

    python examples/service_quickstart.py

Set ``EXAMPLE_SMOKE=1`` for the reduced-scale variant CI executes.
"""

from __future__ import annotations

import os
import tempfile

from repro import SessionSpec, load_dataset, stream_from_database
from repro.service import ServiceClient

SMOKE = os.environ.get("EXAMPLE_SMOKE") == "1"


def start_local_server():
    """An in-process service with a spool directory (stdlib only)."""
    from repro.service import ReproServiceServer, ServiceConfig, SessionManager

    spool = tempfile.mkdtemp(prefix="repro-spool-")
    manager = SessionManager(ServiceConfig(spool_dir=spool, workers=4))
    server = ReproServiceServer(manager)  # port 0 = ephemeral
    server.serve_in_background()
    return server, manager


def main() -> None:
    url = os.environ.get("REPRO_SERVICE_URL")
    server = manager = None
    if url is None:
        server, manager = start_local_server()
        url = server.url
        print(f"started in-process service on {url}")
    client = ServiceClient(url)
    print(f"service health: {client.health()}")

    # -- a batch validation session (Alg. 1) over HTTP ------------------
    batch_spec = SessionSpec(
        seed=7,
        dataset={"name": "snopes", "seed": 7, "scale": 0.006 if SMOKE else 0.01},
        guidance={"strategy": "hybrid", "candidate_limit": 20},
        effort={"goal": {"kind": "true_precision", "threshold": 0.90}},
    )
    batch = client.create_session(batch_spec, session_id="quickstart-batch")
    print(f"\ncreated batch session: {batch}")

    stepped = client.step(batch["id"], count=2)
    for record in stepped["records"]:
        print(
            f"iter {record['iteration']:>2}: {record['claim_ids'][0]} <- "
            f"{record['user_values'][0]} precision={record['precision']:.3f}"
        )
    client.checkpoint(batch["id"])  # durable from here on
    finished = client.step(batch["id"], run=True)
    result = finished["result"]
    print(
        f"batch stopped ({result['stop_reason']}) at "
        f"{result['final_precision']:.1%} precision with "
        f"{result['num_labelled']}/{result['num_claims']} claims validated"
    )

    # -- a streaming session (Alg. 2) fed claim arrivals over HTTP -------
    stream_spec = SessionSpec(
        mode="streaming",
        seed=5,
        inference={"em_iterations": 2, "num_samples": 8},
        effort={"goal": {"kind": "none"}},
        stream={"validation_every": 4},
    )
    streaming = client.create_session(stream_spec, session_id="quickstart-stream")
    print(f"\ncreated streaming session: {streaming}")

    corpus = load_dataset("health", seed=5, scale=0.02 if SMOKE else 0.05)
    arrivals = list(stream_from_database(corpus))
    updates = client.stream_claims(streaming["id"], arrivals, chunk_size=8)
    print(f"streamed {len(updates)} arrivals in chunks of 8")

    # External user input addressed by stable claim id.
    first_claim = arrivals[0].claim.claim_id
    client.record_labels(
        streaming["id"], [{"claim": first_claim, "value": 1}]
    )
    stream_result = client.result_dict(streaming["id"])
    print(
        f"streaming finished ({stream_result['stop_reason']}): "
        f"{stream_result['num_claims']} claims, "
        f"{stream_result['num_labelled']} labelled"
    )

    sessions = client.list_sessions()
    print(f"\nserver hosts {len(sessions)} sessions: "
          f"{sorted(entry['id'] for entry in sessions)}")
    for session_id in (batch["id"], streaming["id"]):
        client.delete_session(session_id)
    print("sessions deleted; service still healthy:", client.health())

    if server is not None:
        server.shutdown()
        manager.shutdown()
        print("in-process server stopped")


if __name__ == "__main__":
    main()
