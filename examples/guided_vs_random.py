"""Strategy comparison: how much effort does guidance save?

Reproduces the headline experiment of the paper (Fig. 6) on a small
Wikipedia-hoaxes replica: every selection strategy runs until perfect
precision and the precision-vs-effort curves are rendered as ASCII
charts.  Each run is one declarative :class:`SessionSpec` differing only
in the strategy field.  The guided strategies should reach 90% precision
with a fraction of the effort random selection needs.

Run with::

    python examples/guided_vs_random.py

Set ``EXAMPLE_SMOKE=1`` for the reduced-scale variant CI executes.
"""

from __future__ import annotations

import os

import numpy as np

from repro import FactCheckSession, SessionSpec

STRATEGIES = ("random", "uncertainty", "info", "source", "hybrid")
TARGET = 0.9
CHART_WIDTH = 50
SMOKE = os.environ.get("EXAMPLE_SMOKE") == "1"


def run_strategy(name: str, seed: int) -> tuple:
    """Run one strategy to full precision; return (efforts, precisions)."""
    spec = SessionSpec(
        seed=seed,
        dataset={"name": "wiki", "seed": 11, "scale": 0.1 if SMOKE else 0.2},
        guidance={"strategy": name, "candidate_limit": 20},
        effort={"goal": {"kind": "true_precision", "threshold": 1.0}},
    )
    result = FactCheckSession(spec).run()
    trace = result.trace
    efforts = np.concatenate(([0.0], trace.efforts()))
    precisions = np.concatenate(
        ([trace.initial_precision], trace.precisions())
    )
    return efforts, precisions


def ascii_curve(efforts, precisions, width: int = CHART_WIDTH) -> str:
    """Render a precision-vs-effort curve as a one-line ASCII chart."""
    grid = np.linspace(0.0, 1.0, width)
    cells = []
    glyphs = " .:-=+*#%@"
    for point in grid:
        value = precisions[0]
        for effort, precision in zip(efforts, precisions):
            if effort <= point:
                value = precision
        level = int(round(value * (len(glyphs) - 1)))
        cells.append(glyphs[level])
    return "".join(cells)


def main() -> None:
    print(f"precision vs. effort (0% {'-' * (CHART_WIDTH - 10)} 100%)\n")
    summary = {}
    for name in STRATEGIES:
        efforts, precisions = run_strategy(name, seed=5)
        reached = next(
            (e for e, p in zip(efforts, precisions) if p >= TARGET), 1.0
        )
        summary[name] = reached
        print(f"{name:>12} |{ascii_curve(efforts, precisions)}|  "
              f"effort to {TARGET:.0%}: {reached:.0%}")

    best = min(summary, key=summary.get)
    saving = 1.0 - summary[best] / max(summary["random"], 1e-9)
    print(
        f"\nbest strategy: {best} — saves {saving:.0%} of the effort random "
        f"selection needs to reach {TARGET:.0%} precision"
    )


if __name__ == "__main__":
    main()
