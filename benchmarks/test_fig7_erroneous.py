"""Benchmark E7 — Fig. 7: guidance with erroneous user input (§8.5)."""

from repro.experiments import fig7_erroneous_input


def test_fig7_erroneous(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        fig7_erroneous_input.run,
        args=(bench_config,),
        kwargs={"strategies": ("random", "hybrid")},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert len(result.rows) == 2 * len(bench_config.datasets)
