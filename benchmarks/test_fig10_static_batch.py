"""Benchmark E10 — Fig. 10: effects of a static batch size (§8.7)."""

from repro.experiments import fig10_static_batch


def test_fig10_static_batch(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        fig10_static_batch.run,
        args=(bench_config,),
        kwargs={"batch_sizes": (1, 5, 10), "effort_fraction": 0.3},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    # Shape: cost saving grows with k for every alpha.
    for dataset in bench_config.datasets:
        rows = [r for r in result.rows if r[0] == dataset]
        savings = [r[4] for r in rows]
        assert savings == sorted(savings)
