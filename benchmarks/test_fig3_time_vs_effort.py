"""Benchmark E2 — Fig. 3: response time vs. label effort (§8.2)."""

from repro.experiments import fig3_time_vs_effort


def test_fig3_time_vs_effort(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        fig3_time_vs_effort.run,
        args=(bench_config,),
        kwargs={"dataset": "snopes"},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert sum(result.column("samples")) > 0
