"""Benchmark E4 — Fig. 5: uncertainty vs. precision correlation (§8.4)."""

from repro.experiments import fig5_uncertainty_precision


def test_fig5_uncertainty(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        fig5_uncertainty_precision.run,
        args=(bench_config,),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    rows = dict(zip(result.column("statistic"), result.column("value")))
    # Shape: strongly negative correlation (paper: -0.85).
    assert rows["pearson"] < -0.3
