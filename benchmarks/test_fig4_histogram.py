"""Benchmark E3 — Fig. 4: probabilities of correct assignments (§8.3)."""

from repro.experiments import fig4_probability_histogram


def test_fig4_histogram(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        fig4_probability_histogram.run,
        args=(bench_config,),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    # Shape: mass in the top bins grows with effort.
    top_mass_0 = sum(row[1] for row in result.rows[-3:])
    top_mass_40 = sum(row[-1] for row in result.rows[-3:])
    assert top_mass_40 >= top_mass_0
