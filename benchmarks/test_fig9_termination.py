"""Benchmark E9 — Fig. 9: early-termination indicators (§8.6)."""

from repro.experiments import fig9_early_termination


def test_fig9_termination(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        fig9_early_termination.run,
        args=(bench_config,),
        kwargs={"dataset": "snopes"},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    # Shape: precision improvement saturates towards the end of the run.
    improvements = result.column("prec_improv_%")
    assert improvements[-1] >= improvements[0]
