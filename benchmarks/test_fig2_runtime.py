"""Benchmark E1 — Fig. 2: response time per iteration and variant (§8.2)."""

from repro.experiments import fig2_runtime


def test_fig2_runtime(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        fig2_runtime.run,
        args=(bench_config,),
        kwargs={"iterations": 4},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    # Shape: the optimised variant must not be slower than origin on the
    # largest dataset.
    rows = {
        (row[0], row[1]): row[2]
        for row in result.rows
    }
    assert rows[("snopes", "parallel+partition")] <= rows[("snopes", "origin")] * 1.5
