"""Benchmark E11 — Fig. 11: effects of a dynamic batch size (§8.7)."""

from repro.experiments import fig11_dynamic_batch


def test_fig11_dynamic_batch(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        fig11_dynamic_batch.run,
        args=(bench_config,),
        kwargs={"batch_sizes": (1, 5), "thresholds": (0.8,)},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert "dynamic" in result.column("k")
