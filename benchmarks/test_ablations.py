"""Ablation benchmarks for the design choices documented in DESIGN.md."""

import numpy as np

from repro.experiments import ablations


def test_ablation_coupling(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        ablations.coupling_ablation,
        args=(bench_config,),
        kwargs={"dataset": "snopes"},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    rows = {row[1]: row[3] for row in result.rows}
    # Shape: coupling should not hurt precision at equal effort.
    assert rows["on"] >= rows["off"] - 0.1


def test_ablation_aggregation(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        ablations.aggregation_ablation,
        args=(bench_config,),
        kwargs={"dataset": "snopes"},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert set(result.column("aggregation")) == {"sum", "mean", "sqrt"}


def test_ablation_warm_start(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        ablations.warm_start_ablation,
        args=(bench_config,),
        kwargs={"dataset": "wiki", "iterations": 6},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    rows = {row[1]: row[3] for row in result.rows}
    # Shape: warm chains churn the marginals no more than cold restarts.
    assert rows["warm"] <= rows["cold"] + 0.05


def test_ablation_batch_selection(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        ablations.batch_selection_ablation,
        args=(bench_config,),
        kwargs={"dataset": "wiki", "k": 3, "candidate_limit": 9},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    rows = {row[1]: row[2] for row in result.rows}
    if rows["exhaustive"] > 0:
        assert rows["greedy"] >= (1 - 1 / np.e) * rows["exhaustive"] - 1e-9
