"""Shared benchmark infrastructure.

Every benchmark regenerates one table/figure of the paper at a reduced
corpus scale, times the full experiment driver with pytest-benchmark, and
writes the rendered result table to ``benchmarks/results/<name>.txt`` so
the reproduction output can be inspected side by side with the paper.

Path setup (``src/`` and the repo root on ``sys.path``) is done by the
repo-root ``conftest.py``, which pytest loads for every run including
``pytest benchmarks``; shared corpus fixtures live in
``tests/fixtures.py``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.reporting import ExperimentResult

#: Directory collecting the rendered result tables.
RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Reduced-scale configuration shared by all benchmarks.

    One run per cell and ~60% of the default replica sizes keep the whole
    suite in the minutes range while preserving the qualitative shapes.
    """
    return ExperimentConfig(
        seed=7,
        runs=1,
        scale_factor=0.6,
        em_iterations=2,
        gibbs_samples=10,
        candidate_limit=12,
    )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write an experiment result table to the results directory."""

    def _record(result: ExperimentResult) -> None:
        path = results_dir / f"{result.name}.txt"
        path.write_text(result.format_table() + "\n", encoding="utf-8")
        print()
        print(result.format_table())

    return _record
