"""Shared benchmark infrastructure.

Every benchmark regenerates one table/figure of the paper at a reduced
corpus scale, times the full experiment driver with pytest-benchmark, and
writes the rendered result table to ``benchmarks/results/<name>.txt`` so
the reproduction output can be inspected side by side with the paper.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).parent.parent
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments import ExperimentConfig  # noqa: E402
from repro.experiments.reporting import ExperimentResult  # noqa: E402

#: Directory collecting the rendered result tables.
RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Reduced-scale configuration shared by all benchmarks.

    One run per cell and ~60% of the default replica sizes keep the whole
    suite in the minutes range while preserving the qualitative shapes.
    """
    return ExperimentConfig(
        seed=7,
        runs=1,
        scale_factor=0.6,
        em_iterations=2,
        gibbs_samples=10,
        candidate_limit=12,
    )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write an experiment result table to the results directory."""

    def _record(result: ExperimentResult) -> None:
        path = results_dir / f"{result.name}.txt"
        path.write_text(result.format_table() + "\n", encoding="utf-8")
        print()
        print(result.format_table())

    return _record
