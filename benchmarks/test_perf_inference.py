"""Performance-regression micro-benchmarks of the inference hot path.

Speed is a tested property: the vectorised ``numpy`` engine must beat the
``reference`` (seed) implementation by at least the recorded margin on
the two hot-path units — a full Gibbs sampling pass (the E-step) and one
full EM iteration (E-step + TRON M-step) — at the seed benchmark scale.
Because absolute wall-clock depends on the machine, the guarded quantity
is the *relative* speedup measured on the same host in the same process,
which is stable across hardware; ``benchmarks/perf_baseline.json`` holds
the recorded values.

A second, big-corpus tier (wiki scale ≥ 5) pits the ``sharded`` backend
against ``numpy`` where the partitioned sweep actually pays off, with
its own recorded floor (``sharded_sweep_speedup``).

Modes
-----
* default — full measurement (best of 5), asserts the hard floor (3×)
  and the baseline-relative bound.
* ``PERF_SMOKE=1`` — 2 repetitions and a relaxed floor, for CI.
* ``PERF_RECORD=1`` — re-records ``perf_baseline.json`` from the current
  measurement (use after intentional hot-path changes).

Every run writes ``benchmarks/results/perf_inference.txt`` with the raw
numbers, and always cross-checks that both engines produce *identical*
marginals — a perf win that changes results would be a bug, not a win.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.crf.gibbs import GibbsSampler
from repro.crf.model import CrfModel
from repro.crf.weights import CrfWeights
from repro.datasets import load_dataset
from repro.inference.engine import create_engine
from repro.inference.icrf import ICrf

BASELINE_PATH = Path(__file__).parent / "perf_baseline.json"
RESULTS_PATH = Path(__file__).parent / "results" / "perf_inference.txt"

#: Seed benchmark scale — matches the reduced-corpus scale of the
#: experiment benchmarks (see ``bench_config`` in ``conftest.py``).
SCALE = 0.6
#: Big-corpus tier: the sharded backend targets large claim counts, so
#: its floor is measured where the partitioning actually pays off.
BIG_SCALE = 5.0
DATASET_SEED = 42

SMOKE = bool(os.environ.get("PERF_SMOKE"))
RECORD = bool(os.environ.get("PERF_RECORD"))
REPEATS = 2 if SMOKE else 5
#: Hard floor on the measured speedups (acceptance: ≥ 3× full mode).
HARD_FLOOR = 2.0 if SMOKE else 3.0
#: Fraction of the recorded baseline speedup that must be retained.
BASELINE_FRACTION = 0.5


def _best_of(callable_, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def _bench_database():
    return load_dataset("wiki", seed=DATASET_SEED, scale=SCALE)


def _nontrivial_weights(database) -> CrfWeights:
    rng = np.random.default_rng(17)
    size = 2 + database.document_features.shape[1] \
        + database.source_features.shape[1]
    values = 0.4 * rng.normal(size=size)
    values[-1] = 0.3  # non-zero coupling exercises the coupled sweep path
    return CrfWeights(values)


def _sampling_pass(backend: str):
    """Timed unit: one full Gibbs sampling pass (burn-in + samples)."""
    database = _bench_database()
    model = CrfModel(database, weights=_nontrivial_weights(database))
    sampler = GibbsSampler(
        model, burn_in=5, num_samples=15, seed=9,
        engine=create_engine(model, backend),
    )
    sampler.sample()  # warm-up: chain init + engine caches
    elapsed = _best_of(sampler.sample)
    return elapsed, sampler.sample().marginals


def _big_sampling_pass(backend: str):
    """Timed unit: one Gibbs pass on the big corpus (numpy vs sharded).

    The sharded backend resolves its shard count automatically
    (``REPRO_NUM_SHARDS`` overrides); both configurations must stay
    bit-identical to numpy, so the timing comparison is apples to
    apples.
    """
    database = load_dataset("wiki", seed=DATASET_SEED, scale=BIG_SCALE)
    model = CrfModel(database, weights=_nontrivial_weights(database))
    sampler = GibbsSampler(
        model, burn_in=5, num_samples=15, seed=9,
        engine=create_engine(model, backend),
    )
    sampler.sample()  # warm-up: chain init + engine caches + worker pool
    elapsed = _best_of(sampler.sample)
    marginals = sampler.sample().marginals
    sampler.engine.close()
    return elapsed, marginals


def _em_iteration(backend: str):
    """Timed unit: one full EM iteration (Gibbs E-step + TRON M-step)."""
    database = _bench_database()
    state = database.clone_state()

    def run():
        database.restore_state(state)
        icrf = ICrf(
            database, em_iterations=1, num_samples=12, burn_in=4,
            engine=backend, seed=123,
        )
        icrf.infer()

    elapsed = _best_of(run)
    database.restore_state(state)
    icrf = ICrf(
        database, em_iterations=1, num_samples=12, burn_in=4,
        engine=backend, seed=123,
    )
    return elapsed, icrf.infer().marginals


@pytest.fixture(scope="module")
def measurements():
    sweep_ref, marg_sweep_ref = _sampling_pass("reference")
    sweep_np, marg_sweep_np = _sampling_pass("numpy")
    em_ref, marg_em_ref = _em_iteration("reference")
    em_np, marg_em_np = _em_iteration("numpy")
    big_np, marg_big_np = _big_sampling_pass("numpy")
    big_sh, marg_big_sh = _big_sampling_pass("sharded")
    data = {
        "sweep": {"reference": sweep_ref, "numpy": sweep_np,
                  "speedup": sweep_ref / sweep_np},
        "em": {"reference": em_ref, "numpy": em_np,
               "speedup": em_ref / em_np},
        "combined_speedup": (sweep_ref + em_ref) / (sweep_np + em_np),
        "sharded": {"numpy": big_np, "sharded": big_sh,
                    "speedup": big_np / big_sh},
        "equivalent": {
            "sweep": bool(np.array_equal(marg_sweep_ref, marg_sweep_np)),
            "em": bool(np.array_equal(marg_em_ref, marg_em_np)),
            "sharded": bool(np.array_equal(marg_big_np, marg_big_sh)),
        },
    }
    _write_results(data)
    if RECORD:
        _record_baseline(data)
    return data


def _write_results(data) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    lines = [
        "Inference hot-path micro-benchmark "
        f"(wiki scale={SCALE}, seed={DATASET_SEED}, "
        f"best of {REPEATS}{', smoke' if SMOKE else ''})",
        "",
        f"{'unit':<28}{'reference':>12}{'numpy':>12}{'speedup':>10}",
        f"{'gibbs sampling pass':<28}"
        f"{data['sweep']['reference'] * 1e3:>10.2f}ms"
        f"{data['sweep']['numpy'] * 1e3:>10.2f}ms"
        f"{data['sweep']['speedup']:>9.2f}x",
        f"{'full EM iteration':<28}"
        f"{data['em']['reference'] * 1e3:>10.2f}ms"
        f"{data['em']['numpy'] * 1e3:>10.2f}ms"
        f"{data['em']['speedup']:>9.2f}x",
        f"{'sweep + EM combined':<28}{'':>12}{'':>12}"
        f"{data['combined_speedup']:>9.2f}x",
        "",
        f"Big-corpus tier (wiki scale={BIG_SCALE}): numpy vs sharded",
        "",
        f"{'unit':<28}{'numpy':>12}{'sharded':>12}{'speedup':>10}",
        f"{'gibbs sampling pass':<28}"
        f"{data['sharded']['numpy'] * 1e3:>10.2f}ms"
        f"{data['sharded']['sharded'] * 1e3:>10.2f}ms"
        f"{data['sharded']['speedup']:>9.2f}x",
        "",
        "numerical equivalence: "
        f"sweep={'ok' if data['equivalent']['sweep'] else 'FAIL'} "
        f"em={'ok' if data['equivalent']['em'] else 'FAIL'} "
        f"sharded={'ok' if data['equivalent']['sharded'] else 'FAIL'}",
        "",
    ]
    RESULTS_PATH.write_text("\n".join(lines), encoding="utf-8")
    print("\n".join(lines))


def _record_baseline(data) -> None:
    # Merge into the shared baseline file: the streaming benchmark keeps
    # its ``stream_*`` keys there too, and re-recording one benchmark
    # must not drop the other's record.
    payload = (
        json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
        if BASELINE_PATH.exists()
        else {}
    )
    payload.update(
        {
            "description": "Recorded speedups of the inference and "
                           "streaming hot paths; regression tests assert "
                           "the current speedup stays above "
                           "baseline_fraction of these and above the "
                           "hard floor.",
            "dataset": "wiki",
            "scale": SCALE,
            "dataset_seed": DATASET_SEED,
            "sweep_speedup": round(data["sweep"]["speedup"], 2),
            "em_speedup": round(data["em"]["speedup"], 2),
            "combined_speedup": round(data["combined_speedup"], 2),
            "sharded_scale": BIG_SCALE,
            "sharded_sweep_speedup": round(data["sharded"]["speedup"], 2),
            "baseline_fraction": BASELINE_FRACTION,
            "re_record": "PERF_RECORD=1 PYTHONPATH=src python -m pytest "
                         "benchmarks/test_perf_inference.py",
        }
    )
    BASELINE_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def _baseline():
    if not BASELINE_PATH.exists():
        pytest.fail(
            f"{BASELINE_PATH} missing; record it with PERF_RECORD=1"
        )
    return json.loads(BASELINE_PATH.read_text(encoding="utf-8"))


def _floor(baseline_speedup: float) -> float:
    """Required speedup: in smoke mode only the relaxed hard floor
    applies (CI runners are too noisy for baseline-relative bounds)."""
    if SMOKE:
        return HARD_FLOOR
    return max(HARD_FLOOR, baseline_speedup * BASELINE_FRACTION)


class TestNumericalEquivalence:
    def test_engines_produce_identical_marginals(self, measurements):
        assert measurements["equivalent"]["sweep"]
        assert measurements["equivalent"]["em"]

    def test_sharded_matches_numpy_on_big_corpus(self, measurements):
        assert measurements["equivalent"]["sharded"]


class TestThroughputRegression:
    def test_sampling_pass_speedup(self, measurements):
        floor = _floor(_baseline()["sweep_speedup"])
        assert measurements["sweep"]["speedup"] >= floor, (
            f"gibbs pass speedup {measurements['sweep']['speedup']:.2f}x "
            f"fell below {floor:.2f}x"
        )

    def test_em_iteration_speedup(self, measurements):
        floor = _floor(_baseline()["em_speedup"])
        assert measurements["em"]["speedup"] >= floor, (
            f"EM iteration speedup {measurements['em']['speedup']:.2f}x "
            f"fell below {floor:.2f}x"
        )

    def test_combined_speedup_meets_acceptance(self, measurements):
        """Acceptance criterion: sweep + one full EM iteration ≥ 3×."""
        floor = _floor(_baseline()["combined_speedup"])
        assert measurements["combined_speedup"] >= floor

    def test_sharded_big_corpus_speedup(self, measurements):
        """Acceptance criterion: sharded beats numpy ≥ 3× at big scale."""
        floor = _floor(_baseline()["sharded_sweep_speedup"])
        assert measurements["sharded"]["speedup"] >= floor, (
            f"sharded big-corpus speedup "
            f"{measurements['sharded']['speedup']:.2f}x fell below "
            f"{floor:.2f}x"
        )
