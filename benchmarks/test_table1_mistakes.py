"""Benchmark E6 — Table 1: detection of erroneous user input (§8.5)."""

from repro.experiments import table1_mistake_detection


def test_table1_mistakes(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        table1_mistake_detection.run,
        args=(bench_config,),
        kwargs={"probabilities": (0.15, 0.30)},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    # Shape: averaged over datasets, a substantial share of injected
    # mistakes is detected (per-dataset counts are tiny at bench scale,
    # so rates are heavily quantised).
    rates = [row[1] for row in result.rows]
    assert sum(rates) / len(rates) >= 40.0
