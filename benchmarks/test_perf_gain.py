"""Performance-regression benchmark of batched gain evaluation (§5.1).

The batch-selection hot path evaluates IG(c) for every candidate of a
guidance round — two hypothetical inference runs per candidate plus a
shared per-component baseline.  ``GainConfig(parallel=True)`` must beat
the sequential path by the recorded margin on the full candidate pool in
Gibbs mode: candidates run snapshot-isolated on worker-local engines
backed by the compiled merge kernel, so the win holds even on a single
core (and grows with cores, since the kernel sweeps release the GIL).
Mean-field timings are reported for visibility but carry no floor — the
pure-numpy fixed point is GIL-bound, so single-core thread dispatch is
roughly break-even there.

Modes
-----
* default — full measurement (best of 3), asserts the hard floor (2×)
  and the baseline-relative bound on the Gibbs-mode speedup.
* ``PERF_SMOKE=1`` — 2 repetitions and a relaxed floor, for CI.
* ``PERF_RECORD=1`` — re-records the ``gain_parallel_*`` keys of
  ``benchmarks/perf_baseline.json`` (use after intentional changes).

Every run writes ``benchmarks/results/perf_gain.txt`` with the raw
numbers, and always cross-checks that parallel and sequential evaluation
produce *identical* gains in both inference modes — a perf win that
changes results would be a bug, not a win.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.crf.model import CrfModel
from repro.crf.partition import ComponentIndex
from repro.crf.weights import CrfWeights
from repro.datasets import load_dataset
from repro.guidance.gain import GainConfig, GainEstimator

BASELINE_PATH = Path(__file__).parent / "perf_baseline.json"
RESULTS_PATH = Path(__file__).parent / "results" / "perf_gain.txt"

#: Guidance-round scale: large enough that hypothetical chains dominate
#: the round (the regime batch selection actually runs in).
SCALE = 2.0
DATASET_SEED = 42
GAIN_SEED = 1
MAX_WORKERS = 4

SMOKE = bool(os.environ.get("PERF_SMOKE"))
RECORD = bool(os.environ.get("PERF_RECORD"))
REPEATS = 2 if SMOKE else 3
#: Hard floor on the Gibbs-mode parallel speedup (acceptance: ≥ 2×).
HARD_FLOOR = 1.2 if SMOKE else 2.0
#: Fraction of the recorded baseline speedup that must be retained.
BASELINE_FRACTION = 0.5


def _best_of(callable_, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def _nontrivial_weights(database) -> CrfWeights:
    rng = np.random.default_rng(17)
    size = 2 + database.document_features.shape[1] \
        + database.source_features.shape[1]
    values = 0.4 * rng.normal(size=size)
    values[-1] = 0.3  # non-zero coupling exercises the coupled sweep path
    return CrfWeights(values)


def _gain_round(mode: str, parallel: bool):
    """Timed unit: IG_C over the full candidate pool of one round."""
    database = load_dataset("wiki", seed=DATASET_SEED, scale=SCALE)
    model = CrfModel(database, weights=_nontrivial_weights(database))
    estimator = GainEstimator(
        model,
        ComponentIndex(database),
        config=GainConfig(
            inference_mode=mode, parallel=parallel, max_workers=MAX_WORKERS
        ),
        seed=GAIN_SEED,
    )
    candidates = database.unlabelled_indices
    estimator.information_gains(candidates)  # warm-up: caches + engines
    elapsed = _best_of(lambda: estimator.information_gains(candidates))
    gains = estimator.information_gains(candidates)
    estimator.close()
    return elapsed, gains


@pytest.fixture(scope="module")
def measurements():
    gibbs_seq, gains_gibbs_seq = _gain_round("gibbs", parallel=False)
    gibbs_par, gains_gibbs_par = _gain_round("gibbs", parallel=True)
    mf_seq, gains_mf_seq = _gain_round("meanfield", parallel=False)
    mf_par, gains_mf_par = _gain_round("meanfield", parallel=True)
    data = {
        "gibbs": {"sequential": gibbs_seq, "parallel": gibbs_par,
                  "speedup": gibbs_seq / gibbs_par},
        "meanfield": {"sequential": mf_seq, "parallel": mf_par,
                      "speedup": mf_seq / mf_par},
        "num_candidates": int(gains_gibbs_seq.size),
        "equivalent": {
            "gibbs": bool(np.array_equal(gains_gibbs_seq, gains_gibbs_par)),
            "meanfield": bool(np.array_equal(gains_mf_seq, gains_mf_par)),
        },
    }
    _write_results(data)
    if RECORD:
        _record_baseline(data)
    return data


def _write_results(data) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    lines = [
        "Batched gain-evaluation benchmark "
        f"(wiki scale={SCALE}, seed={DATASET_SEED}, "
        f"{data['num_candidates']} candidates, best of {REPEATS}"
        f"{', smoke' if SMOKE else ''})",
        "",
        f"{'unit':<28}{'sequential':>12}{'parallel':>12}{'speedup':>10}",
        f"{'gibbs gain round':<28}"
        f"{data['gibbs']['sequential'] * 1e3:>10.2f}ms"
        f"{data['gibbs']['parallel'] * 1e3:>10.2f}ms"
        f"{data['gibbs']['speedup']:>9.2f}x",
        f"{'meanfield gain round':<28}"
        f"{data['meanfield']['sequential'] * 1e3:>10.2f}ms"
        f"{data['meanfield']['parallel'] * 1e3:>10.2f}ms"
        f"{data['meanfield']['speedup']:>9.2f}x",
        "",
        "bit-for-bit equivalence: "
        f"gibbs={'ok' if data['equivalent']['gibbs'] else 'FAIL'} "
        f"meanfield={'ok' if data['equivalent']['meanfield'] else 'FAIL'}",
        "",
        "(meanfield is informational: the numpy fixed point is GIL-bound,",
        " so thread dispatch is break-even on one core; the gibbs floor is",
        " the guarded quantity.)",
        "",
    ]
    RESULTS_PATH.write_text("\n".join(lines), encoding="utf-8")
    print("\n".join(lines))


def _record_baseline(data) -> None:
    # Merge into the shared baseline file: the inference and streaming
    # benchmarks keep their keys there too, and re-recording one
    # benchmark must not drop the others' records.
    payload = (
        json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
        if BASELINE_PATH.exists()
        else {}
    )
    payload.update(
        {
            "gain_parallel_scale": SCALE,
            "gain_parallel_candidates": data["num_candidates"],
            "gain_parallel_speedup": round(data["gibbs"]["speedup"], 2),
            "gain_parallel_meanfield_speedup": round(
                data["meanfield"]["speedup"], 2
            ),
            "gain_re_record": "PERF_RECORD=1 PYTHONPATH=src python -m "
                              "pytest benchmarks/test_perf_gain.py",
        }
    )
    BASELINE_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def _baseline():
    if not BASELINE_PATH.exists():
        pytest.fail(
            f"{BASELINE_PATH} missing; record it with PERF_RECORD=1"
        )
    return json.loads(BASELINE_PATH.read_text(encoding="utf-8"))


def _floor(baseline_speedup: float) -> float:
    """Required speedup: in smoke mode only the relaxed hard floor
    applies (CI runners are too noisy for baseline-relative bounds)."""
    if SMOKE:
        return HARD_FLOOR
    return max(HARD_FLOOR, baseline_speedup * BASELINE_FRACTION)


class TestBitForBitEquivalence:
    def test_parallel_gains_identical_to_sequential(self, measurements):
        assert measurements["equivalent"]["gibbs"]
        assert measurements["equivalent"]["meanfield"]


class TestGainParallelRegression:
    def test_gibbs_parallel_speedup(self, measurements):
        """Acceptance criterion: gibbs-mode parallel=True ≥ 2×."""
        floor = _floor(_baseline()["gain_parallel_speedup"])
        assert measurements["gibbs"]["speedup"] >= floor, (
            f"gibbs gain-round speedup "
            f"{measurements['gibbs']['speedup']:.2f}x fell below "
            f"{floor:.2f}x"
        )
