"""Benchmark E12 — §8.8: streaming model update time per arrival."""

from repro.experiments import stream_update_time


def test_stream_update_time(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        stream_update_time.run,
        args=(bench_config,),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    for avg in result.column("avg_seconds"):
        assert avg >= 0.0
