"""Benchmark E12 — §8.8 streaming update time, promoted to a regression gate.

Two parts share this module:

* the **experiment table** (E12): replays each reduced-scale corpus as a
  stream and reports the per-arrival cost, now split into the ingest
  phase (structure growth, Alg. 2 lines 2–6) and the online-EM phase
  (lines 8–9);
* the **regression benchmark**: replays the wiki corpus at benchmark
  scale twice — once with the default incremental engine growth and once
  with ``incremental=False`` (the historical rebuild-per-arrival path,
  kept as the reference oracle) — asserts the two runs are bit-for-bit
  identical (per-arrival weights and final probabilities), and asserts
  the incremental path is at least ``HARD_FLOOR``× faster per arrival.
  ``benchmarks/perf_baseline.json`` records the measured speedups
  (``stream_*`` keys) next to the inference hot-path ones.

Modes
-----
* default — full measurement at ``SCALE`` (wiki ×8), hard floor 5×
  total and 5× ingest-phase speedup, plus the baseline-relative bound.
* ``PERF_SMOKE=1`` — reduced scale (wiki ×2) with relaxed floors, for
  CI runners.
* ``PERF_RECORD=1`` — re-records the ``stream_*`` keys of
  ``benchmarks/perf_baseline.json`` from the current measurement (use
  after intentional streaming hot-path changes)::

      PERF_RECORD=1 PYTHONPATH=src python -m pytest \
          benchmarks/test_stream_update_time.py

Every run refreshes ``benchmarks/results/stream_update_time.txt`` with
the experiment table and the raw regression numbers.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.experiments import stream_update_time
from repro.streaming.process import StreamingFactChecker
from repro.streaming.stream import stream_from_database

BASELINE_PATH = Path(__file__).parent / "perf_baseline.json"
RESULTS_PATH = Path(__file__).parent / "results" / "stream_update_time.txt"

DATASET_SEED = 42
CHECKER_SEED = 5

SMOKE = bool(os.environ.get("PERF_SMOKE"))
RECORD = bool(os.environ.get("PERF_RECORD"))
#: Corpus scale of the regression measurement.  The rebuild path pays
#: O(corpus) per arrival, so the contrast (and the measurement's noise
#: margin) grows with scale; smoke mode trades margin for runtime.
SCALE = 2.0 if SMOKE else 8.0
#: Hard floor on the per-arrival speedup (acceptance: ≥ 5× full mode).
HARD_FLOOR = 1.6 if SMOKE else 5.0
#: Hard floor on the ingest-phase speedup — the structural cost the
#: incremental engine eliminates; wider margin than the total.
INGEST_FLOOR = 2.0 if SMOKE else 5.0
#: Fraction of the recorded baseline speedup that must be retained.
BASELINE_FRACTION = 0.5


def _replay(arrivals, incremental: bool):
    """One full stream replay; returns timings and the oracle trail."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        checker = StreamingFactChecker(
            incremental=incremental, seed=CHECKER_SEED
        )
    ingest = update = 0.0
    weight_trail = []
    started = time.perf_counter()
    for arrival in arrivals:
        result = checker.observe(arrival)
        ingest += result.ingest_seconds
        update += result.update_seconds
        weight_trail.append(result.weights.values)
    total = time.perf_counter() - started
    return {
        "total": total,
        "ingest": ingest,
        "update": update,
        "weights": weight_trail,
        "probabilities": np.asarray(checker.database.probabilities).copy(),
    }


def _measure():
    database = load_dataset("wiki", seed=DATASET_SEED, scale=SCALE)
    arrivals = list(stream_from_database(database))
    incremental = _replay(arrivals, incremental=True)
    rebuild = _replay(arrivals, incremental=False)
    if rebuild["total"] / incremental["total"] < HARD_FLOOR * 1.15:
        # Marginal result: re-measure once and keep the best of the two
        # trials per path, rejecting transient load spikes on the host.
        second_inc = _replay(arrivals, incremental=True)
        second_reb = _replay(arrivals, incremental=False)
        for key in ("total", "ingest", "update"):
            incremental[key] = min(incremental[key], second_inc[key])
            rebuild[key] = min(rebuild[key], second_reb[key])
    equivalent = {
        "weights": all(
            np.array_equal(a, b)
            for a, b in zip(incremental["weights"], rebuild["weights"])
        )
        and len(incremental["weights"]) == len(rebuild["weights"]),
        "probabilities": np.array_equal(
            incremental["probabilities"], rebuild["probabilities"]
        ),
    }
    return {
        "arrivals": len(arrivals),
        "num_cliques": database.num_cliques,
        "incremental": {k: incremental[k] for k in ("total", "ingest", "update")},
        "rebuild": {k: rebuild[k] for k in ("total", "ingest", "update")},
        "total_speedup": rebuild["total"] / incremental["total"],
        "ingest_speedup": rebuild["ingest"] / incremental["ingest"],
        "equivalent": equivalent,
    }


@pytest.fixture(scope="module")
def measurements(bench_config):
    data = _measure()
    table = stream_update_time.run(bench_config).format_table()
    _write_results(table, data)
    if RECORD:
        _record_baseline(data)
    return data


def _write_results(table: str, data) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    n = data["arrivals"]
    lines = [
        table,
        "",
        "Incremental-vs-rebuild regression "
        f"(wiki scale={SCALE}, seed={DATASET_SEED}, {n} arrivals, "
        f"{data['num_cliques']} cliques{', smoke' if SMOKE else ''})",
        "",
        f"{'per arrival':<22}{'rebuild':>12}{'incremental':>14}{'speedup':>10}",
        f"{'total':<22}"
        f"{data['rebuild']['total'] / n * 1e3:>10.2f}ms"
        f"{data['incremental']['total'] / n * 1e3:>12.2f}ms"
        f"{data['total_speedup']:>9.2f}x",
        f"{'ingest phase':<22}"
        f"{data['rebuild']['ingest'] / n * 1e3:>10.2f}ms"
        f"{data['incremental']['ingest'] / n * 1e3:>12.2f}ms"
        f"{data['ingest_speedup']:>9.2f}x",
        f"{'online-EM phase':<22}"
        f"{data['rebuild']['update'] / n * 1e3:>10.2f}ms"
        f"{data['incremental']['update'] / n * 1e3:>12.2f}ms",
        "",
        "bit-for-bit equivalence: "
        f"weights={'ok' if data['equivalent']['weights'] else 'FAIL'} "
        f"probabilities={'ok' if data['equivalent']['probabilities'] else 'FAIL'}",
        "",
    ]
    RESULTS_PATH.write_text("\n".join(lines), encoding="utf-8")
    print("\n".join(lines))


def _record_baseline(data) -> None:
    payload = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    payload.update(
        {
            "stream_scale": SCALE,
            "stream_arrivals": data["arrivals"],
            "stream_total_speedup": round(data["total_speedup"], 2),
            "stream_ingest_speedup": round(data["ingest_speedup"], 2),
            "stream_re_record": "PERF_RECORD=1 PYTHONPATH=src python -m "
            "pytest benchmarks/test_stream_update_time.py",
        }
    )
    BASELINE_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def _baseline():
    if not BASELINE_PATH.exists():
        pytest.fail(f"{BASELINE_PATH} missing; record it with PERF_RECORD=1")
    return json.loads(BASELINE_PATH.read_text(encoding="utf-8"))


def _floor(hard: float, baseline_key: str) -> float:
    """Required speedup: in smoke mode only the relaxed hard floor
    applies (CI runners are too noisy for baseline-relative bounds, and
    the smoke scale differs from the recorded one)."""
    if SMOKE:
        return hard
    recorded = _baseline().get(baseline_key)
    if recorded is None:
        return hard
    return max(hard, recorded * BASELINE_FRACTION)


def test_experiment_table_reports_phases(bench_config, measurements):
    """E12 sanity: the table carries the phase split and sane values."""
    result = stream_update_time.run(bench_config)
    for avg, ingest, update in zip(
        result.column("avg_seconds"),
        result.column("avg_ingest"),
        result.column("avg_update"),
    ):
        assert avg >= 0.0 and ingest >= 0.0 and update >= 0.0
        assert avg == pytest.approx(ingest + update, abs=1e-9)


class TestStreamingOracle:
    def test_incremental_matches_rebuild_bit_for_bit(self, measurements):
        assert measurements["equivalent"]["weights"]
        assert measurements["equivalent"]["probabilities"]


class TestStreamUpdateRegression:
    def test_per_arrival_speedup(self, measurements):
        floor = _floor(HARD_FLOOR, "stream_total_speedup")
        assert measurements["total_speedup"] >= floor, (
            f"per-arrival speedup {measurements['total_speedup']:.2f}x "
            f"fell below {floor:.2f}x"
        )

    def test_ingest_phase_speedup(self, measurements):
        floor = _floor(INGEST_FLOOR, "stream_ingest_speedup")
        assert measurements["ingest_speedup"] >= floor, (
            f"ingest-phase speedup {measurements['ingest_speedup']:.2f}x "
            f"fell below {floor:.2f}x"
        )
