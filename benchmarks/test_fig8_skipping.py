"""Benchmark E8 — Fig. 8: effects of missing user input (§8.5)."""

from repro.experiments import fig8_skipping


def test_fig8_skipping(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        fig8_skipping.run,
        args=(bench_config,),
        kwargs={"skip_probabilities": (0.1, 0.5)},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert len(result.rows) == 2 * len(bench_config.datasets)
