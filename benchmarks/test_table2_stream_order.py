"""Benchmark E13 — Table 2: validation-sequence preservation (§8.8)."""

from repro.experiments import table2_stream_order


def test_table2_stream_order(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        table2_stream_order.run,
        args=(bench_config,),
        kwargs={"periods": (0.1, 0.3)},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    for row in result.rows:
        for tau in row[1:]:
            assert -1.0 <= tau <= 1.0
