"""Benchmark E14 — Table 3: experts vs. crowd workers (§8.9)."""

from repro.experiments import table3_deployment


def test_table3_deployment(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        table3_deployment.run,
        args=(bench_config,),
        kwargs={"num_claims": 30},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    # Shape: experts slower and at least as accurate as the crowd.
    for row in result.rows:
        _, expert_time, crowd_time, expert_acc, crowd_acc = row
        assert expert_time > crowd_time
        assert expert_acc >= crowd_acc - 0.15
