"""Benchmark E5 — Fig. 6: effectiveness of guidance strategies (§8.4)."""

import numpy as np

from repro.experiments import fig6_guidance


def test_fig6_guidance(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        fig6_guidance.run,
        args=(bench_config,),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    # Shape: averaged over datasets, hybrid needs no more effort than
    # random to reach the precision target.
    efforts = {}
    for row in result.rows:
        efforts.setdefault(row[1], []).append(row[-1])
    assert np.mean(efforts["hybrid"]) <= np.mean(efforts["random"]) + 0.05
