"""Legacy setup shim: this environment's setuptools lacks PEP 660 support."""
from setuptools import setup

setup()
