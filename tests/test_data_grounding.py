"""Tests for groundings and the precision measures (§2.1, §8.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.grounding import Grounding, precision_improvement
from repro.errors import DataModelError


class TestConstruction:
    def test_values_readonly(self):
        g = Grounding([1, 0, 1])
        with pytest.raises(ValueError):
            g.values[0] = 0

    def test_rejects_non_binary(self):
        with pytest.raises(DataModelError):
            Grounding([0, 2, 1])

    def test_rejects_empty(self):
        with pytest.raises(DataModelError):
            Grounding([])

    def test_rejects_matrix(self):
        with pytest.raises(DataModelError):
            Grounding(np.zeros((2, 2)))

    def test_from_probabilities_threshold(self):
        g = Grounding.from_probabilities([0.2, 0.5, 0.9])
        assert list(g) == [0, 1, 1]

    def test_from_probabilities_custom_threshold(self):
        g = Grounding.from_probabilities([0.2, 0.5, 0.9], threshold=0.6)
        assert list(g) == [0, 0, 1]

    def test_from_probabilities_invalid_threshold(self):
        with pytest.raises(DataModelError):
            Grounding.from_probabilities([0.5], threshold=1.5)


class TestAccessors:
    def test_len_and_getitem(self):
        g = Grounding([1, 0])
        assert len(g) == 2
        assert g[0] == 1
        assert g[1] == 0

    def test_credible_indices(self):
        g = Grounding([1, 0, 1, 0])
        assert g.credible_indices().tolist() == [0, 2]

    def test_num_credible(self):
        assert Grounding([1, 1, 0]).num_credible() == 2

    def test_equality_and_hash(self):
        assert Grounding([1, 0]) == Grounding([1, 0])
        assert Grounding([1, 0]) != Grounding([0, 1])
        assert hash(Grounding([1, 0])) == hash(Grounding([1, 0]))

    def test_replace_returns_new(self):
        g = Grounding([1, 0])
        h = g.replace(1, 1)
        assert list(g) == [1, 0]
        assert list(h) == [1, 1]

    def test_replace_invalid_value(self):
        with pytest.raises(DataModelError):
            Grounding([1, 0]).replace(0, 5)

    def test_as_mapping(self):
        g = Grounding([1, 0])
        assert g.as_mapping(["a", "b"]) == {"a": 1, "b": 0}

    def test_as_mapping_length_mismatch(self):
        with pytest.raises(DataModelError):
            Grounding([1, 0]).as_mapping(["a"])


class TestMetrics:
    def test_differences_counts_flips(self):
        a = Grounding([1, 0, 1, 0])
        b = Grounding([1, 1, 0, 0])
        assert a.differences(b) == 2
        assert a.differences(a) == 0

    def test_differences_length_mismatch(self):
        with pytest.raises(DataModelError):
            Grounding([1, 0]).differences(Grounding([1]))

    def test_precision_is_agreement_over_all_claims(self):
        g = Grounding([1, 0, 1, 1])
        truth = np.asarray([1, 0, 0, 1])
        assert g.precision(truth) == pytest.approx(0.75)

    def test_precision_perfect(self):
        truth = np.asarray([1, 0])
        assert Grounding([1, 0]).precision(truth) == 1.0

    def test_precision_counts_true_negatives(self):
        # Unlike IR precision, agreement on non-credible claims counts.
        truth = np.asarray([0, 0, 0])
        assert Grounding([0, 0, 0]).precision(truth) == 1.0


class TestPrecisionImprovement:
    def test_definition(self):
        # R_i = (P_i - P_0) / (1 - P_0)
        assert precision_improvement(0.8, 0.6) == pytest.approx(0.5)

    def test_no_improvement_is_zero(self):
        assert precision_improvement(0.6, 0.6) == pytest.approx(0.0)

    def test_full_improvement_is_one(self):
        assert precision_improvement(1.0, 0.4) == pytest.approx(1.0)

    def test_initial_one_returns_none(self):
        assert precision_improvement(1.0, 1.0) is None

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            precision_improvement(1.2, 0.5)
        with pytest.raises(ValueError):
            precision_improvement(0.5, -0.1)
