"""Tests for calibration diagnostics (§8.3 companions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import (
    brier_score,
    correct_value_probabilities,
    expected_calibration_error,
    reliability_curve,
)


class TestValidation:
    def test_misaligned_inputs(self):
        with pytest.raises(ValueError):
            brier_score([0.5], [1, 0])

    def test_empty_inputs(self):
        with pytest.raises(ValueError):
            brier_score([], [])

    def test_out_of_range_probability(self):
        with pytest.raises(ValueError):
            brier_score([1.5], [1])

    def test_non_binary_truth(self):
        with pytest.raises(ValueError):
            brier_score([0.5], [2])


class TestBrier:
    def test_perfect_predictions(self):
        assert brier_score([1.0, 0.0], [1, 0]) == 0.0

    def test_worst_predictions(self):
        assert brier_score([0.0, 1.0], [1, 0]) == 1.0

    def test_uninformed_predictions(self):
        assert brier_score([0.5, 0.5], [1, 0]) == pytest.approx(0.25)


class TestReliabilityCurve:
    def test_bin_counts_cover_all_claims(self):
        rng = np.random.default_rng(0)
        probs = rng.random(200)
        truth = (rng.random(200) < probs).astype(int)
        bins = reliability_curve(probs, truth, num_bins=10)
        assert sum(b.count for b in bins) == 200

    def test_calibrated_data_matches_diagonal(self):
        rng = np.random.default_rng(1)
        probs = rng.random(5000)
        truth = (rng.random(5000) < probs).astype(int)
        bins = reliability_curve(probs, truth, num_bins=5)
        for b in bins:
            if b.count > 100:
                assert abs(b.mean_predicted - b.empirical) < 0.1

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            reliability_curve([0.5], [1], num_bins=0)

    def test_boundary_zero_lands_in_first_bin(self):
        bins = reliability_curve([0.0], [0], num_bins=10)
        assert bins[0].count == 1


class TestECE:
    def test_calibrated_data_low_ece(self):
        rng = np.random.default_rng(2)
        probs = rng.random(5000)
        truth = (rng.random(5000) < probs).astype(int)
        assert expected_calibration_error(probs, truth) < 0.05

    def test_anticalibrated_data_high_ece(self):
        probs = np.asarray([0.9] * 50 + [0.1] * 50)
        truth = np.asarray([0] * 50 + [1] * 50)
        assert expected_calibration_error(probs, truth) > 0.5


class TestCorrectValueProbabilities:
    def test_definition(self):
        values = correct_value_probabilities([0.8, 0.3], [1, 0])
        assert values.tolist() == [0.8, 0.7]

    def test_bounds(self):
        rng = np.random.default_rng(3)
        probs = rng.random(100)
        truth = rng.integers(0, 2, 100)
        values = correct_value_probabilities(probs, truth)
        assert np.all((values >= 0) & (values <= 1))
