"""Tests for the crowdsourcing substrate (§8.9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowd.aggregation import DawidSkeneBinary, majority_vote
from repro.crowd.deployment import run_deployment
from repro.crowd.workers import (
    CROWD_PROFILES,
    EXPERT_PROFILES,
    SimulatedValidator,
    ValidatorProfile,
)
from repro.data.entities import Claim
from repro.datasets import load_dataset
from repro.errors import ValidationProcessError


class TestProfiles:
    def test_experts_more_accurate_than_crowd(self):
        for dataset in EXPERT_PROFILES:
            assert (
                EXPERT_PROFILES[dataset].accuracy
                > CROWD_PROFILES[dataset].accuracy
            )

    def test_experts_slower_than_crowd(self):
        for dataset in EXPERT_PROFILES:
            assert (
                EXPERT_PROFILES[dataset].median_seconds
                > CROWD_PROFILES[dataset].median_seconds
            )

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ValidatorProfile("x", accuracy=1.2, median_seconds=10.0)
        with pytest.raises(ValueError):
            ValidatorProfile("x", accuracy=0.9, median_seconds=0.0)


class TestSimulatedValidator:
    def test_answers_binary(self):
        worker = SimulatedValidator(CROWD_PROFILES["wiki"], "w1", seed=0)
        answers = {worker.answer(Claim("c", truth=True)) for _ in range(50)}
        assert answers <= {0, 1}

    def test_high_accuracy_mostly_correct(self):
        worker = SimulatedValidator(EXPERT_PROFILES["wiki"], "w1", seed=0)
        correct = sum(
            worker.answer(Claim("c", truth=True)) == 1 for _ in range(200)
        )
        assert correct > 180

    def test_requires_truth(self):
        worker = SimulatedValidator(CROWD_PROFILES["wiki"], "w1", seed=0)
        with pytest.raises(ValidationProcessError):
            worker.answer(Claim("c"))

    def test_response_times_positive(self):
        worker = SimulatedValidator(CROWD_PROFILES["wiki"], "w1", seed=0)
        times = [worker.response_seconds() for _ in range(20)]
        assert all(t > 0 for t in times)

    def test_empty_worker_id_rejected(self):
        with pytest.raises(ValidationProcessError):
            SimulatedValidator(CROWD_PROFILES["wiki"], "", seed=0)

    def test_accuracy_jitter_bounded(self):
        workers = [
            SimulatedValidator(CROWD_PROFILES["wiki"], f"w{i}", seed=i)
            for i in range(20)
        ]
        accuracies = [w.accuracy for w in workers]
        assert all(0.5 <= a <= 1.0 for a in accuracies)
        assert len(set(round(a, 6) for a in accuracies)) > 1  # heterogeneous


class TestMajorityVote:
    def test_simple_majority(self):
        answers = {"t1": {"a": 1, "b": 1, "c": 0}}
        assert majority_vote(answers) == {"t1": 1}

    def test_tie_resolves_to_zero(self):
        answers = {"t1": {"a": 1, "b": 0}}
        assert majority_vote(answers) == {"t1": 0}

    def test_empty_votes_rejected(self):
        with pytest.raises(ValidationProcessError):
            majority_vote({"t1": {}})


class TestDawidSkene:
    def make_answers(self, num_tasks=40, num_workers=7, bad_workers=2, seed=0):
        """Synthetic answers: most workers good, some adversarial."""
        rng = np.random.default_rng(seed)
        truth = rng.integers(0, 2, size=num_tasks)
        answers = {}
        for t in range(num_tasks):
            votes = {}
            for w in range(num_workers):
                accuracy = 0.3 if w < bad_workers else 0.9
                if rng.random() < accuracy:
                    votes[f"w{w}"] = int(truth[t])
                else:
                    votes[f"w{w}"] = int(1 - truth[t])
            answers[f"t{t:03d}"] = votes
        return answers, truth

    def test_recovers_truth_with_reliable_majority(self):
        answers, truth = self.make_answers()
        result = DawidSkeneBinary().aggregate(answers)
        hits = sum(
            result.consensus[f"t{t:03d}"] == truth[t] for t in range(len(truth))
        )
        assert hits >= 0.9 * len(truth)

    def test_identifies_bad_workers(self):
        answers, _ = self.make_answers()
        result = DawidSkeneBinary().aggregate(answers)
        bad = np.mean([result.worker_accuracy["w0"], result.worker_accuracy["w1"]])
        good = np.mean(
            [result.worker_accuracy[f"w{i}"] for i in range(2, 7)]
        )
        assert good > bad

    def test_beats_majority_with_adversaries(self):
        answers, truth = self.make_answers(
            num_tasks=60, num_workers=7, bad_workers=3, seed=3
        )
        ds = DawidSkeneBinary().aggregate(answers).consensus
        mv = majority_vote(answers)
        ds_hits = sum(ds[f"t{t:03d}"] == truth[t] for t in range(len(truth)))
        mv_hits = sum(mv[f"t{t:03d}"] == truth[t] for t in range(len(truth)))
        assert ds_hits >= mv_hits

    def test_posteriors_in_unit_interval(self):
        answers, _ = self.make_answers(num_tasks=10)
        result = DawidSkeneBinary().aggregate(answers)
        assert all(0.0 <= p <= 1.0 for p in result.posteriors.values())

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValidationProcessError):
            DawidSkeneBinary().aggregate({})

    def test_invalid_vote_rejected(self):
        with pytest.raises(ValidationProcessError):
            DawidSkeneBinary().aggregate({"t1": {"w1": 2}})

    def test_construction_validation(self):
        with pytest.raises(ValidationProcessError):
            DawidSkeneBinary(max_iterations=0)
        with pytest.raises(ValidationProcessError):
            DawidSkeneBinary(reliability_floor=0.6)

    def test_converges(self):
        answers, _ = self.make_answers(num_tasks=20)
        result = DawidSkeneBinary().aggregate(answers)
        assert result.iterations < 100


class TestDeployment:
    def test_outcome_shapes(self):
        db = load_dataset("wiki", seed=42, scale=0.15)
        outcomes = run_deployment(db, "wiki", num_claims=15, seed=1)
        assert set(outcomes) == {"expert", "crowd"}
        for outcome in outcomes.values():
            assert 0.0 <= outcome.accuracy <= 1.0
            assert outcome.mean_seconds > 0

    def test_expert_more_accurate(self):
        db = load_dataset("wiki", seed=42, scale=0.3)
        outcomes = run_deployment(db, "wiki", num_claims=40, seed=1)
        assert outcomes["expert"].accuracy >= outcomes["crowd"].accuracy - 0.1

    def test_expert_slower(self):
        db = load_dataset("wiki", seed=42, scale=0.15)
        outcomes = run_deployment(db, "wiki", num_claims=15, seed=1)
        assert outcomes["expert"].mean_seconds > outcomes["crowd"].mean_seconds

    def test_crowd_redundancy_counts_answers(self):
        db = load_dataset("wiki", seed=42, scale=0.15)
        outcomes = run_deployment(
            db, "wiki", num_claims=10, crowd_redundancy=5, seed=1
        )
        assert outcomes["crowd"].total_answers == 50

    def test_unknown_dataset_rejected(self):
        db = load_dataset("wiki", seed=42, scale=0.15)
        with pytest.raises(ValidationProcessError):
            run_deployment(db, "unknown", seed=1)

    def test_majority_aggregator(self):
        db = load_dataset("wiki", seed=42, scale=0.15)
        outcomes = run_deployment(
            db, "wiki", num_claims=10, aggregator="majority", seed=1
        )
        assert 0.0 <= outcomes["crowd"].accuracy <= 1.0

    def test_invalid_aggregator(self):
        db = load_dataset("wiki", seed=42, scale=0.15)
        with pytest.raises(ValidationProcessError):
            run_deployment(db, "wiki", aggregator="mean", seed=1)
