"""Tests for the TRON optimiser (Lin et al. 2008) used by the M-step."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crf.potentials import sigmoid
from repro.errors import InferenceError
from repro.inference.tron import (
    TronResult,
    WeightedLogisticLoss,
    tron_minimize,
)


def make_separable_problem(n=200, seed=0):
    """Linearly separable 2-feature logistic problem."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    truth = np.asarray([1.5, -2.0])
    targets = (sigmoid(x @ truth) > rng.random(n)).astype(float)
    weights = np.ones(n)
    return WeightedLogisticLoss(x, targets, weights, regularization=1.0), truth


class TestLossValidation:
    def test_misaligned_targets(self):
        with pytest.raises(InferenceError):
            WeightedLogisticLoss(np.ones((3, 2)), np.ones(2), np.ones(3), 1.0)

    def test_misaligned_weights(self):
        with pytest.raises(InferenceError):
            WeightedLogisticLoss(np.ones((3, 2)), np.ones(3), np.ones(2), 1.0)

    def test_negative_weights(self):
        with pytest.raises(InferenceError):
            WeightedLogisticLoss(np.ones((3, 2)), np.ones(3), -np.ones(3), 1.0)

    def test_targets_out_of_range(self):
        with pytest.raises(InferenceError):
            WeightedLogisticLoss(np.ones((3, 2)), 2 * np.ones(3), np.ones(3), 1.0)

    def test_non_positive_regularization(self):
        with pytest.raises(InferenceError):
            WeightedLogisticLoss(np.ones((3, 2)), np.ones(3), np.ones(3), 0.0)

    def test_one_dimensional_design_rejected(self):
        with pytest.raises(InferenceError):
            WeightedLogisticLoss(np.ones(3), np.ones(3), np.ones(3), 1.0)


class TestDerivatives:
    def test_gradient_matches_finite_differences(self):
        loss, _ = make_separable_problem(n=50)
        w = np.asarray([0.3, -0.7])
        grad = loss.gradient(w)
        eps = 1e-6
        for i in range(2):
            delta = np.zeros(2)
            delta[i] = eps
            numeric = (loss.value(w + delta) - loss.value(w - delta)) / (2 * eps)
            assert grad[i] == pytest.approx(numeric, rel=1e-4)

    def test_hessian_vector_matches_finite_differences(self):
        loss, _ = make_separable_problem(n=50)
        w = np.asarray([0.3, -0.7])
        v = np.asarray([0.5, 1.0])
        curvature = loss.hessian_diag(w)
        hv = loss.hessian_vector(curvature, v)
        eps = 1e-6
        numeric = (loss.gradient(w + eps * v) - loss.gradient(w - eps * v)) / (
            2 * eps
        )
        assert np.allclose(hv, numeric, rtol=1e-3, atol=1e-6)

    def test_value_convex_along_segment(self):
        loss, _ = make_separable_problem(n=50)
        a = np.asarray([0.0, 0.0])
        b = np.asarray([2.0, -1.0])
        mid = 0.5 * (a + b)
        assert loss.value(mid) <= 0.5 * (loss.value(a) + loss.value(b)) + 1e-9


class TestOptimisation:
    def test_converges_to_gradient_tolerance(self):
        loss, _ = make_separable_problem()
        result = tron_minimize(loss, gradient_tolerance=1e-4)
        assert result.converged
        assert result.gradient_norm <= 1e-4 * np.linalg.norm(
            loss.gradient(np.zeros(2))
        ) + 1e-9

    def test_recovers_signal_direction(self):
        loss, truth = make_separable_problem(n=800, seed=1)
        result = tron_minimize(loss)
        # L2 shrinkage changes the magnitude, not the direction.
        cosine = (result.weights @ truth) / (
            np.linalg.norm(result.weights) * np.linalg.norm(truth)
        )
        assert cosine > 0.95

    def test_matches_scipy_reference(self):
        from scipy.optimize import minimize

        loss, _ = make_separable_problem(n=300, seed=2)
        ours = tron_minimize(loss, gradient_tolerance=1e-6)
        reference = minimize(
            loss.value, np.zeros(2), jac=loss.gradient, method="L-BFGS-B"
        )
        assert ours.objective == pytest.approx(reference.fun, rel=1e-5)

    def test_warm_start_takes_fewer_iterations(self):
        loss, _ = make_separable_problem(n=400, seed=3)
        cold = tron_minimize(loss, gradient_tolerance=1e-5)
        warm = tron_minimize(
            loss, initial=cold.weights, gradient_tolerance=1e-5
        )
        assert warm.iterations <= cold.iterations
        assert warm.iterations <= 1

    def test_weighted_examples_shift_solution(self):
        x = np.asarray([[1.0], [1.0]])
        targets = np.asarray([1.0, 0.0])
        balanced = tron_minimize(
            WeightedLogisticLoss(x, targets, np.asarray([1.0, 1.0]), 0.01)
        )
        skewed = tron_minimize(
            WeightedLogisticLoss(x, targets, np.asarray([10.0, 1.0]), 0.01)
        )
        # More weight on the positive example pulls the weight up.
        assert skewed.weights[0] > balanced.weights[0]

    def test_zero_weight_examples_ignored(self):
        x = np.asarray([[1.0], [1.0]])
        targets = np.asarray([1.0, 0.0])
        result = tron_minimize(
            WeightedLogisticLoss(x, targets, np.asarray([1.0, 0.0]), 0.01)
        )
        assert result.weights[0] > 1.0  # behaves like positive-only data

    def test_initial_shape_validated(self):
        loss, _ = make_separable_problem(n=20)
        with pytest.raises(InferenceError):
            tron_minimize(loss, initial=np.zeros(5))

    def test_result_type(self):
        loss, _ = make_separable_problem(n=20)
        assert isinstance(tron_minimize(loss), TronResult)

    def test_strong_regularization_shrinks_weights(self):
        x = np.asarray([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        targets = np.asarray([1.0, 0.0, 1.0])
        weak = tron_minimize(
            WeightedLogisticLoss(x, targets, np.ones(3), regularization=0.01)
        )
        strong = tron_minimize(
            WeightedLogisticLoss(x, targets, np.ones(3), regularization=100.0)
        )
        assert np.linalg.norm(strong.weights) < np.linalg.norm(weak.weights)

    def test_iteration_budget_respected(self):
        loss, _ = make_separable_problem(n=400, seed=4)
        result = tron_minimize(loss, max_iterations=1, gradient_tolerance=1e-12)
        assert result.iterations <= 1
