"""Tests for the unified session façade (repro.api.session)."""

from __future__ import annotations

import warnings

import pytest

from repro import LegacyAPIWarning, SimulatedUser, make_strategy
from repro.api import FactCheckSession, SessionResult, SessionSpec
from repro.errors import SessionError
from repro.inference.icrf import ICrf
from repro.streaming import stream_from_database
from repro.streaming.process import StreamingFactChecker
from repro.validation.oracle import User
from repro.validation.process import ValidationProcess

from tests.fixtures import build_micro_database


def micro_spec(**overrides) -> SessionSpec:
    base = dict(
        seed=3,
        guidance={"strategy": "info", "candidate_limit": 5},
        effort={"goal": {"kind": "true_precision", "threshold": 1.0}},
    )
    base.update(overrides)
    return SessionSpec(**base)


class TestLifecycle:
    def test_open_initializes_batch_trace(self, micro_db):
        session = FactCheckSession(micro_spec(), database=micro_db).open()
        trace = session.trace
        assert trace.iterations == 0
        assert trace.initial_precision is not None
        assert session.status == "open"

    def test_methods_require_open(self, micro_db):
        session = FactCheckSession(micro_spec(), database=micro_db)
        with pytest.raises(SessionError):
            session.step()
        with pytest.raises(SessionError):
            session.trace

    def test_close_returns_result_and_freezes(self, micro_db):
        session = FactCheckSession(micro_spec(), database=micro_db).open()
        result = session.close()
        assert isinstance(result, SessionResult)
        assert session.status == "closed"
        assert session.close() is result  # idempotent
        with pytest.raises(SessionError):
            session.step()

    def test_context_manager_closes(self, micro_db):
        with FactCheckSession(micro_spec(), database=micro_db) as session:
            session.step()
        assert session.status == "closed"

    def test_mode_guards(self, micro_db):
        batch = FactCheckSession(micro_spec(), database=micro_db).open()
        with pytest.raises(SessionError):
            batch.observe(None)
        with pytest.raises(SessionError):
            batch.validate()
        streaming = FactCheckSession(micro_spec(mode="streaming")).open()
        with pytest.raises(SessionError):
            streaming.step()

    def test_spec_dataset_materialises_corpus(self):
        spec = micro_spec(
            dataset={"name": "wiki", "seed": 42, "scale": 0.1},
            effort={"budget": 2},
        )
        with FactCheckSession(spec) as session:
            assert session.database.num_claims > 0


class TestBatchRun:
    def test_run_reaches_goal_with_stop_reason(self, micro_db):
        spec = micro_spec()
        result = FactCheckSession(spec, database=micro_db).run()
        assert result.mode == "batch"
        assert result.stop_reason in ("goal", "exhausted")
        assert result.trace.stop_reason == result.stop_reason
        assert result.trace.final_grounding is not None
        # Claims are reported by their stable identifiers.
        claim_ids = {c.claim_id for c in micro_db.claims}
        assert set(result.validated_claim_ids) <= claim_ids

    def test_run_respects_budget(self, micro_db):
        spec = micro_spec(effort={"budget": 1, "goal": {"kind": "none"}})
        result = FactCheckSession(spec, database=micro_db).run()
        assert result.stop_reason == "budget"
        assert result.num_labelled == 1

    def test_run_max_iterations(self, micro_db):
        spec = micro_spec(effort={"goal": {"kind": "none"}})
        result = FactCheckSession(spec, database=micro_db).run(max_iterations=1)
        assert result.stop_reason == "max_iterations"
        assert result.trace.iterations == 1

    def test_run_exhausts_database(self, micro_db):
        spec = micro_spec(effort={"goal": {"kind": "none"}})
        result = FactCheckSession(spec, database=micro_db).run()
        assert result.stop_reason == "exhausted"
        assert result.num_labelled == micro_db.num_claims

    def test_on_iteration_callback_sees_every_record(self, micro_db):
        seen = []
        spec = micro_spec(effort={"goal": {"kind": "none"}})
        result = FactCheckSession(spec, database=micro_db).run(
            on_iteration=seen.append
        )
        assert len(seen) == result.trace.iterations
        assert all(record.claim_ids for record in seen)

    def test_early_termination_reason_recorded(self, micro_db):
        spec = micro_spec(
            effort={
                "goal": {"kind": "none"},
                "termination": [
                    {"kind": "cng", "params": {"patience": 1,
                                               "max_changes": 3}}
                ],
            }
        )
        result = FactCheckSession(spec, database=micro_db).run()
        assert result.stop_reason == "cng"

    def test_record_label_accepts_id_and_index(self, micro_db):
        session = FactCheckSession(micro_spec(), database=micro_db).open()
        session.record_label("c1", 1)
        session.record_label(1, 0)
        assert session.database.label_of(0) == 1
        assert session.database.label_of(1) == 0
        assert session.claim_index("c3") == 2
        assert session.claim_id(2) == "c3"

    def test_external_labels_reported_and_checkpointed(self, micro_db, tmp_path):
        session = FactCheckSession(micro_spec(), database=micro_db).open()
        session.record_label("c1", 1)
        path = tmp_path / "ckpt.json"
        session.save(path)
        resumed = FactCheckSession.load(path)
        assert session.close().validated_claim_ids == ["c1"]
        assert resumed.result().validated_claim_ids == ["c1"]


def streaming_spec(**overrides) -> SessionSpec:
    return micro_spec(
        mode="streaming", effort={"goal": {"kind": "none"}}, **overrides
    )


class TestStreaming:
    def test_observe_and_validate(self, micro_db):
        spec = streaming_spec()
        session = FactCheckSession(spec).open()
        for arrival in stream_from_database(micro_db):
            update = session.observe(arrival)
        assert update.num_claims == micro_db.num_claims
        records = session.validate(2)
        assert 1 <= len(records) <= 2
        result = session.close()
        assert result.mode == "streaming"
        assert result.stop_reason == "stream_end"
        assert len(result.stream_updates) > 0
        assert result.validated_claim_ids
        assert result.trace.records == records

    def test_run_interleaves_validation(self, micro_db):
        spec = streaming_spec(stream={"validation_every": 1})
        arrivals = list(stream_from_database(micro_db))
        result = FactCheckSession(spec).run(arrivals=arrivals)
        assert len(result.validated_claim_ids) >= 1
        assert result.num_claims == micro_db.num_claims

    def test_streaming_record_label_by_index(self, micro_db):
        spec = streaming_spec()
        session = FactCheckSession(spec).open()
        for arrival in stream_from_database(micro_db):
            session.observe(arrival)
        index = session.database.claim_position("c2")
        session.record_label(index, 0)
        assert session.checker.database.label_of(index) == 0
        assert "c2" in session.result().validated_claim_ids

    def test_final_precision_computed_from_truth(self, micro_db):
        spec = streaming_spec(stream={"validation_every": 1})
        arrivals = list(stream_from_database(micro_db))
        result = FactCheckSession(spec).run(arrivals=arrivals)
        assert result.final_precision is not None
        assert 0.0 <= result.final_precision <= 1.0


class TestCustomUser:
    class AlwaysTrue(User):
        def validate(self, claim):
            return 1

    def test_custom_user_drives_session(self, micro_db):
        spec = micro_spec(effort={"budget": 2, "goal": {"kind": "none"}})
        session = FactCheckSession(
            spec, database=micro_db, user=self.AlwaysTrue()
        )
        result = session.run()
        assert result.num_labelled == 2
        assert all(
            value == 1
            for record in result.trace.records
            for value in record.user_values
        )

    def test_custom_user_without_state_cannot_checkpoint(self, micro_db, tmp_path):
        from repro.errors import CheckpointError

        session = FactCheckSession(
            micro_spec(), database=micro_db, user=self.AlwaysTrue()
        ).open()
        with pytest.raises(CheckpointError):
            session.save(tmp_path / "ckpt.json")

    class StatefulUser(AlwaysTrue):
        def state_dict(self):
            return {}

        def load_state_dict(self, state):
            pass

    def test_custom_user_checkpoint_requires_user_on_load(
        self, micro_db, tmp_path
    ):
        from repro.errors import CheckpointError

        session = FactCheckSession(
            micro_spec(), database=micro_db, user=self.StatefulUser()
        ).open()
        path = tmp_path / "ckpt.json"
        session.save(path)
        with pytest.raises(CheckpointError):
            FactCheckSession.load(path)  # would rebuild a SimulatedUser
        with pytest.raises(CheckpointError):
            FactCheckSession.load(path, user=self.AlwaysTrue())  # wrong type
        resumed = FactCheckSession.load(path, user=self.StatefulUser())
        assert resumed.status == "open"

    def test_save_after_close_resumes_final_state(self, micro_db, tmp_path):
        session = FactCheckSession(micro_spec(), database=micro_db)
        result = session.run()
        path = tmp_path / "final.json"
        session.save(path)
        resumed = FactCheckSession.load(path)
        assert resumed.trace.iterations == result.trace.iterations
        assert resumed.run().stop_reason == result.stop_reason


class TestDeprecations:
    def test_legacy_constructors_warn(self, micro_db):
        with pytest.warns(LegacyAPIWarning):
            ValidationProcess(
                micro_db,
                strategy=make_strategy("random"),
                user=SimulatedUser(seed=0),
                seed=0,
            )
        with pytest.warns(LegacyAPIWarning):
            ICrf(build_micro_database(), seed=0)
        with pytest.warns(LegacyAPIWarning):
            StreamingFactChecker(seed=0)

    def test_session_api_does_not_warn(self, micro_db):
        with warnings.catch_warnings():
            warnings.simplefilter("error", LegacyAPIWarning)
            FactCheckSession(micro_spec(), database=micro_db).run()

    def test_from_spec_paths_do_not_warn(self, micro_db):
        from repro.api import InferenceSpec

        with warnings.catch_warnings():
            warnings.simplefilter("error", LegacyAPIWarning)
            icrf = ICrf.from_spec(micro_db, InferenceSpec(), seed=0)
            ValidationProcess.from_spec(micro_db, micro_spec(), icrf=icrf, seed=0)
            StreamingFactChecker.from_spec(micro_spec(mode="streaming"), seed=0)
