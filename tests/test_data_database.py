"""Tests for the probabilistic fact database (§2.1, §3.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.database import FactDatabase
from repro.data.entities import Claim, ClaimLink, Document, Source
from repro.errors import DataModelError

from tests.fixtures import build_micro_database


class TestConstruction:
    def test_counts(self, micro_db):
        assert micro_db.num_sources == 2
        assert micro_db.num_documents == 4
        assert micro_db.num_claims == 3
        # One clique per (document, claim link): d1 has two links.
        assert micro_db.num_cliques == 5

    def test_duplicate_claim_ids_rejected(self):
        with pytest.raises(DataModelError, match="duplicate claim"):
            FactDatabase(
                sources=[Source("s1", features=[0.0])],
                documents=[],
                claims=[Claim("c1"), Claim("c1")],
            )

    def test_unknown_source_reference_rejected(self):
        with pytest.raises(DataModelError, match="unknown"):
            FactDatabase(
                sources=[Source("s1", features=[0.0])],
                documents=[
                    Document("d1", source_id="ghost", features=[0.0],
                             claim_links=(ClaimLink("c1"),))
                ],
                claims=[Claim("c1")],
            )

    def test_unknown_claim_reference_rejected(self):
        with pytest.raises(DataModelError, match="unknown"):
            FactDatabase(
                sources=[Source("s1", features=[0.0])],
                documents=[
                    Document("d1", source_id="s1", features=[0.0],
                             claim_links=(ClaimLink("ghost"),))
                ],
                claims=[Claim("c1")],
            )

    def test_no_claims_rejected(self):
        with pytest.raises(DataModelError):
            FactDatabase(sources=[], documents=[], claims=[])

    def test_inconsistent_feature_dims_rejected(self):
        with pytest.raises(DataModelError, match="dimensionality"):
            FactDatabase(
                sources=[
                    Source("s1", features=[0.0]),
                    Source("s2", features=[0.0, 1.0]),
                ],
                documents=[],
                claims=[Claim("c1")],
            )

    def test_prior_out_of_range_rejected(self):
        with pytest.raises(DataModelError):
            build_micro_database(prior=1.5)

    def test_stance_signs_recorded(self, micro_db):
        signs = sorted(c.stance_sign for c in micro_db.cliques)
        assert signs == [-1, -1, 1, 1, 1]


class TestIdentifierMapping:
    def test_claim_roundtrip(self, micro_db):
        for index in range(micro_db.num_claims):
            assert micro_db.claim_position(micro_db.claim_id(index)) == index

    def test_unknown_claim_raises(self, micro_db):
        with pytest.raises(DataModelError):
            micro_db.claim_position("ghost")

    def test_unknown_source_raises(self, micro_db):
        with pytest.raises(DataModelError):
            micro_db.source_position("ghost")

    def test_unknown_document_raises(self, micro_db):
        with pytest.raises(DataModelError):
            micro_db.document_position("ghost")


class TestAdjacency:
    def test_claims_of_source(self, micro_db):
        s1 = micro_db.source_position("s1")
        claims = {micro_db.claim_id(int(i)) for i in micro_db.claims_of_source(s1)}
        assert claims == {"c1", "c2", "c3"}

    def test_sources_of_claim(self, micro_db):
        c1 = micro_db.claim_position("c1")
        sources = set(int(s) for s in micro_db.sources_of_claim(c1))
        assert sources == {
            micro_db.source_position("s1"),
            micro_db.source_position("s2"),
        }

    def test_cliques_of_claim_cover_all(self, micro_db):
        total = sum(
            len(micro_db.cliques_of_claim(c)) for c in range(micro_db.num_claims)
        )
        assert total == micro_db.num_cliques

    def test_connected_components_single(self, micro_db):
        components = micro_db.connected_components()
        assert len(components) == 1
        assert sorted(int(c) for c in components[0]) == [0, 1, 2]

    def test_disconnected_claims_form_components(self):
        db = FactDatabase(
            sources=[Source("s1", features=[0.0]), Source("s2", features=[0.0])],
            documents=[
                Document("d1", source_id="s1", features=[0.0],
                         claim_links=(ClaimLink("c1"),)),
                Document("d2", source_id="s2", features=[0.0],
                         claim_links=(ClaimLink("c2"),)),
            ],
            claims=[Claim("c1"), Claim("c2"), Claim("c3")],
        )
        components = db.connected_components()
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 1, 1]

    def test_components_partition_claims(self, wiki_db_session):
        components = wiki_db_session.connected_components()
        seen = np.concatenate(components)
        assert sorted(seen.tolist()) == list(range(wiki_db_session.num_claims))


class TestProbabilisticState:
    def test_initial_probabilities_equal_prior(self):
        db = build_micro_database(prior=0.3)
        assert np.allclose(db.probabilities, 0.3)

    def test_probabilities_view_is_readonly(self, micro_db):
        with pytest.raises(ValueError):
            micro_db.probabilities[0] = 0.9

    def test_label_moves_claim_to_labelled(self, micro_db):
        micro_db.label(0, 1)
        assert micro_db.is_labelled(0)
        assert 0 in micro_db.labelled_indices
        assert 0 not in micro_db.unlabelled_indices
        assert micro_db.probability(0) == 1.0

    def test_relabel_allowed(self, micro_db):
        micro_db.label(0, 1)
        micro_db.label(0, 0)
        assert micro_db.label_of(0) == 0
        assert micro_db.probability(0) == 0.0

    def test_unlabel_restores_prior(self, micro_db):
        micro_db.label(1, 0)
        micro_db.unlabel(1)
        assert not micro_db.is_labelled(1)
        assert micro_db.probability(1) == micro_db.prior

    def test_unlabel_of_unlabelled_is_noop(self, micro_db):
        micro_db.unlabel(2)
        assert micro_db.label_of(2) is None

    def test_set_probabilities_respects_labels(self, micro_db):
        micro_db.label(0, 1)
        micro_db.set_probabilities(np.asarray([0.1, 0.2, 0.3]))
        assert micro_db.probability(0) == 1.0
        assert micro_db.probability(1) == pytest.approx(0.2)

    def test_set_probabilities_validates_range(self, micro_db):
        with pytest.raises(DataModelError):
            micro_db.set_probabilities(np.asarray([0.1, 0.2, 1.3]))

    def test_set_probabilities_validates_shape(self, micro_db):
        with pytest.raises(DataModelError):
            micro_db.set_probabilities(np.asarray([0.1, 0.2]))

    def test_invalid_label_value_rejected(self, micro_db):
        with pytest.raises(DataModelError):
            micro_db.label(0, 2)

    def test_label_out_of_range_rejected(self, micro_db):
        with pytest.raises(DataModelError):
            micro_db.label(99, 1)

    def test_num_labelled_counts(self, micro_db):
        micro_db.label(0, 1)
        micro_db.label(2, 0)
        assert micro_db.num_labelled == 2
        assert micro_db.unlabelled_indices.tolist() == [1]


class TestStateSnapshots:
    def test_clone_restore_roundtrip(self, micro_db):
        micro_db.label(0, 1)
        snapshot = micro_db.clone_state()
        micro_db.label(1, 0)
        micro_db.set_probabilities(np.asarray([1.0, 0.0, 0.9]))
        micro_db.restore_state(snapshot)
        assert micro_db.labels == {0: 1}
        assert micro_db.probability(2) == pytest.approx(0.5)

    def test_snapshot_is_independent(self, micro_db):
        snapshot = micro_db.clone_state()
        snapshot.probabilities[0] = 0.9
        assert micro_db.probability(0) == pytest.approx(0.5)

    def test_restore_rejects_mismatched_snapshot(self, micro_db, wiki_db):
        snapshot = wiki_db.clone_state()
        with pytest.raises(DataModelError):
            micro_db.restore_state(snapshot)


class TestTruthVector:
    def test_micro_truth(self, micro_db):
        assert micro_db.truth_vector().tolist() == [1, 0, 1]

    def test_missing_truth_raises(self):
        db = FactDatabase(
            sources=[Source("s1", features=[0.0])],
            documents=[],
            claims=[Claim("c1")],
        )
        with pytest.raises(DataModelError):
            db.truth_vector()
