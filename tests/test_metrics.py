"""Tests for evaluation metrics (§8.1): correlations and effort."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.metrics import (
    kendall_tau_b,
    pearson_correlation,
    sequence_rank_correlation,
    user_effort,
)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_input_returns_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=50)
        y = 0.5 * x + rng.normal(size=50)
        ours = pearson_correlation(x, y)
        reference = scipy_stats.pearsonr(x, y).statistic
        assert ours == pytest.approx(reference, abs=1e-12)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1, 2, 3])

    def test_too_short(self):
        with pytest.raises(ValueError):
            pearson_correlation([1], [2])


class TestKendallTauB:
    def test_identical_order(self):
        assert kendall_tau_b([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_reversed_order(self):
        assert kendall_tau_b([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)

    def test_matches_scipy_with_ties(self):
        rng = np.random.default_rng(1)
        x = rng.integers(0, 5, size=40).astype(float)
        y = rng.integers(0, 5, size=40).astype(float)
        ours = kendall_tau_b(x, y)
        reference = scipy_stats.kendalltau(x, y).statistic
        assert ours == pytest.approx(reference, abs=1e-12)

    def test_fully_tied_returns_zero(self):
        assert kendall_tau_b([1, 1, 1], [1, 2, 3]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            kendall_tau_b([1, 2], [1, 2, 3])

    def test_too_short(self):
        with pytest.raises(ValueError):
            kendall_tau_b([1], [1])


class TestSequenceRankCorrelation:
    def test_same_sequence(self):
        assert sequence_rank_correlation([3, 1, 2], [3, 1, 2]) == pytest.approx(1.0)

    def test_reversed_sequence(self):
        assert sequence_rank_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_partial_overlap(self):
        value = sequence_rank_correlation([1, 2, 3, 4], [1, 2])
        assert -1.0 <= value <= 1.0

    def test_disjoint_sequences_defined(self):
        value = sequence_rank_correlation([1, 2], [3, 4])
        assert -1.0 <= value <= 1.0

    def test_string_items(self):
        assert sequence_rank_correlation(
            ["a", "b", "c"], ["a", "b", "c"]
        ) == pytest.approx(1.0)

    def test_single_item_rejected(self):
        with pytest.raises(ValueError):
            sequence_rank_correlation([1], [1])


class TestUserEffort:
    def test_definition(self):
        assert user_effort(5, 20) == pytest.approx(0.25)

    def test_zero_validated(self):
        assert user_effort(0, 20) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            user_effort(1, 0)
        with pytest.raises(ValueError):
            user_effort(-1, 10)
