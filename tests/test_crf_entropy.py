"""Tests for entropy estimators and the component index (§4.1, §5.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crf.entropy import (
    approximate_entropy,
    binary_entropy,
    component_entropy,
    exact_entropy,
    source_entropy,
    source_trust_from_grounding,
    unreliable_source_ratio,
)
from repro.crf.model import CrfModel
from repro.crf.partition import ComponentIndex
from repro.crf.weights import CrfWeights
from repro.data.grounding import Grounding
from repro.errors import InferenceError

from tests.fixtures import build_micro_database


class TestBinaryEntropy:
    def test_maximum_at_half(self):
        assert binary_entropy(np.asarray([0.5]))[0] == pytest.approx(np.log(2))

    def test_zero_at_extremes(self):
        values = binary_entropy(np.asarray([0.0, 1.0]))
        assert np.allclose(values, 0.0)

    def test_symmetry(self):
        p = np.linspace(0.01, 0.99, 25)
        assert np.allclose(binary_entropy(p), binary_entropy(1 - p))

    def test_clipping_out_of_range(self):
        # Defensive clipping: slightly out-of-range values do not produce NaN.
        values = binary_entropy(np.asarray([-1e-9, 1.0 + 1e-9]))
        assert np.all(np.isfinite(values))


class TestApproximateEntropy:
    def test_additivity(self):
        probs = np.asarray([0.3, 0.7, 0.5])
        assert approximate_entropy(probs) == pytest.approx(
            binary_entropy(probs).sum()
        )

    def test_all_certain_is_zero(self):
        assert approximate_entropy(np.asarray([0.0, 1.0, 1.0])) == 0.0

    def test_maximum_entropy(self):
        assert approximate_entropy(np.full(4, 0.5)) == pytest.approx(4 * np.log(2))


class TestExactEntropy:
    def make_model(self, coupling=0.0):
        db = build_micro_database()
        weights = CrfWeights.zeros(2, 2, coupling=coupling)
        return CrfModel(db, weights=weights), db

    def test_uniform_model_matches_approximation(self):
        # With zero weights all configurations are equiprobable: exact
        # joint entropy = |C| log 2 = the approximation at p=0.5.
        model, db = self.make_model(coupling=0.0)
        exact = exact_entropy(model)
        assert exact == pytest.approx(3 * np.log(2), abs=1e-9)

    def test_coupled_model_has_lower_entropy(self):
        # Coupling concentrates mass on coherent configurations.
        model, _ = self.make_model(coupling=1.0)
        assert exact_entropy(model) < 3 * np.log(2)

    def test_labelled_claims_are_clamped(self):
        model, db = self.make_model(coupling=0.0)
        db.label(0, 1)
        assert exact_entropy(model) == pytest.approx(2 * np.log(2), abs=1e-9)

    def test_component_entropy_empty(self):
        model, _ = self.make_model()
        assert component_entropy(model, np.asarray([], dtype=np.intp)) == 0.0

    def test_component_entropy_cap(self):
        model, _ = self.make_model()
        with pytest.raises(InferenceError):
            component_entropy(model, np.arange(25))

    def test_invalid_max_component(self):
        model, _ = self.make_model()
        with pytest.raises(InferenceError):
            exact_entropy(model, max_component=0)

    def test_fallback_to_approximation_for_large_components(self):
        model, db = self.make_model(coupling=0.0)
        # Force fallback by restricting enumeration to size 1 (the micro
        # corpus is one 3-claim component).
        value = exact_entropy(model, max_component=1)
        assert value == pytest.approx(approximate_entropy(db.probabilities))


class TestSourceEntropy:
    def test_trust_from_grounding(self, micro_db):
        grounding = Grounding([1, 0, 1])  # ground truth
        trust = source_trust_from_grounding(micro_db, grounding)
        s1 = micro_db.source_position("s1")
        s2 = micro_db.source_position("s2")
        # Eq. 17: fraction of the source's claims deemed credible.
        # s1 touches c1, c2, c3 -> (1 + 0 + 1)/3; s2 touches c1, c2 -> 1/2.
        assert trust[s1] == pytest.approx(2 / 3)
        assert trust[s2] == pytest.approx(1 / 2)

    def test_source_without_claims_gets_neutral_trust(self):
        from repro.data.database import FactDatabase
        from repro.data.entities import Claim, ClaimLink, Document, Source

        db = FactDatabase(
            sources=[Source("s1", features=[0.0]), Source("lurker", features=[0.0])],
            documents=[
                Document("d1", source_id="s1", features=[0.0],
                         claim_links=(ClaimLink("c1"),))
            ],
            claims=[Claim("c1")],
        )
        trust = source_trust_from_grounding(db, Grounding([1]))
        assert trust[db.source_position("lurker")] == 0.5

    def test_source_entropy_definition(self):
        trust = np.asarray([0.5, 1.0])
        assert source_entropy(trust) == pytest.approx(np.log(2))

    def test_unreliable_ratio(self):
        assert unreliable_source_ratio(np.asarray([0.2, 0.7, 0.4])) == pytest.approx(
            2 / 3
        )

    def test_unreliable_ratio_excludes_exact_half(self):
        assert unreliable_source_ratio(np.asarray([0.5, 0.5])) == 0.0

    def test_unreliable_ratio_empty(self):
        assert unreliable_source_ratio(np.asarray([])) == 0.0


class TestComponentIndex:
    def test_micro_single_component(self, micro_db):
        index = ComponentIndex(micro_db)
        assert index.num_components == 1
        assert index.component_of(0) == index.component_of(2)

    def test_component_of_claim_includes_self(self, micro_db):
        index = ComponentIndex(micro_db)
        members = index.component_of_claim(1)
        assert 1 in members.tolist()

    def test_sizes_sum_to_claims(self, wiki_db_session):
        index = ComponentIndex(wiki_db_session)
        assert index.sizes().sum() == wiki_db_session.num_claims

    def test_largest(self, wiki_db_session):
        index = ComponentIndex(wiki_db_session)
        assert index.largest().size == index.sizes().max()

    def test_members_returns_copy(self, micro_db):
        index = ComponentIndex(micro_db)
        members = index.members_of(0)
        members[0] = 99
        assert 99 not in index.members_of(0)
