"""Registers the shared fixtures of :mod:`tests.fixtures` with pytest.

All fixture definitions live in ``tests/fixtures.py`` so that test
modules, benchmarks, and ad-hoc scripts can import them without relying
on conftest side effects; this file only re-exports them for fixture
discovery — plus the suite-wide global-RNG guard below.
"""

import pytest

from repro.utils.rng import forbid_global_rng

from tests.fixtures import (  # noqa: F401
    build_micro_database,
    micro_db,
    random_databases,
    rng,
    wiki_db,
    wiki_db_session,
)


@pytest.fixture(autouse=True)
def _no_global_rng():
    """Fail any test that draws from the process-global RNGs.

    The runtime companion of lint rules DET001/DET002: framework code
    must thread explicit generators from :mod:`repro.utils.rng`, so a
    draw from ``random.*`` or ``np.random.*`` during a test is a
    determinism bug regardless of which code path issued it.  Tests that
    need to exercise the patched behaviour itself can use the context
    manager directly.
    """
    with forbid_global_rng():
        yield
