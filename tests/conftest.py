"""Registers the shared fixtures of :mod:`tests.fixtures` with pytest.

All fixture definitions live in ``tests/fixtures.py`` so that test
modules, benchmarks, and ad-hoc scripts can import them without relying
on conftest side effects; this file only re-exports them for fixture
discovery.
"""

from tests.fixtures import (  # noqa: F401
    build_micro_database,
    micro_db,
    random_databases,
    rng,
    wiki_db,
    wiki_db_session,
)
