"""Tests for :mod:`repro.analysis` — the AST lint framework.

Covers, per docs/ANALYSIS.md: every rule family firing on a seeded-bad
snippet at the right line, inline suppression semantics, baseline
(ratchet) semantics, the contract decorators' runtime behaviour, the
suite-wide global-RNG guard, and the self-check that the committed tree
stays lint-clean against the committed baseline.
"""

from __future__ import annotations

import json
import random
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.api import lint_source, module_name_for, run_lint
from repro.analysis.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.contracts import (
    CONTRACT_ATTR,
    derived_cache,
    mutates,
    requires_lock,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import all_specs
from repro.cli import main as cli_main
from repro.utils.rng import GlobalRngForbiddenError, forbid_global_rng

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint(source: str, module_name: str = "repro.somemodule"):
    """Lint a dedented snippet; returns (findings, suppressed count)."""
    return lint_source(textwrap.dedent(source).strip() + "\n", "mod.py", module_name)


def fired(source: str, module_name: str = "repro.somemodule"):
    findings, _ = lint(source, module_name)
    return [(f.rule, f.line) for f in findings]


# ----------------------------------------------------------------------
# DET: determinism


class TestDetRules:
    def test_det001_global_random_call(self):
        assert fired(
            """
            import random

            def f():
                return random.random()
            """
        ) == [("DET001", 4)]

    def test_det001_draw_import(self):
        assert fired("from random import shuffle") == [("DET001", 1)]

    def test_det001_instance_import_is_fine(self):
        assert fired("from random import Random") == []

    def test_det002_numpy_random_namespace(self):
        assert fired(
            """
            import numpy as np

            def f():
                return np.random.rand(3)
            """
        ) == [("DET002", 4)]

    def test_det002_random_submodule_alias(self):
        assert fired(
            """
            from numpy import random as npr

            def f():
                return npr.normal()
            """
        ) == [("DET002", 4)]

    def test_det003_time_time(self):
        assert fired(
            """
            import time

            def f():
                return time.time()
            """
        ) == [("DET003", 4)]

    def test_det003_perf_counter_is_fine(self):
        assert fired(
            """
            import time

            def f():
                return time.perf_counter()
            """
        ) == []

    def test_det003_bare_time_import(self):
        assert fired(
            """
            from time import time

            def f():
                return time()
            """
        ) == [("DET003", 4)]

    def test_det003_datetime_now(self):
        assert fired(
            """
            from datetime import datetime

            def f():
                return datetime.now()
            """
        ) == [("DET003", 4)]

    def test_det004_set_iteration(self):
        assert fired(
            """
            def f(xs):
                for x in set(xs):
                    print(x)
                return [y for y in {1, 2}]
            """
        ) == [("DET004", 2), ("DET004", 4)]

    def test_det004_sorted_set_is_fine(self):
        assert fired(
            """
            def f(xs):
                for x in sorted(set(xs)):
                    print(x)
            """
        ) == []


# ----------------------------------------------------------------------
# CACHE: derived-cache coherence

_CACHE_SNIPPET = """
class Model:
    def __init__(self):
        self._data = 0
        self._view = None

    @derived_cache("view", backing=("_data",), hook="_invalidate", storage="_view")
    def view(self):
        if self._view is None:
            self._view = self._data + 1
        return self._view

    def _invalidate(self):
        self._view = None

    def grow(self):
        self._data = 1

    @mutates("view")
    def good(self):
        self._data = 2
        self._invalidate()

    @mutates("view")
    def stale(self):
        self._data = 3

    @mutates("typo")
    def wrong(self):
        self._view = None
"""


class TestCacheRules:
    def test_cache_family_fires_at_the_right_lines(self):
        assert fired(_CACHE_SNIPPET) == [
            ("CACHE001", 16),  # grow writes _data without @mutates
            ("CACHE002", 23),  # stale never invalidates
            ("CACHE003", 27),  # @mutates("typo") names no declared cache
        ]

    def test_subscript_write_counts_as_mutation(self):
        assert fired(
            """
            class Model:
                @derived_cache("view", backing=("_data",), storage="_view")
                def view(self):
                    return self._view

                def poke(self, i):
                    self._data[i] = 1
            """
        ) == [("CACHE001", 7)]

    def test_storage_assignment_discharges(self):
        assert fired(
            """
            class Model:
                @derived_cache("view", backing=("_data",), storage="_view")
                def view(self):
                    return self._view

                @mutates("view")
                def poke(self):
                    self._data = 1
                    self._view = None
            """
        ) == []


# ----------------------------------------------------------------------
# STATE: checkpoint completeness


class TestStateRules:
    def test_state_family_fires_at_the_right_lines(self):
        assert fired(
            """
            class Proc:
                _STATE_EXCLUDED = ("_config", "_ghost")

                def __init__(self):
                    self._config = 1
                    self._counter = 0
                    self._weights = None

                def state_dict(self):
                    return {"weights": self._weights}

                def load_state_dict(self, state):
                    self._weights = state["weights"]
            """
        ) == [
            ("STATE002", 2),  # _ghost is never assigned by __init__
            ("STATE001", 6),  # _counter is neither serialised nor excluded
        ]

    def test_class_without_checkpoint_protocol_is_ignored(self):
        assert fired(
            """
            class Plain:
                def __init__(self):
                    self._anything = 1
            """
        ) == []

    def test_mention_in_mutable_state_dict_counts(self):
        assert fired(
            """
            class Proc:
                def __init__(self):
                    self._weights = None
                    self._step = 0

                def state_dict(self):
                    return {"weights": self._weights}

                def load_state_dict(self, state):
                    self._weights = state["weights"]

                def mutable_state_dict(self):
                    return {"step": self._step}
            """
        ) == []


# ----------------------------------------------------------------------
# LOCK: service-layer lock discipline

_LOCK_SNIPPET = """
class _ManagedSession:
    _LOCK_GUARDED = ("session", "evicted")


class Manager:
    def leak(self, managed):
        return managed.session

    def locked(self, managed):
        with managed.lock:
            return managed.session

    def runner(self, managed):
        def op():
            return managed.session
        return self._run(managed, op)

    @requires_lock("managed")
    def _summary(self, managed):
        return managed.session

    def bad_call(self, managed):
        return self._summary(managed)

    def ok_call(self, managed):
        with managed.lock:
            return self._summary(managed)
"""


class TestLockRules:
    def test_lock_family_fires_at_the_right_lines(self):
        assert fired(_LOCK_SNIPPET) == [
            ("LOCK001", 7),   # leak reads managed.session with no lock
            ("LOCK002", 23),  # bad_call invokes the helper without the lock
        ]

    def test_closures_do_not_inherit_locked_state(self):
        # A closure may outlive the `with` block that defined it, so the
        # locked region must not leak into nested functions.
        assert fired(
            """
            class _ManagedSession:
                _LOCK_GUARDED = ("session",)


            class Manager:
                def outer(self, managed):
                    with managed.lock:
                        def esc():
                            return managed.session
                        return esc
            """
        ) == [("LOCK001", 9)]

    def test_module_without_guards_is_ignored(self):
        assert fired(
            """
            class Manager:
                def f(self, managed):
                    return managed.session
            """
        ) == []


# ----------------------------------------------------------------------
# API: spec/wire contract consistency


class TestApiRules:
    def test_api001_typoed_field_path(self):
        assert fired(
            """
            from dataclasses import dataclass


            @dataclass
            class GoalSpec:
                kind: str = "x"
                threshold: float = 0.9

                def validate(self):
                    raise SpecError("bad", field="treshold")

                def ok(self):
                    raise SpecError("bad", field="threshold.sub")

                def ok_subscript(self):
                    raise SpecError("bad", field="kind[0]")

                def skipped(self, name):
                    raise SpecError("bad", field=name)
            """
        ) == [("API001", 10)]

    def test_api002_new_legacy_importer(self):
        source = "from repro._legacy import warn_legacy"
        assert fired(source, module_name="repro.brand_new") == [("API002", 1)]

    def test_api002_allowlisted_module_is_fine(self):
        source = "from repro._legacy import warn_legacy"
        assert fired(source, module_name="repro.inference.icrf") == []

    def test_api002_other_import_forms(self):
        assert fired("import repro._legacy", "repro.new_a") == [("API002", 1)]
        assert fired("from repro import _legacy", "repro.new_b") == [("API002", 1)]

    def test_lint001_unparsable_file(self):
        findings, _ = lint_source("def broken(:\n", "bad.py")
        assert [f.rule for f in findings] == ["LINT001"]


# ----------------------------------------------------------------------
# Suppressions


class TestSuppressions:
    def test_same_line_directive(self):
        findings, suppressed = lint(
            """
            import random
            x = random.random()  # repro-lint: disable=DET001
            """
        )
        assert findings == [] and suppressed == 1

    def test_comment_line_above(self):
        findings, suppressed = lint(
            """
            import random
            # repro-lint: disable=DET001
            x = random.random()
            """
        )
        assert findings == [] and suppressed == 1

    def test_disable_file(self):
        findings, suppressed = lint(
            """
            # repro-lint: disable-file=DET001
            import random
            x = random.random()
            y = random.choice([1])
            """
        )
        assert findings == [] and suppressed == 2

    def test_all_keyword(self):
        findings, suppressed = lint(
            """
            import random
            x = random.random()  # repro-lint: disable=all
            """
        )
        assert findings == [] and suppressed == 1

    def test_directive_in_string_literal_is_inert(self):
        findings, _ = lint(
            """
            import random
            s = "# repro-lint: disable=DET001"
            x = random.random()
            """
        )
        assert [(f.rule, f.line) for f in findings] == [("DET001", 3)]

    def test_wrong_rule_does_not_suppress(self):
        findings, suppressed = lint(
            """
            import random
            x = random.random()  # repro-lint: disable=DET002
            """
        )
        assert [f.rule for f in findings] == ["DET001"] and suppressed == 0


# ----------------------------------------------------------------------
# Baseline


def _finding(path="m.py", line=3, rule="DET001", message="msg"):
    return Finding(
        path=path, line=line, rule=rule, severity=Severity.ERROR, message=message
    )


class TestBaseline:
    def test_roundtrip_counts_fingerprints(self, tmp_path):
        target = tmp_path / "baseline.json"
        save_baseline(target, [_finding(line=3), _finding(line=9)])
        assert load_baseline(target) == {("m.py", "DET001", "msg"): 2}

    def test_apply_is_line_insensitive_and_count_bounded(self, tmp_path):
        target = tmp_path / "baseline.json"
        save_baseline(target, [_finding(line=3)])
        baseline = load_baseline(target)
        # Same fingerprint at a different line is absorbed; the second
        # occurrence exceeds the recorded count and is new.
        new = apply_baseline([_finding(line=40), _finding(line=41)], baseline)
        assert [(f.line,) for f in new] == [(41,)]

    def test_fixing_baselined_findings_never_breaks(self, tmp_path):
        target = tmp_path / "baseline.json"
        save_baseline(target, [_finding(), _finding(rule="DET002")])
        assert apply_baseline([], load_baseline(target)) == []

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(BaselineError):
            load_baseline(tmp_path / "nope.json")

    def test_invalid_json_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        with pytest.raises(BaselineError):
            load_baseline(bad)

    def test_wrong_version_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(BaselineError):
            load_baseline(bad)

    def test_run_lint_baseline_workflow(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text("import random\nx = random.random()\n")
        baseline = tmp_path / "baseline.json"

        report = run_lint(paths=[tmp_path])
        assert not report.ok and len(report.findings) == 1

        run_lint(paths=[tmp_path], baseline_path=baseline, write_baseline=True)
        report = run_lint(paths=[tmp_path], baseline_path=baseline)
        assert report.ok and report.baseline_applied

        module.write_text(
            "import random\nx = random.random()\ny = random.random()\n"
        )
        report = run_lint(paths=[tmp_path], baseline_path=baseline)
        assert not report.ok and len(report.new_findings) == 1


# ----------------------------------------------------------------------
# CLI


class TestCli:
    def test_lint_clean_tree_exits_zero(self, capsys):
        rc = cli_main(["lint", str(REPO_ROOT / "src" / "repro" / "analysis")])
        assert rc == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_violation_exits_one_and_reports(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text("import random\nx = random.random()\n")
        report_path = tmp_path / "report.json"
        rc = cli_main(["lint", str(bad), "--report", str(report_path)])
        assert rc == 1
        assert "DET001" in capsys.readouterr().out
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "DET001"

    def test_lint_missing_baseline_exits_two(self, tmp_path, capsys):
        rc = cli_main(
            ["lint", str(tmp_path), "--baseline", str(tmp_path / "nope.json")]
        )
        assert rc == 2

    def test_lint_json_format(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text("import random\nx = random.random()\n")
        rc = cli_main(["lint", str(bad), "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "DET001"


# ----------------------------------------------------------------------
# Self-check: the committed tree vs. the committed baseline


class TestSelfCheck:
    def test_repo_tree_is_lint_clean(self):
        report = run_lint(paths=[REPO_ROOT / "src" / "repro"])
        assert report.ok, "\n" + report.render_text()

    def test_committed_baseline_is_empty_and_current(self):
        payload = json.loads((REPO_ROOT / "analysis_baseline.json").read_text())
        assert payload["version"] == 1
        # The tree lints clean, so the ratchet must stay at empty: never
        # regenerate the baseline to absorb a new finding — fix it.
        assert payload["findings"] == []

    def test_all_documented_rules_are_registered(self):
        ids = {spec.id for spec in all_specs()}
        assert {
            "DET001", "DET002", "DET003", "DET004",
            "CACHE001", "CACHE002", "CACHE003",
            "STATE001", "STATE002",
            "LOCK001", "LOCK002",
            "API001", "API002",
            "LINT001",
        } <= ids

    def test_module_name_inference(self):
        assert module_name_for(Path("/x/src/repro/crf/model.py")) == "repro.crf.model"
        assert module_name_for(Path("/x/src/repro/__init__.py")) == "repro"
        assert module_name_for(Path("/x/elsewhere/thing.py")) == ""


# ----------------------------------------------------------------------
# Contract decorators (runtime side)


class TestContracts:
    def test_decorators_are_noops_and_attach_metadata(self):
        class Box:
            @derived_cache("view", backing=("_data",), storage="_view")
            def view(self):
                return 1

            @mutates("view")
            def poke(self):
                return 2

            @requires_lock("managed")
            def helper(self, managed):
                return managed

        box = Box()
        assert (box.view(), box.poke(), box.helper(3)) == (1, 2, 3)
        decl = getattr(Box.view, CONTRACT_ATTR)["derived_cache"][0]
        assert decl["name"] == "view" and decl["backing"] == ("_data",)
        assert getattr(Box.poke, CONTRACT_ATTR)["mutates"] == ["view"]
        assert getattr(Box.helper, CONTRACT_ATTR)["requires_lock"] == ["managed"]


# ----------------------------------------------------------------------
# Runtime global-RNG guard


class TestForbidGlobalRng:
    def test_suite_wide_guard_is_active(self):
        # tests/conftest.py arms the guard for every test via an autouse
        # fixture; a bare draw must fail without entering the context here.
        with pytest.raises(GlobalRngForbiddenError):
            random.random()
        with pytest.raises(GlobalRngForbiddenError):
            np.random.rand(2)

    def test_explicit_generators_keep_working(self):
        with forbid_global_rng():
            assert 0.0 <= random.Random(7).random() <= 1.0
            rng = np.random.default_rng(7)
            assert np.isfinite(rng.normal())

    def test_seeding_is_not_a_draw(self):
        # hypothesis reseeds the module-level state between examples;
        # only draws leak ambient entropy into results.
        state = np.random.get_state()
        try:
            np.random.seed(0)
        finally:
            np.random.set_state(state)
        with pytest.raises(GlobalRngForbiddenError):
            np.random.random_sample()
