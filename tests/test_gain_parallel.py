"""Snapshot-isolated parallel gain evaluation (§5.1).

Two contracts are pinned down here:

* **Bit-for-bit equality** — ``GainConfig(parallel=True)`` must return
  exactly the same gains as sequential evaluation, in both inference
  modes, at every worker count.  Gibbs-mode candidate streams are pure
  functions of ``(root entropy, candidate, value)``, so neither the
  evaluation order nor the worker schedule may leak into a result.
* **Cache dirtiness** — with ``cache_gains=True`` a cached gain is
  invalidated exactly when a label lands in the candidate's connected
  component, or when the model weights move; everything else keeps
  hitting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crf.model import CrfModel
from repro.crf.partition import ComponentIndex
from repro.crf.weights import CrfWeights
from repro.data.database import FactDatabase
from repro.data.entities import Claim, ClaimLink, Document, Source
from repro.data.stance import Stance
from repro.guidance.gain import GainConfig, GainEstimator

from tests.fixtures import build_micro_database


def build_two_component_database() -> FactDatabase:
    """Two disjoint clusters: {c0, c1} via sA and {c2, c3} via sB."""
    sources = [
        Source("sA", features=[1.0, 0.2]),
        Source("sB", features=[-0.4, 0.6]),
    ]
    claims = [
        Claim("c0", truth=True),
        Claim("c1", truth=False),
        Claim("c2", truth=True),
        Claim("c3", truth=True),
    ]
    documents = [
        Document(
            "d0",
            source_id="sA",
            features=[0.9, 0.8],
            claim_links=(
                ClaimLink("c0", Stance.SUPPORT),
                ClaimLink("c1", Stance.REFUTE),
            ),
        ),
        Document(
            "d1",
            source_id="sB",
            features=[0.3, -0.2],
            claim_links=(
                ClaimLink("c2", Stance.SUPPORT),
                ClaimLink("c3", Stance.SUPPORT),
            ),
        ),
    ]
    return FactDatabase(sources, documents, claims)


def make_estimator(database=None, seed=1, **config_kwargs):
    database = database if database is not None else build_micro_database()
    model = CrfModel(database)
    config = GainConfig(**config_kwargs)
    estimator = GainEstimator(
        model, ComponentIndex(database), config=config, seed=seed
    )
    return estimator, database


class TestParallelBitExact:
    @pytest.mark.parametrize("mode", ["meanfield", "gibbs"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_parallel_equals_sequential(self, mode, workers):
        sequential, db = make_estimator(inference_mode=mode)
        parallel, _ = make_estimator(
            inference_mode=mode, parallel=True, max_workers=workers
        )
        candidates = list(range(db.num_claims))
        assert np.array_equal(
            sequential.information_gains(candidates),
            parallel.information_gains(candidates),
        )
        sequential_src, _ = make_estimator(inference_mode=mode)
        parallel_src, _ = make_estimator(
            inference_mode=mode, parallel=True, max_workers=workers
        )
        assert np.array_equal(
            sequential_src.source_gains(candidates),
            parallel_src.source_gains(candidates),
        )

    @pytest.mark.parametrize("mode", ["meanfield", "gibbs"])
    def test_parallel_equals_sequential_exact_entropy(self, mode):
        sequential, db = make_estimator(
            inference_mode=mode, entropy_method="exact"
        )
        parallel, _ = make_estimator(
            inference_mode=mode,
            entropy_method="exact",
            parallel=True,
            max_workers=3,
        )
        candidates = list(range(db.num_claims))
        assert np.array_equal(
            sequential.information_gains(candidates),
            parallel.information_gains(candidates),
        )

    def test_gibbs_candidate_streams_are_order_independent(self):
        forward, db = make_estimator(inference_mode="gibbs")
        backward, _ = make_estimator(inference_mode="gibbs")
        candidates = list(range(db.num_claims))
        a = forward.information_gains(candidates)
        b = backward.information_gains(candidates[::-1])
        assert np.array_equal(a, b[::-1])

    def test_parallel_gibbs_leaves_database_untouched(self):
        estimator, db = make_estimator(
            inference_mode="gibbs", parallel=True, max_workers=4
        )
        before_probs = np.asarray(db.probabilities).copy()
        before_labels = dict(db.labels)
        estimator.information_gains(list(range(db.num_claims)))
        estimator.source_gains(list(range(db.num_claims)))
        assert np.array_equal(before_probs, db.probabilities)
        assert db.labels == before_labels

    def test_parallel_with_labels_present(self):
        sequential, db_a = make_estimator(inference_mode="gibbs")
        parallel, db_b = make_estimator(
            inference_mode="gibbs", parallel=True, max_workers=2
        )
        db_a.label(0, 1)
        db_b.label(0, 1)
        candidates = list(range(db_a.num_claims))
        a = sequential.information_gains(candidates)
        b = parallel.information_gains(candidates)
        assert a[0] == 0.0
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("localize", [True, False])
    def test_parallel_equals_sequential_without_localization(self, localize):
        sequential, db = make_estimator(
            inference_mode="gibbs", localize=localize
        )
        parallel, _ = make_estimator(
            inference_mode="gibbs", localize=localize,
            parallel=True, max_workers=2,
        )
        candidates = list(range(db.num_claims))
        assert np.array_equal(
            sequential.information_gains(candidates),
            parallel.information_gains(candidates),
        )


class TestComponentGainCache:
    def test_cache_hits_on_unchanged_state(self):
        estimator, db = make_estimator(
            build_two_component_database(), cache_gains=True
        )
        candidates = list(range(db.num_claims))
        first = estimator.information_gains(candidates)
        cache = estimator.gain_cache
        assert cache.hits == 0 and cache.misses == len(candidates)
        second = estimator.information_gains(candidates)
        assert np.array_equal(first, second)
        assert cache.hits == len(candidates)
        assert cache.misses == len(candidates)

    def test_label_dirties_exactly_its_component(self):
        estimator, db = make_estimator(
            build_two_component_database(), cache_gains=True
        )
        estimator.information_gains([0, 1, 2, 3])
        cache = estimator.gain_cache
        # c0/c1 share component A; c2/c3 share component B.
        db.label(0, 1)
        hits_before, misses_before = cache.hits, cache.misses
        values = estimator.information_gains([1, 2, 3])
        # Component A (claim 1) was dirtied and re-evaluated; component B
        # (claims 2 and 3) kept hitting.
        assert cache.misses == misses_before + 1
        assert cache.hits == hits_before + 2
        fresh, _ = make_estimator(build_two_component_database())
        fresh_db = fresh._database
        fresh_db.label(0, 1)
        assert np.array_equal(
            values, fresh.information_gains([1, 2, 3])
        )

    def test_weights_change_clears_everything(self):
        estimator, db = make_estimator(
            build_two_component_database(), cache_gains=True
        )
        candidates = list(range(db.num_claims))
        estimator.information_gains(candidates)
        cache = estimator.gain_cache
        misses_before = cache.misses
        weights = CrfWeights.zeros(2, 2)
        weights.values[0] = 0.25
        estimator._model.set_weights(weights)
        estimator.information_gains(candidates)
        assert cache.misses == misses_before + len(candidates)

    def test_cached_gibbs_gains_are_stable_across_calls(self):
        cached, db = make_estimator(
            build_two_component_database(), inference_mode="gibbs",
            cache_gains=True,
        )
        candidates = list(range(db.num_claims))
        first = cached.information_gains(candidates)
        second = cached.information_gains(candidates)
        # Every candidate hit the cache, so the fresh root entropy of the
        # second call cannot change anything.
        assert np.array_equal(first, second)

    def test_cache_parallel_equals_sequential(self):
        sequential, db = make_estimator(
            build_two_component_database(), inference_mode="gibbs",
            cache_gains=True,
        )
        parallel, _ = make_estimator(
            build_two_component_database(), inference_mode="gibbs",
            cache_gains=True, parallel=True, max_workers=3,
        )
        candidates = list(range(db.num_claims))
        for _ in range(2):
            assert np.array_equal(
                sequential.information_gains(candidates),
                parallel.information_gains(candidates),
            )
