"""Tests of the multi-session service layer (``repro.service``).

Covers the session registry (create/drive/checkpoint/evict/restore), the
concurrency discipline (disjoint sessions in parallel and interleaved
requests against one session stay bit-for-bit identical to single-threaded
runs), the HTTP surface with its structured errors, and the end-to-end
durability story: create over HTTP, stream claims and labels, checkpoint,
kill the server, restart on the same spool directory, finish — the final
result must match an uninterrupted in-process run exactly.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import FactCheckSession, SessionSpec
from repro.errors import ServiceError, SessionNotFoundError
from repro.service import (
    ReproServiceServer,
    ServiceClient,
    ServiceConfig,
    ServiceRequestError,
    SessionManager,
)
from repro.service.wire import (
    LabelsRequest,
    StepRequest,
    result_from_dict,
    result_to_dict,
)
from repro.streaming import stream_from_database


def batch_spec(seed: int = 11, budget: int = 6) -> SessionSpec:
    return SessionSpec(
        seed=seed,
        dataset={"name": "wiki", "seed": 42, "scale": 0.15},
        inference={"em_iterations": 2, "num_samples": 8},
        guidance={"strategy": "hybrid", "candidate_limit": 10},
        user={"error_probability": 0.1, "skip_probability": 0.1},
        effort={"goal": {"kind": "none"}, "budget": budget},
    )


def streaming_spec(seed: int = 5) -> SessionSpec:
    return SessionSpec(
        mode="streaming",
        seed=seed,
        inference={"em_iterations": 2, "num_samples": 8},
        guidance={"strategy": "hybrid", "candidate_limit": 10},
        effort={"goal": {"kind": "none"}},
        stream={"validation_every": 4},
    )


def health_arrivals():
    from repro.datasets import load_dataset

    return list(stream_from_database(load_dataset("health", seed=5, scale=0.02)))


def scrub(result_dict: dict) -> dict:
    """Drop wall-clock fields; everything else must match bit-for-bit."""
    import copy

    scrubbed = copy.deepcopy(result_dict)
    for update in scrubbed.get("stream_updates", []):
        update["elapsed_seconds"] = 0.0
        update["ingest_seconds"] = 0.0
        update["update_seconds"] = 0.0
    trace = scrubbed.get("trace")
    if trace:
        for record in trace["records"]:
            record["response_seconds"] = 0.0
    return scrubbed


@pytest.fixture
def manager(tmp_path):
    manager = SessionManager(ServiceConfig(spool_dir=tmp_path / "spool", workers=4))
    yield manager
    manager.shutdown(checkpoint=False)


@pytest.fixture
def service(manager):
    server = ReproServiceServer(manager)
    server.serve_in_background()
    yield ServiceClient(server.url)
    server.shutdown()
    server.server_close()


class TestSessionManager:
    def test_create_requires_dataset_for_batch(self, manager):
        with pytest.raises(ServiceError, match="dataset"):
            manager.create(SessionSpec(seed=1))

    def test_create_rejects_duplicate_and_bad_ids(self, manager):
        manager.create(batch_spec(), session_id="dup")
        with pytest.raises(ServiceError, match="already exists"):
            manager.create(batch_spec(), session_id="dup")
        with pytest.raises(ServiceError, match="invalid session id"):
            manager.create(batch_spec(), session_id="a/b")

    def test_unknown_session_raises(self, manager):
        with pytest.raises(SessionNotFoundError):
            manager.summary("ghost")

    def test_run_matches_inprocess_session(self, manager):
        summary = manager.create(batch_spec(), session_id="one")
        assert summary["status"] == "open"
        response = manager.step("one", StepRequest(run=True))
        golden = FactCheckSession(batch_spec()).run()
        assert scrub(response["result"]) == scrub(result_to_dict(golden))

    def test_stepwise_drive_matches_run(self, manager):
        manager.create(batch_spec(), session_id="steps")
        total = 0
        while True:
            response = manager.step("steps", StepRequest(count=2))
            total += len(response["records"])
            if not response["records"]:
                break
        golden = FactCheckSession(batch_spec()).run()
        assert total == len(golden.trace.records)
        assert scrub(manager.result("steps")) == scrub(result_to_dict(golden))

    def test_labels_and_delete(self, manager, tmp_path):
        manager.create(batch_spec(), session_id="lbl")
        response = manager.record_labels(
            "lbl", LabelsRequest.from_payload({"labels": [{"claim": 0, "value": 1}]})
        )
        assert response["summary"]["num_labelled"] == 1
        spool_file = tmp_path / "spool" / "lbl.json.gz"
        assert spool_file.exists()
        manager.delete("lbl")
        assert not spool_file.exists()
        with pytest.raises(SessionNotFoundError):
            manager.summary("lbl")

    def test_restore_skips_corrupt_spool_entries(self, tmp_path):
        spool = tmp_path / "spool"
        first = SessionManager(ServiceConfig(spool_dir=spool, workers=2))
        first.create(batch_spec(), session_id="good")
        first.shutdown(checkpoint=True)
        # A torn/garbage checkpoint must not block the healthy sessions.
        (spool / "bad.json.gz").write_bytes(b"\x1f\x8btorn-by-a-crash")
        second = SessionManager(ServiceConfig(spool_dir=spool, workers=2))
        assert second.restore() == ["good"]
        assert [entry[0] for entry in second.restore_errors] == ["bad"]
        second.shutdown(checkpoint=False)

    def test_deleted_session_is_not_respooled_by_inflight_ops(self, tmp_path, manager):
        manager.create(batch_spec(), session_id="gone")
        managed = manager._get("gone")
        manager.delete("gone")
        spool_file = tmp_path / "spool" / "gone.json.gz"
        assert not spool_file.exists()
        # An operation that held a reference from before the eviction must
        # not write the spool entry back.
        manager._record_events(managed, 10)
        assert not spool_file.exists()

    def test_result_polling_does_not_rewrite_spool(self, manager, tmp_path):
        manager.create(batch_spec(budget=2), session_id="poll")
        manager.step("poll", StepRequest(run=True))
        spool_file = tmp_path / "spool" / "poll.json.gz"
        manager.result("poll")
        first_mtime = spool_file.stat().st_mtime_ns
        manager.result("poll")
        manager.result("poll")
        assert spool_file.stat().st_mtime_ns == first_mtime

    def test_result_is_a_snapshot_that_keeps_the_session_drivable(self, manager):
        manager.create(batch_spec(budget=4), session_id="peek")
        manager.step("peek", StepRequest(count=1))
        snapshot = manager.result("peek")
        assert snapshot["stop_reason"] == "unfinished"
        assert len(snapshot["trace"]["records"]) == 1
        # Polling the result must not have closed the session.
        response = manager.step("peek", StepRequest(count=1))
        assert len(response["records"]) == 1
        assert manager.summary("peek")["status"] == "open"

    def test_inflight_op_on_deleted_session_is_rejected(self, manager):
        manager.create(batch_spec(), session_id="stale")
        managed = manager._get("stale")
        manager.delete("stale")
        # A request that resolved its reference before the delete must be
        # turned away under the lock, not resurrect the session.
        with pytest.raises(SessionNotFoundError):
            manager._run(managed, lambda: managed.session.save("/dev/null"))

    def test_checkpoint_leaves_no_staging_file(self, manager, tmp_path):
        manager.create(batch_spec(), session_id="atomic")
        manager.checkpoint("atomic")
        leftovers = list((tmp_path / "spool").glob("*.tmp"))
        assert leftovers == []

    def test_restore_rebuilds_registry(self, tmp_path):
        spool = tmp_path / "spool"
        first = SessionManager(ServiceConfig(spool_dir=spool, workers=2))
        first.create(batch_spec(), session_id="a")
        first.step("a", StepRequest(count=2))
        # Unclean stop: no final checkpoint — durability rests on the
        # per-event auto-checkpoint policy.
        first.shutdown(checkpoint=False)

        second = SessionManager(ServiceConfig(spool_dir=spool, workers=2))
        assert second.restore() == ["a"]
        assert second.summary("a")["iterations"] == 2
        golden = FactCheckSession(batch_spec()).run()
        assert scrub(second.result("a"))["validated_claim_ids"][:2] == [
            r for rec in golden.trace.records[:2] for r in rec.claim_ids
        ]
        second.shutdown(checkpoint=False)


class TestConcurrency:
    def test_disjoint_sessions_in_parallel_match_single_threaded(self, manager):
        seeds = [11, 23, 37, 51]
        for seed in seeds:
            manager.create(batch_spec(seed=seed), session_id=f"s{seed}")
        results: dict = {}
        errors: list = []

        def drive(seed: int) -> None:
            try:
                results[seed] = manager.step(f"s{seed}", StepRequest(run=True))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=drive, args=(seed,)) for seed in seeds]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for seed in seeds:
            golden = FactCheckSession(batch_spec(seed=seed)).run()
            assert scrub(results[seed]["result"]) == scrub(result_to_dict(golden))

    def test_interleaved_steps_on_one_session_match_single_threaded(self, manager):
        manager.create(batch_spec(budget=8), session_id="shared")
        errors: list = []

        def hammer() -> None:
            try:
                for _ in range(2):
                    manager.step("shared", StepRequest(count=1))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

        # Eight single-step requests exhaust the budget of 8, landing in
        # exactly the state an uninterrupted run() reaches.
        golden = FactCheckSession(batch_spec(budget=8)).run()
        assert golden.stop_reason == "budget"
        assert scrub(manager.result("shared")) == scrub(result_to_dict(golden))

    def test_interleaved_claims_and_labels_on_one_streaming_session(self, manager):
        arrivals = health_arrivals()
        manager.create(streaming_spec(), session_id="stream")
        # Deliver the stream in order but from alternating threads, with a
        # label registered in between: per-session locking serialises the
        # operations, so the result matches the same single-threaded
        # sequence exactly.
        barrier = threading.Barrier(2)
        half = len(arrivals) // 2
        errors: list = []

        def first_half() -> None:
            try:
                barrier.wait()
                manager.stream_claims("stream", arrivals[:half])
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        thread = threading.Thread(target=first_half)
        thread.start()
        barrier.wait()
        thread.join()  # ordered delivery: second chunk follows the first
        label_claim = arrivals[0].claim.claim_id
        manager.record_labels(
            "stream",
            LabelsRequest.from_payload(
                {"labels": [{"claim": label_claim, "value": 1}]}
            ),
        )
        manager.stream_claims("stream", arrivals[half:])

        golden_session = FactCheckSession(streaming_spec()).open()
        every = streaming_spec().stream.validation_every
        for arrival in arrivals[:half]:
            golden_session.observe(arrival)
            if golden_session._since_validation >= every:
                golden_session.validate(every)
        golden_session.record_label(label_claim, 1)
        for arrival in arrivals[half:]:
            golden_session.observe(arrival)
            if golden_session._since_validation >= every:
                golden_session.validate(every)
        golden = golden_session.close()
        assert scrub(manager.result("stream")) == scrub(result_to_dict(golden))


class TestHTTPService:
    def test_create_step_result_over_http(self, service):
        summary = service.create_session(batch_spec(), session_id="http-batch")
        assert summary["id"] == "http-batch"
        response = service.step("http-batch", run=True)
        golden = FactCheckSession(batch_spec()).run()
        assert scrub(response["result"]) == scrub(result_to_dict(golden))
        result = service.result("http-batch")
        assert result.stop_reason == golden.stop_reason
        assert np.array_equal(result.weights.values, golden.weights.values)

    def test_spec_validation_error_carries_field_path(self, service):
        with pytest.raises(ServiceRequestError) as excinfo:
            service.create_session({"inference": {"engine": "cuda"}})
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "SpecError"
        assert excinfo.value.field == "inference.engine"

    def test_unknown_session_is_404(self, service):
        with pytest.raises(ServiceRequestError) as excinfo:
            service.summary("ghost")
        assert excinfo.value.status == 404
        assert excinfo.value.error_type == "SessionNotFoundError"

    def test_mode_misuse_is_409(self, service):
        service.create_session(streaming_spec(), session_id="misuse")
        with pytest.raises(ServiceRequestError) as excinfo:
            service.step("misuse")
        assert excinfo.value.status == 409

    def test_bad_json_is_400(self, service):
        import urllib.request

        request = urllib.request.Request(
            f"{service.base_url}/sessions",
            data=b"not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_trace_and_listing(self, service):
        service.create_session(batch_spec(), session_id="traced")
        service.step("traced", count=1)
        trace = service.trace("traced")
        assert len(trace["records"]) == 1
        ids = [entry["id"] for entry in service.list_sessions()]
        assert "traced" in ids
        service.delete_session("traced")
        assert "traced" not in [e["id"] for e in service.list_sessions()]


class TestEndToEndDurability:
    """The acceptance-criterion scenario: checkpoint, kill, restart, equal."""

    def test_service_restart_is_bit_for_bit_invisible(self, tmp_path):
        spool = tmp_path / "spool"
        arrivals = health_arrivals()
        half = len(arrivals) // 2
        label_claim = arrivals[0].claim.claim_id

        # Periodic auto-checkpointing off: durability must come from the
        # explicit POST /checkpoint, like a deliberate pre-deploy save.
        config = ServiceConfig(spool_dir=spool, workers=2, checkpoint_every=None)
        manager = SessionManager(config)
        server = ReproServiceServer(manager)
        server.serve_in_background()
        client = ServiceClient(server.url)

        spec_document = streaming_spec().to_dict()
        client.create_session(spec_document, session_id="durable")
        client.stream_claims("durable", arrivals[:half], chunk_size=3)
        client.record_labels("durable", [{"claim": label_claim, "value": 1}])
        client.checkpoint("durable")

        # Kill the server without any graceful checkpointing.
        server.shutdown()
        server.server_close()
        manager.shutdown(checkpoint=False)

        # Restart on the same spool directory; the registry is restored.
        manager2 = SessionManager(config)
        assert manager2.restore() == ["durable"]
        server2 = ReproServiceServer(manager2)
        server2.serve_in_background()
        client2 = ServiceClient(server2.url)

        client2.stream_claims("durable", arrivals[half:], chunk_size=4)
        restarted = client2.result_dict("durable")

        server2.shutdown()
        server2.server_close()
        manager2.shutdown(checkpoint=False)

        # The uninterrupted in-process run of the same spec and sequence.
        session = FactCheckSession(streaming_spec()).open()
        every = streaming_spec().stream.validation_every
        for arrival in arrivals[:half]:
            session.observe(arrival)
            if session._since_validation >= every:
                session.validate(every)
        session.record_label(label_claim, 1)
        for arrival in arrivals[half:]:
            session.observe(arrival)
            if session._since_validation >= every:
                session.validate(every)
        golden = session.close()

        assert scrub(restarted) == scrub(result_to_dict(golden))
        # Round-trip through the typed result confirms full fidelity.
        parsed = result_from_dict(restarted)
        assert parsed.validated_claim_ids == golden.validated_claim_ids
        assert np.array_equal(parsed.weights.values, golden.weights.values)


class TestServeCommand:
    """``python -m repro serve`` as a real process: the CI smoke path."""

    def test_serve_boots_answers_and_shuts_down_cleanly(self, tmp_path):
        import os
        import signal as signal_module
        import subprocess
        import sys
        import time
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        port_file = tmp_path / "port.txt"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--port-file", str(port_file),
                "--spool-dir", str(tmp_path / "spool"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=repo_root,
        )
        try:
            deadline = time.monotonic() + 30
            while not port_file.exists() and time.monotonic() < deadline:
                time.sleep(0.1)
            assert port_file.exists(), "server never wrote its port file"
            client = ServiceClient(f"http://127.0.0.1:{port_file.read_text().strip()}")
            assert client.health()["status"] == "ok"
            process.send_signal(signal_module.SIGTERM)
            output, _ = process.communicate(timeout=30)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.communicate()
        assert process.returncode == 0, output
        assert "shutdown complete" in output


class TestWireModel:
    def test_step_request_validation(self):
        assert StepRequest.from_payload(None) == StepRequest()
        assert StepRequest.from_payload({"count": 3}).count == 3
        with pytest.raises(ServiceError):
            StepRequest.from_payload({"count": 0})
        with pytest.raises(ServiceError):
            StepRequest.from_payload({"bogus": 1})

    def test_labels_request_validation(self):
        with pytest.raises(ServiceError):
            LabelsRequest.from_payload({"labels": []})
        with pytest.raises(ServiceError):
            LabelsRequest.from_payload({"labels": [{"claim": "c1", "value": 2}]})
        request = LabelsRequest.from_payload(
            {"labels": [{"claim": "c1", "value": 1}, {"claim": 4, "value": 0}]}
        )
        assert [entry.claim for entry in request.labels] == ["c1", 4]

    def test_result_roundtrip(self):
        golden = FactCheckSession(batch_spec()).run()
        parsed = result_from_dict(result_to_dict(golden))
        assert parsed.stop_reason == golden.stop_reason
        assert parsed.validated_claim_ids == golden.validated_claim_ids
        assert np.array_equal(parsed.weights.values, golden.weights.values)
        assert len(parsed.trace.records) == len(golden.trace.records)


class TestSourceBackedStreaming:
    """Streaming sessions driven from their declared stream source."""

    @staticmethod
    def sourced_spec(seed: int = 5) -> SessionSpec:
        return SessionSpec(
            mode="streaming",
            seed=seed,
            inference={"em_iterations": 2, "num_samples": 8},
            guidance={"strategy": "hybrid", "candidate_limit": 10},
            effort={"goal": {"kind": "none"}},
            stream={
                "validation_every": 4,
                "source": {
                    "dataset": {"name": "health", "seed": 5, "scale": 0.02}
                },
            },
        )

    def test_stepping_the_source_matches_inprocess_run(self, manager):
        golden = FactCheckSession(self.sourced_spec()).run()

        manager.create(self.sourced_spec(), session_id="sourced")
        delivered = 0
        while True:
            response = manager.step("sourced", StepRequest(count=5))
            assert response["completed"] is False
            if not response["updates"]:
                break
            delivered += len(response["updates"])
        assert delivered == len(golden.stream_updates)
        final = manager.step("sourced", StepRequest(run=True))
        assert final["completed"] is True
        assert scrub(final["result"]) == scrub(result_to_dict(golden))

    def test_step_without_source_or_run_is_rejected(self, manager):
        from repro.errors import SessionError

        manager.create(streaming_spec(), session_id="plain")
        with pytest.raises(SessionError, match="spec.stream.source"):
            manager.step("plain", StepRequest(count=1))
