"""Tests for user guidance (§4): gains, strategies, hybrid score."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.crf.partition import ComponentIndex
from repro.errors import GuidanceError
from repro.guidance.base import SelectionContext
from repro.guidance.gain import GainConfig, GainEstimator, marginal_entropy_ranking
from repro.guidance.hybrid_score import error_rate, hybrid_score
from repro.guidance.strategies import (
    STRATEGIES,
    HybridStrategy,
    InformationGainStrategy,
    RandomStrategy,
    SourceGainStrategy,
    UncertaintyStrategy,
    make_strategy,
)
from repro.inference.icrf import ICrf

from tests.fixtures import build_micro_database


def make_estimator(mode="meanfield", localize=True, **kwargs):
    db = build_micro_database()
    icrf = ICrf(db, seed=0)
    icrf.infer()
    config = GainConfig(inference_mode=mode, localize=localize, **kwargs)
    estimator = GainEstimator(
        icrf.model, ComponentIndex(db), config=config, seed=1
    )
    return estimator, db, icrf


def make_context(db, estimator, hybrid=0.0, limit=None):
    return SelectionContext(
        database=db,
        gains=estimator,
        rng=np.random.default_rng(0),
        hybrid_score=hybrid,
        candidate_limit=limit,
    )


class TestGainConfig:
    def test_invalid_mode(self):
        with pytest.raises(GuidanceError):
            GainConfig(inference_mode="magic")

    def test_invalid_entropy(self):
        with pytest.raises(GuidanceError):
            GainConfig(entropy_method="fuzzy")

    def test_invalid_damping(self):
        with pytest.raises(GuidanceError):
            GainConfig(damping=1.0)

    def test_invalid_steps(self):
        with pytest.raises(GuidanceError):
            GainConfig(meanfield_steps=0)

    def test_invalid_gibbs_burn_in(self):
        with pytest.raises(GuidanceError):
            GainConfig(gibbs_burn_in=0)

    def test_invalid_gibbs_samples(self):
        with pytest.raises(GuidanceError):
            GainConfig(gibbs_samples=-1)

    def test_invalid_max_workers(self):
        with pytest.raises(GuidanceError):
            GainConfig(max_workers=0)


class TestGainEstimator:
    def test_labelled_claim_has_zero_gain(self):
        estimator, db, _ = make_estimator()
        db.label(0, 1)
        assert estimator.information_gain(0) == 0.0
        assert estimator.source_gain(0) == 0.0

    def test_gain_leaves_database_unchanged(self):
        estimator, db, _ = make_estimator()
        before_probs = np.asarray(db.probabilities).copy()
        before_labels = dict(db.labels)
        estimator.information_gain(1)
        estimator.source_gain(1)
        assert np.allclose(before_probs, db.probabilities)
        assert db.labels == before_labels

    def test_gains_vector_matches_scalars(self):
        estimator, db, _ = make_estimator()
        vector = estimator.information_gains([0, 1, 2])
        for index in range(3):
            assert vector[index] == pytest.approx(
                estimator.information_gain(index)
            )

    def test_parallel_matches_serial(self):
        serial, db_a, _ = make_estimator(parallel=False)
        parallel, db_b, _ = make_estimator(parallel=True)
        a = serial.information_gains([0, 1, 2])
        b = parallel.information_gains([0, 1, 2])
        assert np.allclose(a, b)

    def test_gibbs_mode_runs(self):
        estimator, db, _ = make_estimator(mode="gibbs")
        gain = estimator.information_gain(0)
        assert np.isfinite(gain)

    def test_exact_entropy_mode_runs(self):
        estimator, db, _ = make_estimator(entropy_method="exact")
        assert np.isfinite(estimator.information_gain(0))

    def test_uncertain_claim_gains_more_than_settled_claim(self):
        estimator, db, icrf = make_estimator()
        # Force one claim near certainty and one at maximum uncertainty.
        db.set_probabilities(np.asarray([0.99, 0.5, 0.99]))
        g_settled = estimator.information_gain(0)
        g_uncertain = estimator.information_gain(1)
        assert g_uncertain > g_settled

    def test_global_scope_without_localization(self):
        estimator, db, _ = make_estimator(localize=False)
        scope = estimator._scope(0)
        assert scope.size == db.num_claims

    def test_marginal_entropy_ranking(self):
        db = build_micro_database()
        db.set_probabilities(np.asarray([0.5, 0.9, 0.7]))
        ranked = marginal_entropy_ranking(db, [0, 1, 2])
        assert ranked.tolist() == [0, 2, 1]


class TestStrategies:
    def test_registry_names(self):
        assert set(STRATEGIES) == {
            "random", "uncertainty", "info", "source", "hybrid"
        }
        for name in STRATEGIES:
            assert make_strategy(name).name == name

    def test_make_strategy_unknown(self):
        with pytest.raises(ValueError):
            make_strategy("alchemy")

    def test_random_selects_unlabelled(self):
        estimator, db, _ = make_estimator()
        db.label(0, 1)
        context = make_context(db, estimator)
        for _ in range(10):
            assert RandomStrategy().select(context) in (1, 2)

    def test_uncertainty_selects_most_entropic(self):
        estimator, db, _ = make_estimator()
        db.set_probabilities(np.asarray([0.95, 0.52, 0.9]))
        context = make_context(db, estimator)
        assert UncertaintyStrategy().select(context) == 1

    def test_info_selects_argmax_gain(self):
        estimator, db, _ = make_estimator()
        context = make_context(db, estimator)
        strategy = InformationGainStrategy()
        chosen = strategy.select(context)
        candidates, scores = strategy.scores(context)
        best = candidates[int(np.argmax(scores))]
        assert estimator.information_gain(chosen) == pytest.approx(
            estimator.information_gain(int(best))
        )

    def test_source_strategy_runs(self):
        estimator, db, _ = make_estimator()
        context = make_context(db, estimator)
        assert SourceGainStrategy().select(context) in (0, 1, 2)

    def test_hybrid_routes_by_score(self):
        estimator, db, _ = make_estimator()
        strategy = HybridStrategy()
        context = make_context(db, estimator, hybrid=0.0)
        strategy.select(context)
        assert strategy.last_choice == "info"
        context = make_context(db, estimator, hybrid=1.0)
        strategy.select(context)
        assert strategy.last_choice == "source"

    def test_rank_returns_distinct_claims(self):
        estimator, db, _ = make_estimator()
        context = make_context(db, estimator)
        ranked = InformationGainStrategy().rank(context, 3)
        assert len(set(ranked)) == len(ranked)

    def test_random_rank_permutation(self):
        estimator, db, _ = make_estimator()
        context = make_context(db, estimator)
        ranked = RandomStrategy().rank(context, 3)
        assert sorted(ranked) == [0, 1, 2]

    def test_candidate_limit_restricts_pool(self):
        estimator, db, _ = make_estimator()
        db.set_probabilities(np.asarray([0.5, 0.99, 0.98]))
        context = make_context(db, estimator, limit=1)
        # Only the most uncertain claim (0) is in the pool.
        assert context.candidates().tolist() == [0]

    def test_no_unlabelled_raises(self):
        estimator, db, _ = make_estimator()
        for claim in range(3):
            db.label(claim, 1)
        context = make_context(db, estimator)
        with pytest.raises(GuidanceError):
            context.candidates()


class TestHybridScore:
    def test_error_rate_credible_grounding(self):
        # g_{i-1}(c) = 1 -> error = 1 - P_{i-1}(c)  (Eq. 22)
        assert error_rate(0.8, 1) == pytest.approx(0.2)

    def test_error_rate_noncredible_grounding(self):
        assert error_rate(0.8, 0) == pytest.approx(0.8)

    def test_error_rate_invalid_grounding(self):
        with pytest.raises(ValueError):
            error_rate(0.5, 2)

    def test_score_zero_when_no_signal(self):
        assert hybrid_score(0.0, 0.0, 0.5) == 0.0

    def test_score_increases_with_error(self):
        low = hybrid_score(0.1, 0.0, 0.0)
        high = hybrid_score(0.9, 0.0, 0.0)
        assert high > low

    def test_early_stage_dominated_by_error(self):
        # h -> 0: unreliable ratio has no influence.
        assert hybrid_score(0.5, 0.0, 0.0) == pytest.approx(
            hybrid_score(0.5, 1.0, 0.0)
        )

    def test_late_stage_dominated_by_sources(self):
        # h -> 1: error rate has no influence.
        assert hybrid_score(0.0, 0.5, 1.0) == pytest.approx(
            hybrid_score(1.0, 0.5, 1.0)
        )

    def test_closed_form(self):
        # z = 1 - exp(-(eps (1-h) + r h))
        eps, r, h = 0.3, 0.6, 0.4
        assert hybrid_score(eps, r, h) == pytest.approx(
            1.0 - math.exp(-(eps * (1 - h) + r * h))
        )

    def test_score_bounded(self):
        assert 0.0 <= hybrid_score(1.0, 1.0, 0.5) < 1.0
