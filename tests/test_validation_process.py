"""Tests for the validation process (Alg. 1), users, goals, robustness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crf.partition import ComponentIndex
from repro.data.entities import Claim
from repro.errors import ValidationProcessError
from repro.guidance.strategies import make_strategy
from repro.inference.icrf import ICrf
from repro.validation.goals import (
    EstimatedPrecisionGoal,
    NoGoal,
    TruePrecisionGoal,
)
from repro.validation.oracle import SimulatedUser
from repro.validation.process import ValidationProcess
from repro.validation.robustness import ConfirmationChecker

from tests.fixtures import build_micro_database


def make_process(db=None, strategy="uncertainty", seed=0, **kwargs):
    db = db if db is not None else build_micro_database()
    return ValidationProcess(
        db,
        strategy=make_strategy(strategy),
        user=SimulatedUser(seed=seed),
        seed=seed,
        **kwargs,
    )


class TestSimulatedUser:
    def test_perfect_oracle(self):
        user = SimulatedUser(seed=0)
        assert user.validate(Claim("c", truth=True)) == 1
        assert user.validate(Claim("c", truth=False)) == 0
        assert user.mistakes == 0

    def test_requires_ground_truth(self):
        user = SimulatedUser(seed=0)
        with pytest.raises(ValidationProcessError):
            user.validate(Claim("c"))

    def test_error_probability_flips(self):
        user = SimulatedUser(error_probability=1.0, seed=0)
        assert user.validate(Claim("c", truth=True)) == 0
        assert user.mistakes == 1

    def test_skip_probability(self):
        user = SimulatedUser(skip_probability=1.0, seed=0)
        assert user.validate(Claim("c", truth=True)) is None
        assert user.skips == 1
        assert user.validations == 0

    def test_mistake_rate_statistical(self):
        user = SimulatedUser(error_probability=0.3, seed=1)
        flips = sum(
            1 for _ in range(500)
            if user.validate(Claim("c", truth=True)) == 0
        )
        assert 100 <= flips <= 200  # 0.3 * 500 = 150 expected

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            SimulatedUser(error_probability=1.5)
        with pytest.raises(ValueError):
            SimulatedUser(skip_probability=-0.1)


class TestProcessBasics:
    def test_initialize_sets_baseline(self):
        process = make_process()
        trace = process.initialize()
        assert trace.initial_precision is not None
        assert trace.initial_entropy >= 0.0
        assert trace.iterations == 0

    def test_initialize_idempotent(self):
        process = make_process()
        trace_a = process.initialize()
        trace_b = process.initialize()
        assert trace_a is trace_b

    def test_step_labels_one_claim(self):
        process = make_process()
        process.initialize()
        record = process.step()
        assert len(record.claim_indices) == 1
        assert process.database.num_labelled == 1

    def test_step_records_metrics(self):
        process = make_process()
        process.initialize()
        record = process.step()
        assert 0.0 <= record.error_rate <= 1.0
        assert 0.0 <= record.hybrid_score < 1.0
        assert 0.0 <= record.unreliable_ratio <= 1.0
        assert record.response_seconds >= 0.0
        assert record.entropy >= 0.0

    def test_step_after_exhaustion_raises(self):
        process = make_process()
        process.initialize()
        for _ in range(3):
            process.step()
        with pytest.raises(ValidationProcessError):
            process.step()

    def test_user_input_matches_truth_with_oracle(self):
        db = build_micro_database()
        truth = db.truth_vector()
        process = make_process(db)
        process.initialize()
        record = process.step()
        claim = record.claim_indices[0]
        assert record.user_values[0] == truth[claim]

    def test_invalid_batch_size(self):
        with pytest.raises(ValidationProcessError):
            make_process(batch_size=0)

    def test_invalid_budget(self):
        with pytest.raises(ValidationProcessError):
            make_process(budget=0)


class TestRun:
    def test_runs_to_exhaustion_without_goal(self):
        process = make_process()
        trace = process.run()
        assert trace.stop_reason == "exhausted"
        assert process.database.num_labelled == 3

    def test_budget_stops_run(self):
        process = make_process(budget=2)
        trace = process.run()
        assert trace.stop_reason == "budget"
        assert process.database.num_labelled == 2

    def test_goal_stops_run(self):
        process = make_process(goal=TruePrecisionGoal(0.0))
        trace = process.run()
        assert trace.stop_reason == "goal"
        assert trace.iterations == 0

    def test_max_iterations(self):
        process = make_process()
        trace = process.run(max_iterations=1)
        assert trace.stop_reason == "max_iterations"
        assert trace.iterations == 1

    def test_oracle_run_reaches_full_precision(self):
        process = make_process(goal=TruePrecisionGoal(1.0))
        trace = process.run()
        assert trace.stop_reason in ("goal", "exhausted")
        assert process.current_precision() == 1.0

    def test_final_grounding_attached(self):
        process = make_process()
        trace = process.run()
        assert trace.final_grounding is not None

    def test_trace_efforts_monotone(self):
        process = make_process()
        trace = process.run()
        efforts = trace.efforts()
        assert np.all(np.diff(efforts) > 0)
        assert efforts[-1] == pytest.approx(1.0)


class TestSkipping:
    def test_always_skipping_user_still_progresses(self):
        db = build_micro_database()
        process = ValidationProcess(
            db,
            strategy=make_strategy("uncertainty"),
            user=SimulatedUser(skip_probability=1.0, seed=0),
            seed=0,
        )
        process.initialize()
        record = process.step()
        # Forced validation after exhausting skip attempts.
        assert len(record.claim_indices) == 1
        assert record.skipped >= 1

    def test_partial_skipping_selects_second_best(self):
        db = build_micro_database()
        process = ValidationProcess(
            db,
            strategy=make_strategy("uncertainty"),
            user=SimulatedUser(skip_probability=0.5, seed=3),
            seed=0,
        )
        trace = process.run()
        assert process.database.num_labelled == 3
        assert sum(r.skipped for r in trace.records) >= 0


class TestRobustness:
    def test_confirmation_detects_injected_mistakes(self):
        """Wrong labels among many correct ones should be flagged.

        Detection exploits redundancy across labelled claims (§5.2), so it
        needs a corpus where one mistake cannot dominate the fit — the
        generated wiki replica, not the 3-claim micro corpus.
        """
        from repro.datasets import load_dataset

        db = load_dataset("wiki", seed=21, scale=0.15)
        icrf = ICrf(db, seed=0)
        icrf.infer()
        truth = db.truth_vector()
        rng = np.random.default_rng(2)
        labelled = rng.choice(db.num_claims, size=db.num_claims // 2,
                              replace=False)
        wrong = int(labelled[0])
        for claim in labelled:
            claim = int(claim)
            value = int(truth[claim])
            db.label(claim, value if claim != wrong else 1 - value)
        icrf.infer()
        checker = ConfirmationChecker(interval=1)
        report = checker.sweep(icrf.model, ComponentIndex(db))
        assert wrong in report.suspects
        # Most correct labels are not flagged.
        correct_flagged = [c for c in report.suspects if c != wrong]
        assert len(correct_flagged) <= len(labelled) // 3

    def test_correct_labels_not_flagged(self):
        db = build_micro_database()
        icrf = ICrf(db, seed=0)
        icrf.infer()
        truth = db.truth_vector()
        for claim in range(3):
            db.label(claim, int(truth[claim]))
        icrf.infer()
        checker = ConfirmationChecker(interval=1)
        report = checker.sweep(icrf.model, ComponentIndex(db))
        assert report.suspects == []

    def test_process_repairs_mistakes(self):
        from repro.datasets import load_dataset

        db = load_dataset("wiki", seed=11, scale=0.15)
        process = ValidationProcess(
            db,
            strategy=make_strategy("uncertainty"),
            user=SimulatedUser(error_probability=0.3, seed=5),
            robustness=ConfirmationChecker(interval=2),
            seed=0,
        )
        trace = process.run(max_iterations=10)
        stats = process.robustness_stats
        assert stats.sweeps >= 1
        assert stats.repairs == stats.flagged
        total_repairs = sum(r.repairs for r in trace.records)
        assert total_repairs == stats.repairs

    def test_checker_validation(self):
        with pytest.raises(ValidationProcessError):
            ConfirmationChecker(interval=0)
        with pytest.raises(ValidationProcessError):
            ConfirmationChecker(damping=1.0)

    def test_due(self):
        checker = ConfirmationChecker(interval=3)
        assert not checker.due(2)
        assert checker.due(3)


class TestGoals:
    def test_no_goal_never_satisfied(self):
        process = make_process()
        assert not NoGoal().satisfied(process)

    def test_true_precision_goal_validation(self):
        with pytest.raises(ValueError):
            TruePrecisionGoal(1.5)

    def test_estimated_goal_requires_labels(self):
        process = make_process()
        process.initialize()
        goal = EstimatedPrecisionGoal(0.5, folds=2, min_labels=2)
        assert not goal.satisfied(process)

    def test_estimated_goal_with_labels(self):
        from repro.datasets import load_dataset

        db = load_dataset("wiki", seed=11, scale=0.15)
        process = ValidationProcess(
            db,
            strategy=make_strategy("uncertainty"),
            user=SimulatedUser(seed=0),
            seed=0,
        )
        process.initialize()
        for _ in range(8):
            process.step()
        goal = EstimatedPrecisionGoal(0.0, folds=2, min_labels=4)
        assert goal.satisfied(process)

    def test_estimated_goal_validation(self):
        with pytest.raises(ValueError):
            EstimatedPrecisionGoal(0.5, folds=1)
        with pytest.raises(ValueError):
            EstimatedPrecisionGoal(0.5, folds=5, min_labels=3)

    def test_goal_descriptions(self):
        assert "0.9" in TruePrecisionGoal(0.9).describe()
        assert NoGoal().describe() == "none"
        assert "fold" in EstimatedPrecisionGoal(0.8).describe()


class TestHybridProcessIntegration:
    def test_hybrid_process_completes(self):
        from repro.datasets import load_dataset

        db = load_dataset("wiki", seed=13, scale=0.1)
        process = ValidationProcess(
            db,
            strategy=make_strategy("hybrid"),
            user=SimulatedUser(seed=1),
            goal=TruePrecisionGoal(0.9),
            seed=1,
        )
        trace = process.run()
        assert trace.stop_reason in ("goal", "exhausted")
        assert process.current_precision() >= 0.9 or trace.stop_reason == "exhausted"

    def test_strategy_used_recorded(self):
        process = make_process(strategy="hybrid")
        process.initialize()
        record = process.step()
        assert record.strategy_used in ("info", "source")
