"""Smoke tests executing every example script against the session API.

Each ``examples/*.py`` runs as a subprocess at reduced scale
(``EXAMPLE_SMOKE=1``), so drift in the façade surface breaks the build —
the examples double as living documentation of the public API.  CI also
runs these scripts directly (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_every_example_is_covered():
    """The parametrised list below must track the examples directory."""
    assert EXAMPLES, "no examples found"


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    env = dict(os.environ)
    env["EXAMPLE_SMOKE"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, "-W", "error::DeprecationWarning", str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 0, (
        f"{script} failed\nstdout:\n{completed.stdout[-2000:]}\n"
        f"stderr:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script} produced no output"
