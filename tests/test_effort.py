"""Tests for effort reduction (§6): termination, cross-validation, batching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crf.partition import ComponentIndex
from repro.effort.batching import (
    batch_utility,
    correlation_matrix,
    exact_batch_gain,
    exhaustive_topk_selection,
    greedy_topk_selection,
)
from repro.effort.cost import cost_saving, dynamic_batch_size, precision_degradation
from repro.effort.crossval import estimate_precision
from repro.effort.termination import (
    GroundingChangeCriterion,
    PrecisionImprovementCriterion,
    UncertaintyReductionCriterion,
    ValidatedPredictionCriterion,
    cng_series,
    pir_series,
    pre_series,
    urr_series,
)
from repro.errors import GuidanceError, ValidationProcessError
from repro.guidance.gain import GainConfig, GainEstimator
from repro.guidance.strategies import make_strategy
from repro.inference.icrf import ICrf
from repro.validation.oracle import SimulatedUser
from repro.validation.process import ValidationProcess
from repro.validation.session import IterationRecord, ValidationTrace


def make_record(**overrides) -> IterationRecord:
    defaults = dict(
        iteration=1,
        claim_indices=[0],
        user_values=[1],
        strategy_used="info",
        error_rate=0.1,
        hybrid_score=0.1,
        unreliable_ratio=0.1,
        entropy=1.0,
        precision=0.8,
        grounding_changes=0,
        predictions_matched=[True],
        response_seconds=0.01,
    )
    defaults.update(overrides)
    return IterationRecord(**defaults)


def make_trace(records, initial_entropy=2.0, num_claims=10):
    trace = ValidationTrace(
        num_claims=num_claims,
        initial_precision=0.5,
        initial_entropy=initial_entropy,
        records=list(records),
    )
    return trace


class TestTerminationCriteria:
    def test_urr_triggers_after_patience(self):
        criterion = UncertaintyReductionCriterion(threshold=0.1, patience=2)
        trace = make_trace([])
        # Entropy barely moves: rate below threshold twice -> trigger.
        r1 = make_record(entropy=1.99)
        assert criterion.update(trace, r1, None) is None
        r2 = make_record(entropy=1.98)
        assert criterion.update(trace, r2, None) == "urr"

    def test_urr_resets_on_large_drop(self):
        criterion = UncertaintyReductionCriterion(threshold=0.1, patience=2)
        trace = make_trace([])
        criterion.update(trace, make_record(entropy=1.99), None)
        # Big reduction resets the streak.
        assert criterion.update(trace, make_record(entropy=1.0), None) is None
        assert criterion.update(trace, make_record(entropy=0.99), None) is None

    def test_cng_triggers_on_stable_grounding(self):
        criterion = GroundingChangeCriterion(max_changes=0, patience=3)
        trace = make_trace([])
        for index in range(2):
            assert criterion.update(
                trace, make_record(grounding_changes=0), None
            ) is None
        assert criterion.update(
            trace, make_record(grounding_changes=0), None
        ) == "cng"

    def test_cng_resets_on_change(self):
        criterion = GroundingChangeCriterion(max_changes=0, patience=2)
        trace = make_trace([])
        criterion.update(trace, make_record(grounding_changes=0), None)
        assert criterion.update(
            trace, make_record(grounding_changes=3), None
        ) is None

    def test_pre_triggers_on_consistent_predictions(self):
        criterion = ValidatedPredictionCriterion(patience=2)
        trace = make_trace([])
        assert criterion.update(
            trace, make_record(predictions_matched=[True]), None
        ) is None
        assert criterion.update(
            trace, make_record(predictions_matched=[True, True]), None
        ) == "pre"

    def test_pre_resets_on_mismatch(self):
        criterion = ValidatedPredictionCriterion(patience=2)
        trace = make_trace([])
        criterion.update(trace, make_record(predictions_matched=[True]), None)
        assert criterion.update(
            trace, make_record(predictions_matched=[False]), None
        ) is None

    def test_validation_of_parameters(self):
        with pytest.raises(ValueError):
            UncertaintyReductionCriterion(threshold=-0.1)
        with pytest.raises(ValueError):
            GroundingChangeCriterion(patience=0)
        with pytest.raises(ValueError):
            PrecisionImprovementCriterion(folds=0)

    def test_process_stops_on_criterion(self):
        from repro.datasets import load_dataset

        db = load_dataset("wiki", seed=31, scale=0.1)
        process = ValidationProcess(
            db,
            strategy=make_strategy("uncertainty"),
            user=SimulatedUser(seed=0),
            termination=[GroundingChangeCriterion(max_changes=db.num_claims,
                                                  patience=1)],
            seed=0,
        )
        trace = process.run()
        assert trace.stop_reason == "cng"
        assert trace.iterations == 1


class TestIndicatorSeries:
    def test_urr_series_definition(self):
        trace = make_trace(
            [make_record(entropy=1.0), make_record(entropy=0.5)],
            initial_entropy=2.0,
        )
        rates = urr_series(trace)
        assert rates[0] == pytest.approx(0.5)   # (2-1)/2
        assert rates[1] == pytest.approx(0.5)   # (1-0.5)/1

    def test_cng_series_normalised(self):
        trace = make_trace([make_record(grounding_changes=5)], num_claims=10)
        assert cng_series(trace)[0] == pytest.approx(0.5)

    def test_pre_series_window(self):
        records = [
            make_record(predictions_matched=[True]),
            make_record(predictions_matched=[False]),
        ]
        trace = make_trace(records)
        series = pre_series(trace, window=2)
        assert series[0] == pytest.approx(1.0)
        assert series[1] == pytest.approx(0.5)

    def test_pre_series_invalid_window(self):
        with pytest.raises(ValidationProcessError):
            pre_series(make_trace([]), window=0)

    def test_pir_series(self):
        rates = pir_series(np.asarray([0.5, 0.6, 0.6]))
        assert rates[0] == pytest.approx(0.2)
        assert rates[1] == pytest.approx(0.0)

    def test_pir_series_short_input(self):
        assert pir_series(np.asarray([0.5])).size == 0


class TestCrossValidation:
    def make_labelled_process(self, labels=10):
        from repro.datasets import load_dataset

        db = load_dataset("wiki", seed=33, scale=0.15)
        process = ValidationProcess(
            db,
            strategy=make_strategy("uncertainty"),
            user=SimulatedUser(seed=0),
            seed=0,
        )
        process.initialize()
        for _ in range(labels):
            process.step()
        return process

    def test_estimate_in_unit_interval(self):
        process = self.make_labelled_process()
        estimate = estimate_precision(process, folds=3)
        assert 0.0 <= estimate <= 1.0

    def test_estimate_high_for_oracle_labels(self):
        process = self.make_labelled_process(labels=12)
        estimate = estimate_precision(process, folds=3)
        assert estimate >= 0.5

    def test_estimate_deterministic(self):
        process = self.make_labelled_process()
        a = estimate_precision(process, folds=3, seed=5)
        b = estimate_precision(process, folds=3, seed=5)
        assert a == b

    def test_estimate_restores_state(self):
        process = self.make_labelled_process()
        labels_before = dict(process.database.labels)
        probs_before = np.asarray(process.database.probabilities).copy()
        estimate_precision(process, folds=3)
        assert process.database.labels == labels_before
        assert np.allclose(process.database.probabilities, probs_before)

    def test_too_few_labels_raises(self):
        process = self.make_labelled_process(labels=2)
        with pytest.raises(ValidationProcessError):
            estimate_precision(process, folds=5)


class TestCostModel:
    def test_cost_saving_k1_is_zero(self):
        assert cost_saving(1, 0.5) == 0.0

    def test_cost_saving_increases_with_k(self):
        values = [cost_saving(k, 0.5) for k in (1, 2, 5, 10, 20)]
        assert values == sorted(values)
        assert values[-1] < 1.0

    def test_cost_saving_closed_form(self):
        assert cost_saving(4, 0.5) == pytest.approx(1 - 1 / 2.0)

    def test_cost_saving_validation(self):
        with pytest.raises(ValueError):
            cost_saving(0, 0.5)
        with pytest.raises(ValueError):
            cost_saving(2, 0.0)

    def test_precision_degradation(self):
        assert precision_degradation(0.8, 0.6) == pytest.approx(0.25)

    def test_precision_degradation_clipped(self):
        assert precision_degradation(0.8, 0.9) == 0.0

    def test_precision_degradation_validation(self):
        with pytest.raises(ValueError):
            precision_degradation(0.0, 0.5)

    def test_dynamic_batch_size_schedule(self):
        assert dynamic_batch_size(0.0) == 1
        assert dynamic_batch_size(0.2) == 1
        assert dynamic_batch_size(1.0) == 20
        mid = dynamic_batch_size(0.6)
        assert 1 < mid < 20

    def test_dynamic_batch_size_validation(self):
        with pytest.raises(ValueError):
            dynamic_batch_size(1.5)
        with pytest.raises(ValueError):
            dynamic_batch_size(0.5, initial=5, maximum=2)


class TestBatching:
    def make_gain_setup(self):
        from repro.datasets import load_dataset

        db = load_dataset("wiki", seed=37, scale=0.1)
        icrf = ICrf(db, seed=0)
        icrf.infer()
        gains = GainEstimator(
            icrf.model, ComponentIndex(db), config=GainConfig(), seed=1
        )
        return db, gains

    def test_correlation_matrix_symmetric_normalised(self, micro_db):
        matrix = correlation_matrix(micro_db, [0, 1, 2])
        assert np.allclose(matrix, matrix.T)
        assert matrix.max() == pytest.approx(1.0)
        assert np.all(matrix >= 0)

    def test_correlation_counts_shared_sources(self, micro_db):
        matrix = correlation_matrix(micro_db, [0, 1, 2])
        # c1 and c2 share both sources; c1 and c3 share only s1.
        assert matrix[0, 1] > matrix[0, 2]

    def test_greedy_selects_k_distinct(self):
        db, gains = self.make_gain_setup()
        selection = greedy_topk_selection(db, gains, k=5)
        assert len(selection.claims) == 5
        assert len(set(selection.claims)) == 5

    def test_greedy_k_capped_by_unlabelled(self):
        db, gains = self.make_gain_setup()
        selection = greedy_topk_selection(db, gains, k=10_000)
        assert len(selection.claims) == db.num_claims

    def test_greedy_invalid_k(self):
        db, gains = self.make_gain_setup()
        with pytest.raises(GuidanceError):
            greedy_topk_selection(db, gains, k=0)

    def test_greedy_no_unlabelled(self):
        db, gains = self.make_gain_setup()
        for claim in range(db.num_claims):
            db.label(claim, 1)
        with pytest.raises(GuidanceError):
            greedy_topk_selection(db, gains, k=1)

    def test_greedy_near_optimal_utility(self):
        """Greedy must reach at least (1 - 1/e) of the exhaustive optimum."""
        db, gains = self.make_gain_setup()
        greedy = greedy_topk_selection(db, gains, k=3, candidate_limit=8)
        best = exhaustive_topk_selection(db, gains, k=3, candidate_limit=8)
        if best.utility > 0:
            assert greedy.utility >= (1 - 1 / np.e) * best.utility - 1e-9

    def test_utility_redundancy_dominates_at_small_weight(self):
        # With a small individual-benefit weight w, the redundancy penalty
        # dominates: independent claims are preferred.
        gains_vec = np.asarray([1.0, 1.0])
        correlated = np.asarray([[1.0, 1.0], [1.0, 1.0]])
        independent = np.asarray([[1.0, 0.0], [0.0, 1.0]])
        assert batch_utility(gains_vec, independent, [0, 1], 0.1) > batch_utility(
            gains_vec, correlated, [0, 1], 0.1
        )

    def test_utility_importance_rewards_connected_claims_at_large_weight(self):
        # With a large w the importance term dominates: claims from large
        # dependent groups are preferred (they propagate information).
        gains_vec = np.asarray([1.0, 1.0])
        correlated = np.asarray([[1.0, 1.0], [1.0, 1.0]])
        independent = np.asarray([[1.0, 0.0], [0.0, 1.0]])
        assert batch_utility(gains_vec, correlated, [0, 1], 5.0) > batch_utility(
            gains_vec, independent, [0, 1], 5.0
        )

    def test_exact_batch_gain_small(self, micro_db):
        icrf = ICrf(micro_db, seed=0)
        icrf.infer()
        gains = GainEstimator(
            icrf.model, ComponentIndex(micro_db), config=GainConfig(), seed=1
        )
        value = exact_batch_gain(micro_db, gains, [0, 1])
        assert np.isfinite(value)

    def test_exact_batch_gain_size_cap(self, micro_db):
        icrf = ICrf(micro_db, seed=0)
        icrf.infer()
        gains = GainEstimator(
            icrf.model, ComponentIndex(micro_db), config=GainConfig(), seed=1
        )
        with pytest.raises(GuidanceError):
            exact_batch_gain(micro_db, gains, list(range(13)))

    def test_exact_batch_gain_empty(self, micro_db):
        icrf = ICrf(micro_db, seed=0)
        gains = GainEstimator(
            icrf.model, ComponentIndex(micro_db), config=GainConfig(), seed=1
        )
        assert exact_batch_gain(micro_db, gains, []) == 0.0

    def test_batched_process_labels_k_per_iteration(self):
        from repro.datasets import load_dataset

        db = load_dataset("wiki", seed=39, scale=0.1)
        process = ValidationProcess(
            db,
            strategy=make_strategy("info"),
            user=SimulatedUser(seed=0),
            batch_size=3,
            seed=0,
        )
        process.initialize()
        record = process.step()
        assert len(record.claim_indices) == 3
        assert db.num_labelled == 3
