"""Shared test fixtures and corpus builders, importable from any suite.

This is the single home of fixtures previously duplicated between the
repo-root, ``tests/`` and ``benchmarks/`` conftests: ``tests/conftest.py``
re-exports the pytest fixtures, while test modules import the plain
builders (:func:`build_micro_database`, :func:`random_databases`)
directly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.data.database import FactDatabase
from repro.data.entities import Claim, ClaimLink, Document, Source
from repro.data.stance import Stance
from repro.datasets import load_dataset


def build_micro_database(prior: float = 0.5) -> FactDatabase:
    """A 3-claim corpus with one reliable and one unreliable source.

    Structure:
        * ``s1`` (reliable): supports true claims c1/c3, refutes false c2.
        * ``s2`` (unreliable): supports false c2, refutes true c1.
    Claims c1 and c3 are true; c2 is false.  Source features encode
    reliability (first coordinate high for s1), document features encode
    language quality.
    """
    sources = [
        Source("s1", features=[1.0, 0.2]),
        Source("s2", features=[-1.0, 0.1]),
    ]
    claims = [
        Claim("c1", text="claim one", truth=True),
        Claim("c2", text="claim two", truth=False),
        Claim("c3", text="claim three", truth=True),
    ]
    documents = [
        Document(
            "d1",
            source_id="s1",
            features=[0.9, 0.8],
            claim_links=(
                ClaimLink("c1", Stance.SUPPORT),
                ClaimLink("c2", Stance.REFUTE),
            ),
        ),
        Document(
            "d2",
            source_id="s1",
            features=[0.8, 0.7],
            claim_links=(ClaimLink("c3", Stance.SUPPORT),),
        ),
        Document(
            "d3",
            source_id="s2",
            features=[-0.5, -0.6],
            claim_links=(ClaimLink("c2", Stance.SUPPORT),),
        ),
        Document(
            "d4",
            source_id="s2",
            features=[-0.7, -0.4],
            claim_links=(ClaimLink("c1", Stance.REFUTE),),
        ),
    ]
    return FactDatabase(sources, documents, claims, prior=prior)


@st.composite
def random_databases(draw):
    """Hypothesis strategy: a small random fact database with full truth."""
    num_claims = draw(st.integers(2, 6))
    num_sources = draw(st.integers(1, 4))
    num_documents = draw(st.integers(1, 8))
    rng_seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(rng_seed)

    sources = [
        Source(f"s{i}", features=rng.normal(size=2)) for i in range(num_sources)
    ]
    claims = [
        Claim(f"c{i}", truth=bool(rng.integers(0, 2))) for i in range(num_claims)
    ]
    documents = []
    for d in range(num_documents):
        linked = rng.choice(
            num_claims, size=rng.integers(1, min(3, num_claims) + 1),
            replace=False,
        )
        links = tuple(
            ClaimLink(
                f"c{int(c)}",
                Stance.SUPPORT if rng.random() < 0.7 else Stance.REFUTE,
            )
            for c in linked
        )
        documents.append(
            Document(
                f"d{d}",
                source_id=f"s{int(rng.integers(0, num_sources))}",
                features=rng.normal(size=2),
                claim_links=links,
            )
        )
    return FactDatabase(sources, documents, claims)


@pytest.fixture
def micro_db() -> FactDatabase:
    """Fresh handcrafted 3-claim database."""
    return build_micro_database()


@pytest.fixture(scope="session")
def wiki_db_session() -> FactDatabase:
    """Session-cached generated wiki replica (do not mutate)."""
    return load_dataset("wiki", seed=42, scale=0.15)


@pytest.fixture
def wiki_db() -> FactDatabase:
    """Fresh generated wiki replica (safe to mutate)."""
    return load_dataset("wiki", seed=42, scale=0.15)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)
