"""Property-based tests of inference invariants on random corpora.

Hypothesis generates small random fact databases (random bipartite
structure, stances, features); the invariants under test are structural,
not statistical: probabilities stay in range, labels are respected by
every inference path, energy bookkeeping is exact, and snapshots restore
losslessly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crf.gibbs import GibbsSampler
from repro.crf.model import CrfModel
from repro.crf.weights import CrfWeights
from repro.inference.icrf import ICrf
from tests.fixtures import random_databases


def random_weights(database, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    size = 2 + database.document_features.shape[1] + database.source_features.shape[1]
    return CrfWeights(scale * rng.normal(size=size))


class TestModelInvariants:
    @settings(max_examples=30, deadline=None)
    @given(random_databases(), st.integers(0, 1000))
    def test_conditional_equals_joint_gap(self, database, weight_seed):
        """For any structure and weights, the Gibbs conditional logit must
        equal the joint log-potential difference — the exactness property
        the sampler's correctness rests on."""
        model = CrfModel(database, weights=random_weights(database, weight_seed))
        rng = np.random.default_rng(weight_seed)
        config = rng.integers(0, 2, size=database.num_claims).astype(np.int8)
        claim = int(rng.integers(0, database.num_claims))
        up, down = config.copy(), config.copy()
        up[claim], down[claim] = 1, 0
        gap = model.joint_log_potential(up) - model.joint_log_potential(down)
        spins = 2.0 * config.astype(float) - 1.0
        stats = model.source_statistics(spins)
        logit = model.conditional_logit(claim, spins, stats)
        assert logit == pytest.approx(gap, abs=1e-8)

    @settings(max_examples=30, deadline=None)
    @given(random_databases())
    def test_trust_signals_zero_without_coupling(self, database):
        model = CrfModel(
            database,
            weights=random_weights(database, 1),
            coupling_enabled=False,
        )
        signals = model.trust_signals(np.full(database.num_claims, 0.7))
        assert np.allclose(signals, 0.0)

    @settings(max_examples=30, deadline=None)
    @given(random_databases())
    def test_components_partition_claims(self, database):
        components = database.connected_components()
        flattened = sorted(int(c) for comp in components for c in comp)
        assert flattened == list(range(database.num_claims))


class TestSamplerInvariants:
    @settings(max_examples=20, deadline=None)
    @given(random_databases(), st.integers(0, 100))
    def test_marginals_bounded_and_labels_pinned(self, database, seed):
        rng = np.random.default_rng(seed)
        label_count = int(rng.integers(0, database.num_claims))
        for claim in rng.choice(database.num_claims, size=label_count,
                                replace=False):
            database.label(int(claim), int(rng.integers(0, 2)))
        model = CrfModel(database, weights=random_weights(database, seed))
        sampler = GibbsSampler(model, burn_in=2, num_samples=5, seed=seed)
        result = sampler.sample()
        assert np.all((result.marginals >= 0) & (result.marginals <= 1))
        for claim, label in database.labels.items():
            assert result.marginals[claim] == float(label)
            assert result.mode_configuration[claim] == label

    @settings(max_examples=15, deadline=None)
    @given(random_databases(), st.integers(0, 100))
    def test_icrf_respects_labels_and_state_roundtrip(self, database, seed):
        icrf = ICrf(database, em_iterations=1, num_samples=5, seed=seed)
        snapshot = database.clone_state()
        result = icrf.infer()
        assert np.all((result.marginals >= 0) & (result.marginals <= 1))
        database.restore_state(snapshot)
        assert np.allclose(database.probabilities, snapshot.probabilities)

    @settings(max_examples=15, deadline=None)
    @given(random_databases())
    def test_grounding_respects_labels(self, database):
        rng = np.random.default_rng(0)
        claim = int(rng.integers(0, database.num_claims))
        value = int(rng.integers(0, 2))
        database.label(claim, value)
        icrf = ICrf(database, em_iterations=1, num_samples=5, seed=0)
        result = icrf.infer()
        assert result.grounding[claim] == value
