"""Tests of the sharded multi-core inference backend.

Three contracts, in rising order of machinery:

* **Config** — ``num_shards`` plumbs through :class:`EngineConfig` and
  :class:`InferenceSpec` with field-level validation, and shard counts
  memoise as distinct engines per model.
* **Exactness** — any shard count reproduces the reference/numpy chain
  and M-step assembly bit-for-bit: a 1-shard engine (compiled merge
  kernel, no pool) on arbitrary hypothesis corpora, and real 2/3-worker
  pools on a corpus big enough to split.
* **Lifecycle** — worker death mid-call surfaces a structured
  :class:`InferenceError` with the chain untouched, the pool self-heals
  on the next call, and session close / service eviction shut pools
  down.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import FactCheckSession, SessionSpec
from repro.api.specs import InferenceSpec
from repro.crf.gibbs import GibbsSampler
from repro.crf.model import CrfModel
from repro.errors import InferenceError, SpecError
from repro.inference.engine import (
    ENGINE_BACKENDS,
    EngineConfig,
    NumpyEngine,
    ReferenceEngine,
    ShardedEngine,
    create_engine,
)
from repro.inference.engine.sharded import _FORK_AVAILABLE, _partition_claims
from repro.inference.mstep import MStepConfig
from tests.fixtures import build_micro_database, random_databases
from tests.test_engine import apply_random_labels, random_weights

needs_fork = pytest.mark.skipif(
    not _FORK_AVAILABLE, reason="fork start method unavailable"
)


def wiki_model(scale=1.0, seed_weights=3):
    from repro.datasets import load_dataset

    database = load_dataset("wiki", seed=42, scale=scale)
    database.label(1, 1)
    database.label(4, 0)
    weights = random_weights(database, seed=seed_weights, scale=0.5)
    return database, weights


class TestConfig:
    def test_registry_has_sharded(self):
        assert ENGINE_BACKENDS["sharded"] is ShardedEngine

    def test_num_shards_requires_sharded_backend(self):
        with pytest.raises(InferenceError):
            EngineConfig(backend="numpy", num_shards=2)
        with pytest.raises(InferenceError):
            EngineConfig(backend="sharded", num_shards=0)
        assert EngineConfig(backend="sharded", num_shards=2).cache_key == "sharded[2]"

    def test_spec_validates_num_shards(self):
        with pytest.raises(SpecError) as excinfo:
            InferenceSpec(engine="numpy", num_shards=2)
        assert excinfo.value.field == "num_shards"
        with pytest.raises(SpecError):
            InferenceSpec(engine="sharded", num_shards=0)
        spec = InferenceSpec(engine="sharded", num_shards=3)
        config = spec.engine_config()
        assert config.backend == "sharded" and config.num_shards == 3
        assert InferenceSpec.from_dict(spec.to_dict()) == spec

    def test_shard_counts_memoise_separately(self):
        model = CrfModel(build_micro_database())
        one = create_engine(model, EngineConfig("sharded", num_shards=1))
        two = create_engine(model, EngineConfig("sharded", num_shards=2))
        assert one is not two
        assert one is create_engine(model, EngineConfig("sharded", num_shards=1))

    def test_partition_covers_and_balances(self):
        ptr = np.array([0, 3, 3, 10, 12, 12, 20], dtype=np.intp)
        ranges = _partition_claims(ptr, 3)
        assert ranges[0][0] == 0 and ranges[-1][1] == 6
        for (_, hi), (lo, _) in zip(ranges[:-1], ranges[1:]):
            assert hi == lo
        assert _partition_claims(ptr, 100)[-1][1] == 6


class TestOneShardEquivalence:
    """1-shard sharded (compiled kernel, no pool) == numpy, bit for bit."""

    @settings(max_examples=25, deadline=None)
    @given(random_databases(), st.integers(0, 10_000))
    def test_chains_identical(self, database, seed):
        apply_random_labels(database, seed)
        weights = random_weights(database, seed)
        model_np = CrfModel(database, weights=weights)
        model_sh = CrfModel(database, weights=weights)
        vec = GibbsSampler(
            model_np, burn_in=3, num_samples=8, seed=seed,
            engine=NumpyEngine(model_np),
        )
        sharded = GibbsSampler(
            model_sh, burn_in=3, num_samples=8, seed=seed,
            engine=ShardedEngine(model_sh, EngineConfig("sharded", num_shards=1)),
        )
        result_vec = vec.sample()
        result_sh = sharded.sample()
        assert np.array_equal(result_vec.marginals, result_sh.marginals)
        assert np.array_equal(vec.state, sharded.state)
        # Warm-started second pass stays in lockstep too.
        assert np.array_equal(vec.sample().marginals, sharded.sample().marginals)

    @settings(max_examples=25, deadline=None)
    @given(random_databases(), st.integers(0, 10_000))
    def test_mstep_identical(self, database, seed):
        apply_random_labels(database, seed)
        model = CrfModel(database, weights=random_weights(database, seed))
        marginals = np.random.default_rng(seed).random(database.num_claims)
        label_idx, label_val = database.label_arrays()
        marginals[label_idx] = label_val
        config = MStepConfig()
        vec = NumpyEngine(model).assemble_mstep(marginals, config)
        sharded = ShardedEngine(
            model, EngineConfig("sharded", num_shards=1)
        ).assemble_mstep(marginals, config)
        if vec is None:
            assert sharded is None
            return
        for vector_part, sharded_part in zip(vec, sharded):
            assert np.array_equal(vector_part, sharded_part)


@needs_fork
class TestMultiShardEquivalence:
    """Real worker pools reproduce the reference chain bit for bit."""

    @pytest.mark.parametrize("num_shards", [2, 3])
    def test_chains_and_mstep_match_reference(self, num_shards):
        database, weights = wiki_model()
        model_ref = CrfModel(database, weights=weights)
        model_sh = CrfModel(database, weights=weights)
        ref = GibbsSampler(
            model_ref, burn_in=4, num_samples=10, seed=11,
            engine=ReferenceEngine(model_ref),
        )
        engine = ShardedEngine(
            model_sh, EngineConfig("sharded", num_shards=num_shards)
        )
        sharded = GibbsSampler(
            model_sh, burn_in=4, num_samples=10, seed=11, engine=engine
        )
        result_ref = ref.sample()
        result_sh = sharded.sample()
        assert engine._pool is not None  # workers really dispatched
        assert np.array_equal(result_ref.marginals, result_sh.marginals)
        assert np.array_equal(ref.state, sharded.state)
        config = MStepConfig()
        ref_parts = ReferenceEngine(model_ref).assemble_mstep(
            result_ref.marginals, config
        )
        sh_parts = engine.assemble_mstep(result_sh.marginals, config)
        for reference_part, sharded_part in zip(ref_parts, sh_parts):
            assert np.array_equal(reference_part, sharded_part)
        engine.close()
        assert engine._pool is None

    def test_unsorted_claim_subset_falls_back_inline(self):
        database, weights = wiki_model(scale=0.3)
        model_a = CrfModel(database, weights=weights)
        model_b = CrfModel(database, weights=weights)
        subset = [7, 2, 11, 5, 3]
        sampler_np = GibbsSampler(
            model_a, burn_in=2, num_samples=6, seed=5,
            engine=NumpyEngine(model_a),
        )
        engine = ShardedEngine(model_b, EngineConfig("sharded", num_shards=2))
        sampler_sh = GibbsSampler(
            model_b, burn_in=2, num_samples=6, seed=5, engine=engine
        )
        result_np = sampler_np.sample(claim_subset=subset)
        result_sh = sampler_sh.sample(claim_subset=subset)
        assert not engine._can_dispatch(
            np.asarray(subset, dtype=np.intp)
        )
        assert np.array_equal(result_np.marginals, result_sh.marginals)
        engine.close()


@needs_fork
class TestCrashSafety:
    def test_worker_death_raises_structured_error_and_heals(self):
        database, weights = wiki_model()
        model = CrfModel(database, weights=weights)
        engine = ShardedEngine(model, EngineConfig("sharded", num_shards=2))
        sampler = GibbsSampler(model, burn_in=2, num_samples=6, seed=7, engine=engine)
        sampler.sample()  # spawn the pool
        pool = engine._pool
        assert pool is not None and len(pool._workers) >= 2

        snapshot = sampler.state_dict()
        spins_before = sampler.state.copy()
        os.kill(pool._workers[0].process.pid, signal.SIGKILL)
        pool._workers[0].process.join(timeout=5.0)
        with pytest.raises(InferenceError, match="died mid-call"):
            sampler.sample()
        # The failed call touched no chain state and dropped the pool.
        assert np.array_equal(sampler.state, spins_before)
        assert engine._pool is None

        # Reference twin restored from the same snapshot proves the
        # rebuilt pool continues the exact chain.
        model_ref = CrfModel(database, weights=weights)
        reference = GibbsSampler(
            model_ref, burn_in=2, num_samples=6, seed=7,
            engine=ReferenceEngine(model_ref),
        )
        reference.load_state_dict(snapshot)
        sampler.load_state_dict(snapshot)
        result_sh = sampler.sample()
        result_ref = reference.sample()
        assert engine._pool is not None
        assert np.array_equal(result_ref.marginals, result_sh.marginals)
        engine.close()

    def test_worker_exception_reports_traceback(self):
        database, weights = wiki_model(scale=0.3)
        model = CrfModel(database, weights=weights)
        engine = ShardedEngine(model, EngineConfig("sharded", num_shards=2))
        sampler = GibbsSampler(model, burn_in=1, num_samples=3, seed=3, engine=engine)
        sampler.sample()
        pool = engine._pool
        with pytest.raises(InferenceError, match="failed"):
            pool._request(("no-such-kind",))
        assert pool._workers == []  # structured failure shuts the pool down
        engine.close()


class TestLifecycle:
    def test_session_close_releases_pool(self):
        spec = SessionSpec(
            inference=InferenceSpec(
                engine="sharded", num_shards=2, em_iterations=1,
                num_samples=4, burn_in=2,
            ),
            seed=5,
        )
        database, _ = wiki_model(scale=0.3)
        session = FactCheckSession(spec, database=database)
        session.open()
        session.step()
        engine = session.process.icrf.engine
        assert isinstance(engine, ShardedEngine)
        session.close()
        assert engine._pool is None

    def test_close_is_idempotent_and_engine_stays_usable(self):
        database, weights = wiki_model(scale=0.3)
        model = CrfModel(database, weights=weights)
        engine = ShardedEngine(model, EngineConfig("sharded", num_shards=2))
        sampler = GibbsSampler(model, burn_in=1, num_samples=3, seed=9, engine=engine)
        first = sampler.sample()
        engine.close()
        engine.close()
        assert first.marginals.size == database.num_claims
        again = sampler.sample()  # pool rebuilds lazily
        assert again.marginals.size == database.num_claims
        engine.close()


class TestGainParallelConstruction:
    def test_parallel_does_not_warn_in_either_mode(self):
        # Gibbs-mode parallel gain evaluation used to be a no-op behind a
        # RuntimeWarning; the snapshot-isolated executor made it real, so
        # construction must be silent for every mode.
        import warnings as warnings_module

        from repro.guidance.gain import GainConfig, GainEstimator

        for mode in ("meanfield", "gibbs"):
            model = CrfModel(build_micro_database())
            with warnings_module.catch_warnings():
                warnings_module.simplefilter("error")
                GainEstimator(
                    model,
                    config=GainConfig(inference_mode=mode, parallel=True),
                )

    def test_parallel_gibbs_leases_sharded_worker_engines(self):
        from repro.guidance.gain import GainConfig, GainEstimator

        database = build_micro_database()
        model = CrfModel(database)
        estimator = GainEstimator(
            model,
            config=GainConfig(inference_mode="gibbs", parallel=True),
            seed=3,
        )
        estimator.information_gains(list(range(database.num_claims)))
        with estimator._engine_pool.lease() as engine:
            assert isinstance(engine, ShardedEngine)
            assert engine._num_shards == 1
        estimator.close()
        assert estimator._engine_pool._idle == []
