"""Tests for the dataset substrate (§8.1): profiles, generator, features, IO."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.stance import Stance
from repro.datasets import (
    HEALTHCARE,
    SNOPES,
    WIKIPEDIA,
    DatasetProfile,
    SourceKind,
    database_from_dict,
    database_to_dict,
    generate_dataset,
    get_profile,
    load_database,
    load_dataset,
    save_database,
)
from repro.datasets.textfeatures import (
    DOCUMENT_FEATURE_NAMES,
    FORUM_USER_FEATURE_NAMES,
    document_features,
    forum_user_features,
)
from repro.datasets.webgraph import (
    WEBSITE_FEATURE_NAMES,
    build_hyperlink_graph,
    website_features,
)
from repro.errors import DatasetError


class TestProfiles:
    def test_published_counts(self):
        assert (WIKIPEDIA.num_sources, WIKIPEDIA.num_documents,
                WIKIPEDIA.num_claims) == (1955, 3228, 157)
        assert (HEALTHCARE.num_sources, HEALTHCARE.num_documents,
                HEALTHCARE.num_claims) == (11206, 48083, 529)
        assert (SNOPES.num_sources, SNOPES.num_documents,
                SNOPES.num_claims) == (23260, 80421, 4856)

    def test_get_profile_by_name(self):
        assert get_profile("wiki") is WIKIPEDIA
        assert get_profile("health") is HEALTHCARE
        assert get_profile("snopes") is SNOPES

    def test_get_profile_unknown(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            get_profile("nope")

    def test_scaled_counts(self):
        scaled = SNOPES.scaled(0.01)
        assert scaled.num_claims == round(4856 * 0.01)
        assert scaled.num_sources == round(23260 * 0.01)

    def test_scaled_respects_minimums(self):
        scaled = WIKIPEDIA.scaled(1e-6)
        assert scaled.num_claims >= 4
        assert scaled.num_documents >= 6
        assert scaled.num_sources >= 3

    def test_scaled_invalid(self):
        with pytest.raises(DatasetError):
            WIKIPEDIA.scaled(0.0)

    def test_invalid_credible_ratio(self):
        with pytest.raises(DatasetError):
            DatasetProfile(
                name="x", num_sources=10, num_documents=10, num_claims=10,
                credible_ratio=1.0, untrustworthy_ratio=0.1,
                source_kind=SourceKind.WEBSITE,
            )

    def test_source_kinds(self):
        assert WIKIPEDIA.source_kind is SourceKind.WEBSITE
        assert HEALTHCARE.source_kind is SourceKind.FORUM_USER


class TestGenerator:
    @pytest.fixture(scope="class")
    def generated(self):
        return generate_dataset(WIKIPEDIA, seed=11, scale=0.1)

    def test_counts_match_scaled_profile(self, generated):
        profile = WIKIPEDIA.scaled(0.1)
        assert generated.num_sources == profile.num_sources
        assert generated.num_documents == profile.num_documents
        assert generated.num_claims == profile.num_claims

    def test_every_claim_has_truth(self, generated):
        truth = generated.truth_vector()
        assert truth.shape == (generated.num_claims,)

    def test_credible_ratio_approximate(self, generated):
        truth = generated.truth_vector()
        ratio = truth.mean()
        assert abs(ratio - WIKIPEDIA.credible_ratio) < 0.1

    def test_deterministic_given_seed(self):
        a = generate_dataset(WIKIPEDIA, seed=3, scale=0.05)
        b = generate_dataset(WIKIPEDIA, seed=3, scale=0.05)
        assert np.array_equal(a.truth_vector(), b.truth_vector())
        assert np.allclose(a.source_features, b.source_features)
        assert [d.claim_ids for d in a.documents] == [
            d.claim_ids for d in b.documents
        ]

    def test_seeds_differ(self):
        a = generate_dataset(WIKIPEDIA, seed=3, scale=0.05)
        b = generate_dataset(WIKIPEDIA, seed=4, scale=0.05)
        assert not np.allclose(a.source_features, b.source_features)

    def test_reliable_sources_mostly_support_truth(self):
        db = generate_dataset(WIKIPEDIA, seed=5, scale=0.2)
        truth = db.truth_vector()
        aligned = 0
        total = 0
        for clique in db.cliques:
            source = db.sources[clique.source_index]
            if source.metadata["reliability"] < 0.8:
                continue
            spin = 1 if truth[clique.claim_index] else -1
            total += 1
            if clique.stance_sign * spin > 0:
                aligned += 1
        assert total > 0
        assert aligned / total > 0.7

    def test_every_document_has_links(self, generated):
        assert all(len(d.claim_links) >= 1 for d in generated.documents)

    def test_prior_propagates(self):
        db = generate_dataset(WIKIPEDIA, seed=3, scale=0.05, prior=0.4)
        assert np.allclose(db.probabilities, 0.4)

    def test_load_dataset_shortcut(self):
        db = load_dataset("wiki", seed=3, scale=0.05)
        assert db.num_claims == WIKIPEDIA.scaled(0.05).num_claims

    def test_forum_user_dataset_generates(self):
        db = load_dataset("health", seed=3, scale=0.01)
        assert db.num_claims == HEALTHCARE.scaled(0.01).num_claims
        assert db.source_features.shape[1] == len(FORUM_USER_FEATURE_NAMES)

    def test_website_dataset_feature_width(self, generated):
        assert generated.source_features.shape[1] == len(WEBSITE_FEATURE_NAMES)
        assert generated.document_features.shape[1] == len(DOCUMENT_FEATURE_NAMES)


class TestWebGraph:
    def test_graph_nodes_match_sources(self):
        graph = build_hyperlink_graph(np.asarray([0.9, 0.1, 0.5]), seed=1)
        assert set(graph.nodes) == {0, 1, 2}

    def test_no_self_links(self):
        reliability = np.linspace(0.1, 0.9, 20)
        graph = build_hyperlink_graph(reliability, seed=1)
        assert all(u != v for u, v in graph.edges)

    def test_reliable_nodes_attract_links(self):
        rng = np.random.default_rng(0)
        reliability = np.concatenate([np.full(30, 0.95), np.full(30, 0.05)])
        graph = build_hyperlink_graph(reliability, seed=rng,
                                      reliability_bias=5.0)
        reliable_in = np.mean([graph.in_degree(n) for n in range(30)])
        unreliable_in = np.mean([graph.in_degree(n) for n in range(30, 60)])
        assert reliable_in > unreliable_in

    def test_features_shape(self):
        features = website_features(np.asarray([0.9, 0.1, 0.5, 0.7]), seed=1)
        assert features.shape == (4, len(WEBSITE_FEATURE_NAMES))

    def test_features_standardised(self):
        features = website_features(np.linspace(0.05, 0.95, 50), seed=1)
        assert np.allclose(features.mean(axis=0), 0.0, atol=1e-9)

    def test_empty_input(self):
        assert website_features(np.asarray([])).shape == (0, 5)

    def test_single_node_graph(self):
        graph = build_hyperlink_graph(np.asarray([0.5]), seed=1)
        assert graph.number_of_edges() == 0


class TestTextFeatures:
    def test_document_feature_shape(self):
        features = document_features(np.linspace(0, 1, 10), seed=1)
        assert features.shape == (10, len(DOCUMENT_FEATURE_NAMES))

    def test_quality_correlates_with_objectivity(self):
        quality = np.linspace(0.0, 1.0, 400)
        features = document_features(quality, seed=1, noise_scale=0.1)
        objectivity = features[:, DOCUMENT_FEATURE_NAMES.index("objectivity")]
        assert np.corrcoef(quality, objectivity)[0, 1] > 0.5

    def test_sentiment_anticorrelates_with_quality(self):
        quality = np.linspace(0.0, 1.0, 400)
        features = document_features(quality, seed=1, noise_scale=0.1)
        sentiment = features[
            :, DOCUMENT_FEATURE_NAMES.index("sentiment_extremity")
        ]
        assert np.corrcoef(quality, sentiment)[0, 1] < -0.5

    def test_forum_features_shape(self):
        features = forum_user_features(
            np.asarray([0.2, 0.8]), np.asarray([3, 10]), seed=1
        )
        assert features.shape == (2, len(FORUM_USER_FEATURE_NAMES))

    def test_forum_features_misaligned_inputs(self):
        with pytest.raises(ValueError):
            forum_user_features(np.asarray([0.2]), np.asarray([3, 10]))

    def test_empty_documents(self):
        assert document_features(np.asarray([])).shape == (0, 6)


class TestIO:
    def test_roundtrip_preserves_structure(self, tmp_path):
        db = load_dataset("wiki", seed=9, scale=0.05)
        path = tmp_path / "db.json"
        save_database(db, path)
        loaded = load_database(path)
        assert loaded.num_sources == db.num_sources
        assert loaded.num_documents == db.num_documents
        assert loaded.num_claims == db.num_claims
        assert np.allclose(loaded.source_features, db.source_features)
        assert np.array_equal(loaded.truth_vector(), db.truth_vector())

    def test_roundtrip_preserves_stances(self, micro_db, tmp_path):
        path = tmp_path / "micro.json"
        save_database(micro_db, path)
        loaded = load_database(path)
        original = [(c.claim_index, c.stance_sign) for c in micro_db.cliques]
        restored = [(c.claim_index, c.stance_sign) for c in loaded.cliques]
        assert original == restored

    def test_dict_roundtrip(self, micro_db):
        payload = database_to_dict(micro_db)
        loaded = database_from_dict(payload)
        assert loaded.num_claims == micro_db.num_claims

    def test_bad_version_rejected(self, micro_db):
        payload = database_to_dict(micro_db)
        payload["version"] = 99
        with pytest.raises(DatasetError, match="version"):
            database_from_dict(payload)

    def test_malformed_payload_rejected(self):
        with pytest.raises(DatasetError):
            database_from_dict({"version": 1, "sources": [{}], "documents": [],
                                "claims": []})

    def test_state_not_serialised(self, micro_db, tmp_path):
        micro_db.label(0, 1)
        path = tmp_path / "micro.json"
        save_database(micro_db, path)
        loaded = load_database(path)
        assert loaded.num_labelled == 0

    def test_stance_enum_roundtrip(self, micro_db):
        payload = database_to_dict(micro_db)
        doc = payload["documents"][0]
        stances = {link["stance"] for link in doc["claims"]}
        assert stances <= {Stance.SUPPORT.name, Stance.REFUTE.name}
