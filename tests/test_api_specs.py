"""Tests for the declarative session specs (repro.api.specs)."""

from __future__ import annotations

import pytest

from repro.api import (
    DatasetSpec,
    EffortSpec,
    GoalSpec,
    GuidanceSpec,
    InferenceSpec,
    SessionSpec,
    StreamSpec,
    TerminationSpec,
    UserSpec,
)
from repro.errors import SpecError
from repro.guidance.gain import GainConfig
from repro.inference.mstep import MStepConfig
from repro.validation.goals import (
    EstimatedPrecisionGoal,
    NoGoal,
    TruePrecisionGoal,
)


class TestRoundTrips:
    def test_default_spec_round_trips_through_json(self):
        spec = SessionSpec()
        assert SessionSpec.from_json(spec.to_json()) == spec

    def test_fully_populated_spec_round_trips_through_json(self):
        spec = SessionSpec(
            mode="streaming",
            seed=13,
            dataset=DatasetSpec(name="wiki", seed=4, scale=0.3),
            user=UserSpec(error_probability=0.1, skip_probability=0.2),
            inference=InferenceSpec(
                aggregation="mean",
                coupling_enabled=False,
                em_iterations=2,
                em_tolerance=1e-4,
                burn_in=3,
                num_samples=9,
                initial_bias=0.5,
                estep_mode="meanfield",
                engine="reference",
                mstep=MStepConfig(max_iterations=7, labelled_weight=5.0),
            ),
            guidance=GuidanceSpec(
                strategy="info",
                candidate_limit=12,
                deterministic_ties=True,
                gain=GainConfig(inference_mode="gibbs", entropy_method="exact"),
            ),
            effort=EffortSpec(
                goal=GoalSpec(kind="estimated_precision", threshold=0.8, folds=3),
                budget=17,
                batch_size=2,
                batch_utility_weight=0.5,
                max_skip_attempts=2,
                confirmation_interval=4,
                termination=(
                    TerminationSpec(kind="urr", params={"threshold": 0.05}),
                    TerminationSpec(kind="cng", params={"patience": 2}),
                ),
            ),
            stream=StreamSpec(
                schedule_beta=0.9,
                schedule_scale=0.5,
                meanfield_steps=2,
                prior=0.4,
                online_mstep_iterations=3,
                validation_every=6,
            ),
        )
        restored = SessionSpec.from_json(spec.to_json())
        assert restored == spec
        # Embedded configs survive as typed objects, not dicts.
        assert isinstance(restored.inference.mstep, MStepConfig)
        assert isinstance(restored.guidance.gain, GainConfig)
        assert isinstance(restored.effort.termination[0], TerminationSpec)

    def test_component_specs_round_trip_individually(self):
        for spec in (
            DatasetSpec(name="snopes", seed=1, scale=0.02),
            UserSpec(error_probability=0.3),
            InferenceSpec(engine="reference"),
            GuidanceSpec(strategy="random"),
            GoalSpec(kind="true_precision", threshold=0.75),
            EffortSpec(budget=5),
            StreamSpec(validation_every=3),
            TerminationSpec(kind="pre", params={"patience": 4}),
        ):
            assert type(spec).from_dict(spec.to_dict()) == spec

    def test_nested_mappings_are_coerced(self):
        spec = SessionSpec(
            inference={"engine": "reference", "mstep": {"max_iterations": 3}},
            guidance={"strategy": "source", "gain": {"meanfield_steps": 5}},
            effort={"goal": {"kind": "true_precision"}, "budget": 9},
        )
        assert spec.inference.engine == "reference"
        assert spec.inference.mstep.max_iterations == 3
        assert spec.guidance.gain.meanfield_steps == 5
        assert spec.effort.goal.kind == "true_precision"
        assert spec.effort.budget == 9


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(SpecError):
            SessionSpec(mode="interactive")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SpecError):
            GuidanceSpec(strategy="oracle")

    def test_unknown_engine_rejected(self):
        with pytest.raises(SpecError):
            InferenceSpec(engine="cuda")

    def test_unknown_estep_mode_rejected(self):
        with pytest.raises(SpecError):
            InferenceSpec(estep_mode="variational")

    def test_dataset_needs_exactly_one_source(self):
        with pytest.raises(SpecError):
            DatasetSpec()
        with pytest.raises(SpecError):
            DatasetSpec(name="wiki", path="corpus.json")

    def test_goal_kind_validated(self):
        with pytest.raises(SpecError):
            GoalSpec(kind="recall")

    def test_termination_kind_and_params_validated(self):
        with pytest.raises(SpecError):
            TerminationSpec(kind="entropy")
        with pytest.raises(SpecError):
            TerminationSpec(kind="urr", params={"no_such_param": 1})

    def test_unknown_payload_keys_rejected(self):
        with pytest.raises(SpecError):
            SessionSpec.from_dict({"mode": "batch", "extra": 1})
        with pytest.raises(SpecError):
            InferenceSpec.from_dict({"engines": "numpy"})

    def test_stream_schedule_validated(self):
        with pytest.raises(SpecError):
            StreamSpec(schedule_beta=0.4)
        with pytest.raises(SpecError):
            StreamSpec(prior=1.5)

    def test_user_probabilities_validated(self):
        with pytest.raises(SpecError):
            UserSpec(error_probability=1.5)

    def test_invalid_json_rejected(self):
        with pytest.raises(SpecError):
            SessionSpec.from_json("{not json")
        with pytest.raises(SpecError):
            SessionSpec.from_json("[1, 2]")


class TestFieldPaths:
    """Validation errors name the failing field as a dotted path."""

    @pytest.mark.parametrize(
        "payload, field",
        [
            ({"mode": "bad"}, "mode"),
            ({"inference": {"engine": "cuda"}}, "inference.engine"),
            ({"inference": {"estep_mode": "x"}}, "inference.estep_mode"),
            ({"guidance": {"strategy": "oracle"}}, "guidance.strategy"),
            ({"effort": {"goal": {"kind": "recall"}}}, "effort.goal.kind"),
            ({"effort": {"budget": 0}}, "effort.budget"),
            (
                {"effort": {"termination": [{"kind": "urr"}, {"kind": "bad"}]}},
                "effort.termination[1].kind",
            ),
            (
                {"effort": {"termination": [{"kind": "urr", "params": {"x": 1}}]}},
                "effort.termination[0].params",
            ),
            ({"stream": {"prior": 2}}, "stream.prior"),
            ({"dataset": {"name": "wiki", "scale": -1}}, "dataset.scale"),
            ({"user": {"error_probability": 7}}, "user.error_probability"),
            ({"guidance": {"strategee": "hybrid"}}, "guidance.strategee"),
            ({"bogus_top_level": 1}, "bogus_top_level"),
        ],
    )
    def test_from_json_reports_field_path(self, payload, field):
        import json

        with pytest.raises(SpecError) as excinfo:
            SessionSpec.from_json(json.dumps(payload))
        assert excinfo.value.field == field
        assert str(excinfo.value).startswith(f"{field}: ")

    def test_direct_construction_reports_leaf_field(self):
        with pytest.raises(SpecError) as excinfo:
            InferenceSpec(engine="cuda")
        assert excinfo.value.field == "engine"

    def test_nested_construction_prefixes_path(self):
        with pytest.raises(SpecError) as excinfo:
            SessionSpec(inference={"engine": "cuda"})
        assert excinfo.value.field == "inference.engine"


class TestBuilders:
    def test_goal_spec_builds_each_kind(self):
        assert isinstance(GoalSpec(kind="none").build(), NoGoal)
        assert isinstance(
            GoalSpec(kind="true_precision", threshold=0.8).build(),
            TruePrecisionGoal,
        )
        assert isinstance(
            GoalSpec(kind="estimated_precision").build(), EstimatedPrecisionGoal
        )

    def test_termination_spec_builds_fresh_instances(self):
        spec = TerminationSpec(kind="cng", params={"patience": 2})
        first, second = spec.build(), spec.build()
        assert first is not second
        assert first.patience == 2

    def test_dataset_spec_loads_named_profile(self):
        database = DatasetSpec(name="wiki", seed=42, scale=0.1).load()
        assert database.num_claims > 0

    def test_replace_produces_modified_copy(self):
        spec = SessionSpec(seed=1)
        other = spec.replace(seed=2)
        assert other.seed == 2 and spec.seed == 1
        assert other.inference == spec.inference


class TestStreamSourceSpec:
    def test_requires_a_dataset(self):
        from repro.api import StreamSourceSpec

        with pytest.raises(SpecError, match="dataset"):
            StreamSourceSpec()

    def test_only_posting_order_is_defined(self):
        from repro.api import StreamSourceSpec

        with pytest.raises(SpecError, match="posting"):
            StreamSourceSpec(
                dataset={"name": "wiki", "seed": 1, "scale": 0.1},
                order="shuffled",
            )

    def test_round_trips_and_coerces_nested_dataset(self):
        from repro.api import StreamSourceSpec

        spec = StreamSourceSpec(dataset={"name": "wiki", "seed": 1, "scale": 0.1})
        assert isinstance(spec.dataset, DatasetSpec)
        assert StreamSourceSpec.from_dict(spec.to_dict()) == spec

    def test_stream_spec_with_source_round_trips_through_json(self):
        spec = SessionSpec(
            mode="streaming",
            stream={
                "source": {"dataset": {"name": "health", "seed": 2, "scale": 0.05}}
            },
        )
        restored = SessionSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.stream.source.dataset.name == "health"

    def test_arrivals_replays_the_declared_corpus(self):
        from repro.api import StreamSourceSpec
        from repro.datasets import load_dataset

        spec = StreamSourceSpec(dataset={"name": "wiki", "seed": 3, "scale": 0.05})
        replayed = [a.claim.claim_id for a in spec.arrivals() if a.claim is not None]
        corpus = load_dataset("wiki", seed=3, scale=0.05)
        assert sorted(replayed) == sorted(c.claim_id for c in corpus.claims)
        # A second call starts a fresh iterator, not a drained one.
        assert len(list(spec.arrivals())) == len(list(spec.arrivals()))
