"""Tests for repro.utils: rng handling, timing, argument checks."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.utils.checks import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)
from repro.utils.rng import derive_rng, ensure_rng, spawn_rngs
from repro.utils.timer import Stopwatch, timed


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(5).random(4)
        b = ensure_rng(5).random(4)
        assert np.array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_different_seeds_differ(self):
        assert not np.array_equal(ensure_rng(1).random(4), ensure_rng(2).random(4))


class TestDeriveRng:
    def test_children_are_independent_of_stream(self):
        parent = np.random.default_rng(7)
        child_a = derive_rng(parent, 0)
        parent2 = np.random.default_rng(7)
        child_b = derive_rng(parent2, 0)
        assert np.array_equal(child_a.random(4), child_b.random(4))

    def test_different_streams_differ(self):
        parent = np.random.default_rng(7)
        a = derive_rng(parent, 0).random(4)
        parent = np.random.default_rng(7)
        b = derive_rng(parent, 1).random(4)
        assert not np.array_equal(a, b)

    def test_derivation_advances_parent(self):
        parent = np.random.default_rng(7)
        before = parent.bit_generator.state["state"]["state"]
        derive_rng(parent, 0)
        after = parent.bit_generator.state["state"]["state"]
        assert before != after


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(3, 5)) == 5

    def test_deterministic(self):
        a = [g.random() for g in spawn_rngs(3, 3)]
        b = [g.random() for g in spawn_rngs(3, 3)]
        assert a == b

    def test_children_differ(self):
        values = [g.random() for g in spawn_rngs(3, 4)]
        assert len(set(values)) == 4

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(3, -1)

    def test_zero_count_allowed(self):
        assert spawn_rngs(3, 0) == []


class TestStopwatch:
    def test_measure_records_sample(self):
        watch = Stopwatch()
        with watch.measure("work"):
            pass
        assert watch.count("work") == 1
        assert watch.total("work") >= 0.0

    def test_mean_of_recorded_values(self):
        watch = Stopwatch()
        watch.record("x", 1.0)
        watch.record("x", 3.0)
        assert watch.mean("x") == pytest.approx(2.0)

    def test_mean_of_unknown_label_is_zero(self):
        assert Stopwatch().mean("nothing") == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Stopwatch().record("x", -0.1)

    def test_measure_times_sleep(self):
        watch = Stopwatch()
        with watch.measure("nap"):
            time.sleep(0.01)
        assert watch.total("nap") >= 0.005

    def test_labels_in_insertion_order(self):
        watch = Stopwatch()
        watch.record("b", 1.0)
        watch.record("a", 1.0)
        assert watch.labels() == ["b", "a"]

    def test_samples_returns_copy(self):
        watch = Stopwatch()
        watch.record("x", 1.0)
        samples = watch.samples("x")
        samples.append(99.0)
        assert watch.count("x") == 1


class TestTimed:
    def test_elapsed_filled_in(self):
        with timed() as elapsed:
            time.sleep(0.01)
        assert elapsed[0] >= 0.005


class TestChecks:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_probability_accepts_boundaries(self, value):
        assert check_probability(value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan")])
    def test_probability_rejects(self, value):
        with pytest.raises(ValueError):
            check_probability(value)

    def test_fraction_rejects_zero(self):
        with pytest.raises(ValueError):
            check_fraction(0.0)

    def test_fraction_accepts_one(self):
        assert check_fraction(1.0) == 1.0

    @pytest.mark.parametrize("value", [0.0, -1.0, float("inf")])
    def test_positive_rejects(self, value):
        with pytest.raises(ValueError):
            check_positive(value)

    def test_non_negative_accepts_zero(self):
        assert check_non_negative(0.0) == 0.0

    def test_non_negative_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-1e-9)

    def test_positive_int_rejects_bool(self):
        with pytest.raises(ValueError):
            check_positive_int(True)

    def test_positive_int_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0)

    def test_positive_int_accepts(self):
        assert check_positive_int(3) == 3

    def test_error_message_includes_name(self):
        with pytest.raises(ValueError, match="threshold"):
            check_probability(2.0, "threshold")
