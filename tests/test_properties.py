"""Property-based tests (hypothesis) of core invariants.

Covers: entropy bounds and symmetry, grounding algebra, correlation
bounds and antisymmetry, TRON optimality conditions, the hybrid score's
monotonicity, the cost model, and the submodularity of the batch utility.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.crf.entropy import approximate_entropy, binary_entropy
from repro.data.grounding import Grounding
from repro.effort.batching import batch_utility
from repro.effort.cost import cost_saving
from repro.guidance.hybrid_score import hybrid_score
from repro.inference.tron import WeightedLogisticLoss, tron_minimize
from repro.metrics.correlation import kendall_tau_b, pearson_correlation

probabilities = arrays(
    float,
    st.integers(1, 30),
    elements=st.floats(0.0, 1.0, allow_nan=False),
)


class TestEntropyProperties:
    @given(probabilities)
    def test_entropy_non_negative_and_bounded(self, probs):
        total = approximate_entropy(probs)
        assert 0.0 <= total <= probs.size * math.log(2) + 1e-9

    @given(probabilities)
    def test_entropy_symmetric_under_complement(self, probs):
        assert approximate_entropy(probs) == pytest.approx(
            approximate_entropy(1.0 - probs), abs=1e-9
        )

    @given(st.floats(0.0, 0.5, allow_nan=False))
    def test_binary_entropy_monotone_towards_half(self, p):
        q = min(p + 0.1, 0.5)
        assert binary_entropy(np.asarray([q]))[0] >= binary_entropy(
            np.asarray([p])
        )[0] - 1e-12


class TestGroundingProperties:
    binary_vectors = arrays(
        np.int8, st.integers(1, 40), elements=st.integers(0, 1)
    )

    @given(binary_vectors, binary_vectors)
    def test_differences_symmetric(self, a, b):
        if a.size != b.size:
            return
        ga, gb = Grounding(a), Grounding(b)
        assert ga.differences(gb) == gb.differences(ga)

    @given(binary_vectors)
    def test_self_precision_is_one(self, values):
        grounding = Grounding(values)
        assert grounding.precision(values) == 1.0

    @given(binary_vectors)
    def test_complement_precision_is_zero(self, values):
        grounding = Grounding(values)
        assert grounding.precision(1 - values) == 0.0

    @given(binary_vectors, binary_vectors)
    def test_precision_complements_differences(self, a, b):
        if a.size != b.size:
            return
        grounding = Grounding(a)
        assert grounding.precision(b) == pytest.approx(
            1.0 - grounding.differences(Grounding(b)) / a.size
        )


class TestCorrelationProperties:
    vectors = arrays(
        float,
        st.integers(3, 25),
        elements=st.floats(-100, 100, allow_nan=False),
    )

    @given(vectors)
    def test_pearson_self_correlation(self, x):
        if np.std(x) == 0:
            assert pearson_correlation(x, x) == 0.0
        else:
            assert pearson_correlation(x, x) == pytest.approx(1.0)

    @given(vectors, vectors)
    def test_pearson_bounded(self, x, y):
        if x.size != y.size:
            return
        assert -1.0 - 1e-9 <= pearson_correlation(x, y) <= 1.0 + 1e-9

    @given(vectors, vectors)
    def test_kendall_antisymmetric_under_negation(self, x, y):
        if x.size != y.size:
            return
        assert kendall_tau_b(x, -np.asarray(y)) == pytest.approx(
            -kendall_tau_b(x, y), abs=1e-9
        )

    @given(vectors, vectors)
    def test_kendall_symmetric_in_arguments(self, x, y):
        if x.size != y.size:
            return
        assert kendall_tau_b(x, y) == pytest.approx(
            kendall_tau_b(y, x), abs=1e-9
        )


class TestHybridScoreProperties:
    unit = st.floats(0.0, 1.0, allow_nan=False)

    @given(unit, unit, unit)
    def test_bounded(self, error, ratio, h):
        assert 0.0 <= hybrid_score(error, ratio, h) < 1.0

    @given(unit, unit)
    def test_monotone_in_error_early(self, a, b):
        low, high = min(a, b), max(a, b)
        assert hybrid_score(high, 0.5, 0.0) >= hybrid_score(low, 0.5, 0.0)

    @given(unit, unit)
    def test_monotone_in_ratio_late(self, a, b):
        low, high = min(a, b), max(a, b)
        assert hybrid_score(0.5, high, 1.0) >= hybrid_score(0.5, low, 1.0)


class TestCostModelProperties:
    @given(st.integers(1, 100), st.floats(0.05, 3.0, allow_nan=False))
    def test_cost_saving_in_unit_interval(self, k, alpha):
        assert 0.0 <= cost_saving(k, alpha) < 1.0

    @given(st.integers(1, 50), st.floats(0.05, 3.0, allow_nan=False))
    def test_cost_saving_monotone_in_k(self, k, alpha):
        assert cost_saving(k + 1, alpha) >= cost_saving(k, alpha)


class TestTronProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_gradient_small_at_solution(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(30, 2))
        targets = (rng.random(30) > 0.5).astype(float)
        loss = WeightedLogisticLoss(x, targets, np.ones(30), 1.0)
        result = tron_minimize(loss, gradient_tolerance=1e-5)
        initial_norm = np.linalg.norm(loss.gradient(np.zeros(2)))
        assert result.gradient_norm <= 1e-5 * initial_norm + 1e-8

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_objective_not_worse_than_origin(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(20, 3))
        targets = (rng.random(20) > 0.5).astype(float)
        loss = WeightedLogisticLoss(x, targets, np.ones(20), 1.0)
        result = tron_minimize(loss)
        assert result.objective <= loss.value(np.zeros(3)) + 1e-9


class TestBatchUtilityProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 10_000))
    def test_submodularity_of_marginal_gains(self, seed):
        """F(A+c) - F(A) >= F(B+c) - F(B) for A ⊆ B, c ∉ B."""
        rng = np.random.default_rng(seed)
        n = 6
        gains = rng.random(n)
        raw = rng.random((n, n))
        correlation = (raw + raw.T) / 2
        np.fill_diagonal(correlation, 1.0)
        correlation /= correlation.max()
        w = 1.0

        small = [0]
        big = [0, 1, 2]
        candidate = 4

        def marginal(members):
            with_c = batch_utility(gains, correlation, members + [candidate], w)
            without = batch_utility(gains, correlation, members, w)
            return with_c - without

        assert marginal(small) >= marginal(big) - 1e-9
