"""Tests for validation-trace summaries."""

from __future__ import annotations

import pytest

from repro.datasets import load_dataset
from repro.guidance import make_strategy
from repro.validation import (
    SimulatedUser,
    ValidationProcess,
    format_summary,
    summarize_trace,
)
from repro.validation.session import ValidationTrace


def run_small_process():
    db = load_dataset("wiki", seed=3, scale=0.1)
    process = ValidationProcess(
        db,
        strategy=make_strategy("hybrid"),
        user=SimulatedUser(seed=3),
        seed=3,
    )
    return process.run(max_iterations=5), process


class TestSummarizeTrace:
    def test_counts_match_trace(self):
        trace, process = run_small_process()
        summary = summarize_trace(trace)
        assert summary.iterations == trace.iterations
        assert summary.validations == trace.total_validations()
        assert summary.effort == pytest.approx(
            trace.total_validations() / trace.num_claims
        )

    def test_precisions_reported(self):
        trace, process = run_small_process()
        summary = summarize_trace(trace)
        assert summary.initial_precision is not None
        assert summary.final_precision is not None
        assert 0.0 <= summary.final_precision <= 1.0

    def test_strategy_mix_counts_iterations(self):
        trace, _ = run_small_process()
        summary = summarize_trace(trace)
        assert sum(summary.strategy_mix.values()) == trace.iterations
        assert set(summary.strategy_mix) <= {"info", "source", "hybrid"}

    def test_empty_trace(self):
        trace = ValidationTrace(
            num_claims=10, initial_precision=0.5, initial_entropy=2.0
        )
        summary = summarize_trace(trace)
        assert summary.iterations == 0
        assert summary.final_precision is None
        assert summary.entropy_drop == 0.0

    def test_entropy_drop_in_range(self):
        trace, _ = run_small_process()
        summary = summarize_trace(trace)
        assert -1.0 <= summary.entropy_drop <= 1.0


class TestFormatSummary:
    def test_contains_key_fields(self):
        trace, _ = run_small_process()
        text = format_summary(summarize_trace(trace))
        assert "stop reason" in text
        assert "effort" in text
        assert "final precision" in text

    def test_formats_empty_trace(self):
        trace = ValidationTrace(
            num_claims=10, initial_precision=None, initial_entropy=0.0
        )
        text = format_summary(summarize_trace(trace))
        assert "iterations           0" in text
