"""Tests for the CRF substrate: weights, potentials, energy model (§3.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crf.model import CrfModel
from repro.crf.potentials import (
    AGGREGATION_MODES,
    CliqueFeaturizer,
    clique_feature_names,
    log_sigmoid,
    sigmoid,
)
from repro.crf.weights import CrfWeights
from repro.errors import InferenceError

from tests.fixtures import build_micro_database


def micro_model(coupling=1.0, aggregation="sqrt", coupling_enabled=True):
    db = build_micro_database()
    weights = CrfWeights.zeros(2, 2, coupling=coupling)
    weights.values[0] = 1.0  # bias
    return CrfModel(db, weights=weights, aggregation=aggregation,
                    coupling_enabled=coupling_enabled), db


class TestWeights:
    def test_layout(self):
        w = CrfWeights(np.asarray([0.5, 1.0, 2.0, 3.0]))
        assert w.bias == 0.5
        assert w.coupling == 3.0
        assert w.feature_weights.tolist() == [0.5, 1.0, 2.0]

    def test_zeros_factory(self):
        w = CrfWeights.zeros(2, 3, coupling=0.7)
        assert w.size == 2 + 2 + 3
        assert w.coupling == 0.7
        assert w.bias == 0.0

    def test_copy_is_independent(self):
        w = CrfWeights.zeros(1, 1)
        c = w.copy()
        c.values[0] = 5.0
        assert w.values[0] == 0.0

    def test_distance(self):
        a = CrfWeights(np.asarray([0.0, 0.0]))
        b = CrfWeights(np.asarray([3.0, 4.0]))
        assert a.distance(b) == pytest.approx(5.0)

    def test_distance_size_mismatch(self):
        with pytest.raises(InferenceError):
            CrfWeights(np.zeros(2)).distance(CrfWeights(np.zeros(3)))

    def test_nan_rejected(self):
        with pytest.raises(InferenceError):
            CrfWeights(np.asarray([0.0, float("nan")]))

    def test_too_short_rejected(self):
        with pytest.raises(InferenceError):
            CrfWeights(np.asarray([1.0]))


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.asarray(0.0)) == pytest.approx(0.5)

    def test_extremes_are_stable(self):
        values = sigmoid(np.asarray([-1000.0, 1000.0]))
        assert values[0] == pytest.approx(0.0, abs=1e-12)
        assert values[1] == pytest.approx(1.0, abs=1e-12)

    def test_symmetry(self):
        x = np.linspace(-5, 5, 11)
        assert np.allclose(sigmoid(x) + sigmoid(-x), 1.0)

    def test_log_sigmoid_matches_log_of_sigmoid(self):
        x = np.linspace(-10, 10, 21)
        assert np.allclose(log_sigmoid(x), np.log(sigmoid(x)), atol=1e-12)

    def test_log_sigmoid_no_overflow(self):
        assert np.isfinite(log_sigmoid(np.asarray([-1e6])))


class TestCliqueFeaturizer:
    def test_feature_dim(self, micro_db):
        feat = CliqueFeaturizer(micro_db)
        assert feat.feature_dim == 1 + 2 + 2  # bias + doc + src

    def test_invalid_aggregation(self, micro_db):
        with pytest.raises(InferenceError):
            CliqueFeaturizer(micro_db, aggregation="max")

    def test_stance_flips_feature_sign(self, micro_db):
        feat = CliqueFeaturizer(micro_db)
        for idx, clique in enumerate(micro_db.cliques):
            # Bias column is 1 * stance sign.
            assert feat.signed_features[idx, 0] == clique.stance_sign

    def test_cliques_of_claim_matches_database(self, micro_db):
        feat = CliqueFeaturizer(micro_db)
        for claim in range(micro_db.num_claims):
            via_feat = sorted(int(i) for i in feat.cliques_of_claim(claim))
            via_db = sorted(micro_db.cliques_of_claim(claim))
            assert via_feat == via_db

    @pytest.mark.parametrize("mode", AGGREGATION_MODES)
    def test_local_fields_scaling(self, micro_db, mode):
        feat = CliqueFeaturizer(micro_db, aggregation=mode)
        weights = np.zeros(feat.feature_dim)
        weights[0] = 1.0  # only bias: evidence = sum of stance signs
        fields = feat.local_fields(weights)
        # c1: support + refute = 0 net evidence regardless of scaling.
        assert fields[0] == pytest.approx(0.0)
        # c3 has one supporting clique: evidence 1 under all modes.
        assert fields[2] == pytest.approx(1.0)

    def test_sum_vs_mean_scaling(self, micro_db):
        weights = np.zeros(5)
        weights[0] = 1.0
        sum_fields = CliqueFeaturizer(micro_db, "sum").local_fields(weights)
        mean_fields = CliqueFeaturizer(micro_db, "mean").local_fields(weights)
        # c2: one refute (s1) + one support (s2) -> sum 0, mean 0.
        assert sum_fields[1] == pytest.approx(0.0)
        assert mean_fields[1] == pytest.approx(0.0)

    def test_design_matrix_consistent_with_local_fields(self, micro_db):
        feat = CliqueFeaturizer(micro_db)
        weights = np.asarray([0.3, -0.2, 0.5, 0.1, -0.4])
        design = feat.claim_design_matrix()
        assert np.allclose(design @ weights, feat.local_fields(weights))

    def test_wrong_weight_size_rejected(self, micro_db):
        feat = CliqueFeaturizer(micro_db)
        with pytest.raises(InferenceError):
            feat.local_fields(np.zeros(3))

    def test_feature_names(self, micro_db):
        names = clique_feature_names(micro_db)
        assert names[0] == "bias"
        assert len(names) == 5


class TestCrfModel:
    def test_weight_size_validation(self, micro_db):
        with pytest.raises(InferenceError):
            CrfModel(micro_db, weights=CrfWeights(np.zeros(3)))

    def test_pair_table_collapses_cliques(self):
        model, db = micro_model()
        # 5 cliques but (claim, source) pairs: c1-s1, c1-s2, c2-s1, c2-s2,
        # c3-s1 -> 5 pairs here (no duplicate pairs in micro corpus).
        assert model.pair_claim.size == 5

    def test_source_statistics_alignment(self):
        model, db = micro_model()
        # All claims credible: spins +1.
        spins = np.ones(3)
        stats = model.source_statistics(spins)
        s1, s2 = db.source_position("s1"), db.source_position("s2")
        # s1: +1 (c1 support) -1 (c2 refute) +1 (c3 support) = 1
        assert stats[s1] == pytest.approx(1.0)
        # s2: +1 (c2 support) -1 (c1 refute) = 0
        assert stats[s2] == pytest.approx(0.0)

    def test_source_statistics_ground_truth_config(self):
        model, db = micro_model()
        truth_spins = np.asarray([1.0, -1.0, 1.0])  # c1 true, c2 false, c3 true
        stats = model.source_statistics(truth_spins)
        s1, s2 = db.source_position("s1"), db.source_position("s2")
        # s1 is consistently right: +1 +1 +1 = 3; s2 consistently wrong: -2.
        assert stats[s1] == pytest.approx(3.0)
        assert stats[s2] == pytest.approx(-2.0)

    def test_conditional_logit_rewards_consistency(self):
        model, db = micro_model(coupling=1.0)
        # Under the ground-truth configuration, flipping c3 should be
        # discouraged: its conditional logit must be positive (credible).
        spins = np.asarray([1.0, -1.0, 1.0])
        stats = model.source_statistics(spins)
        c3 = db.claim_position("c3")
        logit = model.conditional_logit(c3, spins, stats)
        assert logit > 0

    def test_coupling_disabled_drops_interaction(self):
        model, db = micro_model(coupling=1.0, coupling_enabled=False)
        spins = np.asarray([1.0, -1.0, 1.0])
        stats = model.source_statistics(spins)
        c3 = db.claim_position("c3")
        assert model.conditional_logit(c3, spins, stats) == pytest.approx(
            model.local_fields[c3]
        )

    def test_trust_signals_zero_at_max_entropy(self):
        model, db = micro_model()
        # All marginals 0.5 -> expected spins 0 -> no signal.
        signals = model.trust_signals(np.full(3, 0.5))
        assert np.allclose(signals, 0.0)

    def test_trust_signals_push_towards_truth(self):
        model, db = micro_model()
        # Marginals near truth: signal for c3 should be positive (s1 is
        # consistent), for c2 negative.
        signals = model.trust_signals(np.asarray([0.95, 0.05, 0.5]))
        assert signals[db.claim_position("c3")] > 0
        assert signals[db.claim_position("c2")] < 0

    def test_conditional_logit_matches_joint_difference(self):
        """The Gibbs conditional must equal the joint log-potential gap."""
        model, db = micro_model(coupling=0.8)
        rng = np.random.default_rng(0)
        for _ in range(10):
            config = rng.integers(0, 2, size=3).astype(np.int8)
            claim = int(rng.integers(0, 3))
            up = config.copy()
            up[claim] = 1
            down = config.copy()
            down[claim] = 0
            gap = model.joint_log_potential(up) - model.joint_log_potential(down)
            spins = 2.0 * config.astype(float) - 1.0
            stats = model.source_statistics(spins)
            logit = model.conditional_logit(claim, spins, stats)
            assert logit == pytest.approx(gap, abs=1e-9)

    def test_joint_log_potential_shape_check(self):
        model, db = micro_model()
        with pytest.raises(InferenceError):
            model.joint_log_potential(np.asarray([1, 0]))

    def test_set_weights_refreshes_local_fields(self):
        model, db = micro_model()
        before = model.local_fields.copy()
        new_weights = model.weights.copy()
        new_weights.values[0] = 5.0
        model.set_weights(new_weights)
        assert not np.allclose(before, model.local_fields)

    def test_mean_field_probabilities_bounded(self):
        model, db = micro_model()
        probs = model.mean_field_probabilities(np.full(3, 0.5))
        assert np.all((probs >= 0) & (probs <= 1))
