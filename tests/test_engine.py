"""Property-based tests of the vectorised inference engine.

The central contract is *exact equivalence*: the ``numpy`` backend must
reproduce the ``reference`` backend's Gibbs chains and M-step designs
bit-for-bit on arbitrary models, because both implement the same
sequential-scan semantics over the same pre-drawn random stream.  On top
of that, the classic sampler invariants are checked on random corpora:
pinned labels never flip, marginals stay in [0, 1], and the vectorised
potential computations agree with naive scalar re-implementations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crf.gibbs import GibbsSampler
from repro.crf.model import CrfModel
from repro.crf.weights import CrfWeights
from repro.errors import InferenceError
from repro.inference.engine import (
    ENGINE_BACKENDS,
    EngineConfig,
    NumpyEngine,
    ReferenceEngine,
    create_engine,
)
from repro.inference.icrf import ICrf
from repro.inference.mstep import MStepConfig
from tests.fixtures import build_micro_database, random_databases


def random_weights(database, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    size = 2 + database.document_features.shape[1] + database.source_features.shape[1]
    return CrfWeights(scale * rng.normal(size=size))


def apply_random_labels(database, seed):
    rng = np.random.default_rng(seed)
    count = int(rng.integers(0, database.num_claims))
    for claim in rng.choice(database.num_claims, size=count, replace=False):
        database.label(int(claim), int(rng.integers(0, 2)))


class TestEngineConfig:
    def test_default_backend_is_numpy(self):
        db = build_micro_database()
        engine = create_engine(CrfModel(db))
        assert engine.name == "numpy"

    def test_backend_selection_by_name_and_config(self):
        db = build_micro_database()
        model = CrfModel(db)
        assert create_engine(model, "reference").name == "reference"
        assert create_engine(model, EngineConfig("numpy")).name == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(InferenceError):
            EngineConfig(backend="cuda")

    def test_engines_memoised_per_model(self):
        db = build_micro_database()
        model = CrfModel(db)
        assert create_engine(model, "numpy") is create_engine(model, "numpy")
        other = CrfModel(build_micro_database())
        assert create_engine(model, "numpy") is not create_engine(other, "numpy")

    def test_registry_lists_both_backends(self):
        assert set(ENGINE_BACKENDS) >= {"numpy", "reference"}

    def test_sampler_rejects_foreign_engine(self):
        model_a = CrfModel(build_micro_database())
        model_b = CrfModel(build_micro_database())
        engine_b = create_engine(model_b)
        with pytest.raises(InferenceError):
            GibbsSampler(model_a, engine=engine_b)


class TestBackendEquivalence:
    """numpy backend == reference backend, bit for bit."""

    @settings(max_examples=40, deadline=None)
    @given(random_databases(), st.integers(0, 10_000))
    def test_sampler_chains_identical(self, database, seed):
        apply_random_labels(database, seed)
        weights = random_weights(database, seed)
        model_ref = CrfModel(database, weights=weights)
        model_np = CrfModel(database, weights=weights)
        ref = GibbsSampler(
            model_ref, burn_in=3, num_samples=8, seed=seed,
            engine=ReferenceEngine(model_ref),
        )
        vec = GibbsSampler(
            model_np, burn_in=3, num_samples=8, seed=seed,
            engine=NumpyEngine(model_np),
        )
        result_ref = ref.sample()
        result_vec = vec.sample()
        assert np.array_equal(result_ref.marginals, result_vec.marginals)
        assert np.array_equal(
            result_ref.mode_configuration, result_vec.mode_configuration
        )
        assert result_ref.configuration_counts == result_vec.configuration_counts
        assert np.array_equal(ref.state, vec.state)
        # Warm-started second pass stays in lockstep too.
        second_ref = ref.sample()
        second_vec = vec.sample()
        assert np.array_equal(second_ref.marginals, second_vec.marginals)

    @settings(max_examples=40, deadline=None)
    @given(random_databases(), st.integers(0, 10_000))
    def test_mstep_assembly_identical(self, database, seed):
        apply_random_labels(database, seed)
        model = CrfModel(database, weights=random_weights(database, seed))
        marginals = np.random.default_rng(seed).random(database.num_claims)
        label_idx, label_val = database.label_arrays()
        marginals[label_idx] = label_val
        config = MStepConfig()
        ref = ReferenceEngine(model).assemble_mstep(marginals, config)
        vec = NumpyEngine(model).assemble_mstep(marginals, config)
        if ref is None:
            assert vec is None
            return
        for reference_part, vector_part in zip(ref, vec):
            assert np.array_equal(reference_part, vector_part)

    @settings(max_examples=15, deadline=None)
    @given(random_databases(), st.integers(0, 1000))
    def test_full_icrf_em_identical(self, database, seed):
        apply_random_labels(database, seed)
        state = database.clone_state()
        ref = ICrf(database, em_iterations=2, num_samples=6,
                   engine="reference", seed=seed)
        result_ref = ref.infer()
        marginals_ref = result_ref.marginals.copy()
        weights_ref = result_ref.weights.values.copy()
        grounding_ref = result_ref.grounding.values.copy()
        database.restore_state(state)
        vec = ICrf(database, em_iterations=2, num_samples=6,
                   engine="numpy", seed=seed)
        result_vec = vec.infer()
        assert np.array_equal(marginals_ref, result_vec.marginals)
        assert np.array_equal(weights_ref, result_vec.weights.values)
        assert np.array_equal(grounding_ref, result_vec.grounding.values)


class TestSamplerInvariants:
    @settings(max_examples=25, deadline=None)
    @given(random_databases(), st.integers(0, 10_000))
    def test_pinned_labels_never_flip(self, database, seed):
        apply_random_labels(database, seed)
        model = CrfModel(database, weights=random_weights(database, seed))
        sampler = GibbsSampler(model, burn_in=2, num_samples=6, seed=seed)
        result = sampler.sample()
        state = sampler.state
        for claim, label in database.labels.items():
            assert result.marginals[claim] == float(label)
            assert result.mode_configuration[claim] == label
            assert state[claim] == label
            for packed in result.configuration_counts:
                sample = np.frombuffer(packed, dtype=np.int8)
                assert sample[claim] == label

    @settings(max_examples=25, deadline=None)
    @given(random_databases(), st.integers(0, 10_000))
    def test_marginals_in_unit_interval(self, database, seed):
        apply_random_labels(database, seed)
        model = CrfModel(database, weights=random_weights(database, seed))
        sampler = GibbsSampler(model, burn_in=2, num_samples=6, seed=seed)
        result = sampler.sample()
        assert np.all(result.marginals >= 0.0)
        assert np.all(result.marginals <= 1.0)

    @settings(max_examples=20, deadline=None)
    @given(random_databases(), st.integers(0, 10_000))
    def test_stats_stay_consistent_with_spins(self, database, seed):
        """A_s must equal its definition after any number of sweeps."""
        model = CrfModel(database, weights=random_weights(database, seed))
        engine = NumpyEngine(model)
        rng = np.random.default_rng(seed)
        spins = np.where(rng.random(database.num_claims) < 0.5, 1.0, -1.0)
        stats = model.source_statistics(spins)
        free = database.unlabelled_indices
        for _ in range(3):
            engine.sweep(free, spins, stats, rng)
        assert np.array_equal(stats, model.source_statistics(spins))


class TestVectorisedPotentials:
    """Vectorised potential computations vs naive scalar references."""

    @settings(max_examples=25, deadline=None)
    @given(random_databases(), st.integers(0, 1000))
    def test_local_fields_match_scalar_sum(self, database, seed):
        weights = random_weights(database, seed)
        model = CrfModel(database, weights=weights)
        featurizer = model.featurizer
        scale = featurizer.aggregation_scale()
        expected = np.zeros(database.num_claims)
        for claim in range(database.num_claims):
            total = 0.0
            for clique_idx in featurizer.cliques_of_claim(claim):
                total += float(
                    featurizer.signed_features[clique_idx]
                    @ weights.feature_weights
                )
            expected[claim] = total * scale[claim]
        assert np.allclose(model.local_fields, expected, atol=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(random_databases(), st.integers(0, 1000))
    def test_design_matrix_matches_scalar_aggregation(self, database, seed):
        model = CrfModel(database, weights=random_weights(database, seed))
        featurizer = model.featurizer
        scale = featurizer.aggregation_scale()
        matrix = featurizer.claim_design_matrix()
        for claim in range(database.num_claims):
            expected = np.zeros(featurizer.feature_dim)
            for clique_idx in featurizer.cliques_of_claim(claim):
                expected += featurizer.signed_features[clique_idx]
            assert np.allclose(
                matrix[claim], expected * scale[claim], atol=1e-10
            )

    @settings(max_examples=25, deadline=None)
    @given(random_databases(), st.integers(0, 1000))
    def test_trust_signals_match_scalar_sum(self, database, seed):
        model = CrfModel(database, weights=random_weights(database, seed))
        rng = np.random.default_rng(seed)
        probabilities = rng.random(database.num_claims)
        signals = model.trust_signals(probabilities)
        spins = 2.0 * probabilities - 1.0
        stats = model.source_statistics(spins)
        for claim in range(database.num_claims):
            expected = 0.0
            for row in model.pairs_of_claim(claim):
                source = model.pair_source[row]
                stance = model.pair_stance[row]
                excluded = stats[source] - stance * spins[claim]
                denom = max(model.source_clique_count[source], 1.0)
                expected += 2.0 * stance * excluded / denom
            assert signals[claim] == pytest.approx(expected, abs=1e-10)
