"""Tests for iCRF incremental EM, M-step, and grounding decisions (§3.2-3.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crf.gibbs import GibbsResult
from repro.errors import InferenceError
from repro.inference.decide import decide_grounding, threshold_grounding
from repro.inference.icrf import ICrf
from repro.inference.mstep import MStepConfig, build_design_matrix, run_m_step

from tests.fixtures import build_micro_database


class TestMStep:
    def test_config_validation(self):
        with pytest.raises(InferenceError):
            MStepConfig(regularization=0.0)
        with pytest.raises(InferenceError):
            MStepConfig(labelled_weight=0.0)
        with pytest.raises(InferenceError):
            MStepConfig(max_iterations=0)

    def test_design_matrix_shape(self):
        db = build_micro_database()
        icrf = ICrf(db, seed=0)
        design = build_design_matrix(icrf.model, np.asarray(db.probabilities))
        assert design.shape == (3, icrf.model.featurizer.feature_dim + 1)

    def test_design_last_column_is_trust_signal(self):
        db = build_micro_database()
        icrf = ICrf(db, seed=0)
        marginals = np.asarray([0.9, 0.1, 0.6])
        design = build_design_matrix(icrf.model, marginals)
        assert np.allclose(
            design[:, -1], icrf.model.trust_signals(marginals)
        )

    def test_mstep_learns_positive_bias_from_positive_labels(self):
        db = build_micro_database()
        icrf = ICrf(db, initial_bias=0.0, seed=0)
        # Label everything with the truth; evidence aligns with stances.
        truth = db.truth_vector()
        for claim in range(3):
            db.label(claim, int(truth[claim]))
        marginals = np.asarray(db.probabilities)
        run_m_step(icrf.model, marginals)
        # Stance-signed evidence agrees with the labels -> positive bias.
        assert icrf.model.weights.bias > 0

    def test_mstep_updates_model_in_place(self):
        db = build_micro_database()
        icrf = ICrf(db, seed=0)
        before = icrf.model.weights.values.copy()
        db.label(0, 1)
        run_m_step(icrf.model, np.asarray(db.probabilities))
        assert not np.allclose(before, icrf.model.weights.values)

    def test_marginal_shape_validated(self):
        db = build_micro_database()
        icrf = ICrf(db, seed=0)
        with pytest.raises(InferenceError):
            run_m_step(icrf.model, np.asarray([0.5, 0.5]))


class TestICrf:
    def test_construction_validation(self):
        db = build_micro_database()
        with pytest.raises(InferenceError):
            ICrf(db, em_iterations=0)
        with pytest.raises(InferenceError):
            ICrf(db, em_tolerance=-1.0)

    def test_infer_updates_database_probabilities(self):
        db = build_micro_database()
        icrf = ICrf(db, seed=0)
        before = np.asarray(db.probabilities).copy()
        result = icrf.infer()
        assert not np.allclose(before, db.probabilities)
        assert np.allclose(result.marginals, db.probabilities)

    def test_infer_returns_grounding_consistent_with_labels(self):
        db = build_micro_database()
        icrf = ICrf(db, seed=0)
        db.label(0, 0)
        result = icrf.infer()
        assert result.grounding[0] == 0

    def test_unsupervised_inference_beats_chance(self):
        """Cold-start EM should recover most truth from structure alone."""
        from repro.datasets import load_dataset

        db = load_dataset("wiki", seed=42, scale=0.15)
        icrf = ICrf(db, seed=1)
        result = icrf.infer()
        precision = result.grounding.precision(db.truth_vector())
        majority = max(db.truth_vector().mean(), 1 - db.truth_vector().mean())
        assert precision >= majority - 0.1

    def test_labels_improve_precision_on_average(self):
        from repro.datasets import load_dataset

        db = load_dataset("wiki", seed=7, scale=0.15)
        truth = db.truth_vector()
        icrf = ICrf(db, seed=1)
        base = icrf.infer().grounding.precision(truth)
        rng = np.random.default_rng(0)
        chosen = rng.choice(db.num_claims, size=db.num_claims // 2, replace=False)
        for claim in chosen:
            db.label(int(claim), int(truth[claim]))
        after = icrf.infer().grounding.precision(truth)
        assert after >= base

    def test_em_iteration_budget(self):
        db = build_micro_database()
        icrf = ICrf(db, em_iterations=2, em_tolerance=0.0, seed=0)
        result = icrf.infer()
        assert result.em_iterations <= 2
        assert len(result.marginal_deltas) == result.em_iterations

    def test_infer_rejects_bad_budget(self):
        db = build_micro_database()
        icrf = ICrf(db, seed=0)
        with pytest.raises(InferenceError):
            icrf.infer(em_iterations=0)

    def test_update_weights_false_freezes_model(self):
        db = build_micro_database()
        icrf = ICrf(db, seed=0)
        before = icrf.weights.values.copy()
        icrf.infer(update_weights=False)
        assert np.allclose(before, icrf.weights.values)

    def test_set_weights_roundtrip(self):
        db = build_micro_database()
        icrf = ICrf(db, seed=0)
        new = icrf.weights.copy()
        new.values[:] = 0.25
        icrf.set_weights(new)
        assert np.allclose(icrf.weights.values, 0.25)

    def test_last_gibbs_exposed(self):
        db = build_micro_database()
        icrf = ICrf(db, seed=0)
        assert icrf.last_gibbs is None
        icrf.infer()
        assert icrf.last_gibbs is not None

    def test_reset_chain(self):
        db = build_micro_database()
        icrf = ICrf(db, seed=0)
        icrf.infer()
        icrf.reset_chain()
        assert icrf.sampler.state is None


class TestDecide:
    def test_decide_prefers_mode_configuration(self, micro_db):
        result = GibbsResult(
            marginals=np.asarray([0.6, 0.4, 0.9]),
            mode_configuration=np.asarray([0, 1, 1], dtype=np.int8),
            num_samples=10,
            configuration_counts={},
        )
        grounding = decide_grounding(micro_db, result)
        assert list(grounding) == [0, 1, 1]

    def test_decide_overrides_with_labels(self, micro_db):
        micro_db.label(0, 1)
        result = GibbsResult(
            marginals=np.asarray([1.0, 0.4, 0.9]),
            mode_configuration=np.asarray([0, 1, 1], dtype=np.int8),
            num_samples=10,
            configuration_counts={},
        )
        grounding = decide_grounding(micro_db, result)
        assert grounding[0] == 1

    def test_decide_shape_check(self, micro_db):
        result = GibbsResult(
            marginals=np.asarray([0.5]),
            mode_configuration=np.asarray([1], dtype=np.int8),
            num_samples=1,
            configuration_counts={},
        )
        with pytest.raises(InferenceError):
            decide_grounding(micro_db, result)

    def test_threshold_grounding(self, micro_db):
        micro_db.set_probabilities(np.asarray([0.9, 0.2, 0.5]))
        grounding = threshold_grounding(micro_db)
        assert list(grounding) == [1, 0, 1]

    def test_threshold_grounding_respects_labels(self, micro_db):
        micro_db.set_probabilities(np.asarray([0.9, 0.2, 0.5]))
        micro_db.label(0, 0)
        grounding = threshold_grounding(micro_db)
        assert grounding[0] == 0
