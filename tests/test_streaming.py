"""Tests for streaming fact checking (§7): stream, schedule, online EM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.errors import StreamingError
from repro.streaming.process import StreamingFactChecker
from repro.streaming.schedule import RobbinsMonroSchedule
from repro.streaming.stream import stream_from_database


class TestSchedule:
    def test_first_step_is_scale_capped(self):
        assert RobbinsMonroSchedule(beta=0.7, scale=1.0).step_size(1) == 1.0
        assert RobbinsMonroSchedule(beta=0.7, scale=2.0).step_size(1) == 1.0

    def test_decreasing(self):
        schedule = RobbinsMonroSchedule(beta=0.7)
        steps = [schedule.step_size(t) for t in range(1, 20)]
        assert steps == sorted(steps, reverse=True)

    def test_robbins_monro_beta_bounds(self):
        with pytest.raises(StreamingError):
            RobbinsMonroSchedule(beta=0.5)
        with pytest.raises(StreamingError):
            RobbinsMonroSchedule(beta=1.1)

    def test_invalid_scale(self):
        with pytest.raises(StreamingError):
            RobbinsMonroSchedule(scale=0.0)

    def test_invalid_t(self):
        with pytest.raises(StreamingError):
            RobbinsMonroSchedule().step_size(0)

    def test_closed_form(self):
        schedule = RobbinsMonroSchedule(beta=0.8, scale=0.5)
        assert schedule.step_size(16) == pytest.approx(0.5 / 16**0.8)


class TestStream:
    def test_every_claim_arrives_exactly_once(self, micro_db):
        arrivals = list(stream_from_database(micro_db))
        claim_ids = [a.claim.claim_id for a in arrivals if a.claim is not None]
        assert sorted(claim_ids) == ["c1", "c2", "c3"]

    def test_documents_delivered_once(self, micro_db):
        arrivals = list(stream_from_database(micro_db))
        doc_ids = [d.document_id for a in arrivals for d in a.documents]
        assert sorted(doc_ids) == ["d1", "d2", "d3", "d4"]

    def test_sources_delivered_before_their_documents(self, micro_db):
        seen_sources = set()
        for arrival in stream_from_database(micro_db):
            for source in arrival.sources:
                seen_sources.add(source.source_id)
            for document in arrival.documents:
                assert document.source_id in seen_sources

    def test_posting_order(self, micro_db):
        arrivals = list(stream_from_database(micro_db))
        # d1 references c1 and c2 -> both arrive before c3 (first in d2).
        order = [a.claim.claim_id for a in arrivals if a.claim is not None]
        assert order.index("c1") < order.index("c3")
        assert order.index("c2") < order.index("c3")

    def test_orphan_claims_emitted_last(self):
        from repro.data.database import FactDatabase
        from repro.data.entities import Claim, ClaimLink, Document, Source

        db = FactDatabase(
            sources=[Source("s1", features=[0.0])],
            documents=[
                Document("d1", source_id="s1", features=[0.0],
                         claim_links=(ClaimLink("c1"),))
            ],
            claims=[Claim("c1"), Claim("orphan")],
        )
        arrivals = list(stream_from_database(db))
        assert arrivals[-1].claim.claim_id == "orphan"
        assert arrivals[-1].documents == []

    def test_wiki_stream_covers_corpus(self):
        db = load_dataset("wiki", seed=42, scale=0.1)
        arrivals = list(stream_from_database(db))
        claims = sum(1 for a in arrivals if a.claim is not None)
        assert claims == db.num_claims
        docs = sum(len(a.documents) for a in arrivals)
        assert docs == db.num_documents

    def test_trailing_evidence_event_delivers_backlog(self, micro_db):
        arrivals = list(stream_from_database(micro_db))
        trailing = [a for a in arrivals if a.claim is None]
        # d3/d4 only reference already-arrived claims -> one trailing event.
        assert len(trailing) == 1
        delivered = {d.document_id for d in trailing[0].documents}
        assert delivered == {"d3", "d4"}


class TestStreamingFactChecker:
    def test_observe_grows_entities(self, micro_db):
        checker = StreamingFactChecker(seed=0)
        updates = [checker.observe(a) for a in stream_from_database(micro_db)]
        final = updates[-1]
        assert final.num_claims == 3
        assert final.num_documents == 4
        assert final.num_sources == 2

    def test_database_before_arrivals_raises(self):
        with pytest.raises(StreamingError):
            StreamingFactChecker(seed=0).database

    def test_step_sizes_follow_schedule(self, micro_db):
        schedule = RobbinsMonroSchedule(beta=0.7)
        checker = StreamingFactChecker(schedule=schedule, seed=0)
        updates = [checker.observe(a) for a in stream_from_database(micro_db)]
        for update in updates:
            assert update.step_size == pytest.approx(
                schedule.step_size(update.arrival_index)
            )

    def test_duplicate_arrival_rejected(self, micro_db):
        checker = StreamingFactChecker(seed=0)
        arrivals = list(stream_from_database(micro_db))
        checker.observe(arrivals[0])
        with pytest.raises(StreamingError):
            checker.observe(arrivals[0])

    def test_probabilities_carried_across_arrivals(self, micro_db):
        checker = StreamingFactChecker(seed=0)
        arrivals = list(stream_from_database(micro_db))
        checker.observe(arrivals[0])
        first_claim = arrivals[0].claim.claim_id
        db = checker.database
        p_before = db.probability(db.claim_position(first_claim))
        checker.observe(arrivals[1])
        db = checker.database
        p_after = db.probability(db.claim_position(first_claim))
        # Not reset to the prior: the previous estimate was reused as the
        # starting point (it may move a little through new inference).
        assert abs(p_after - p_before) < 0.45

    def test_labels_survive_rebuilds(self, micro_db):
        checker = StreamingFactChecker(seed=0)
        arrivals = list(stream_from_database(micro_db))
        checker.observe(arrivals[0])
        claim_id = arrivals[0].claim.claim_id
        checker.record_label(claim_id, 1)
        for arrival in arrivals[1:]:
            checker.observe(arrival)
        db = checker.database
        assert db.label_of(db.claim_position(claim_id)) == 1

    def test_invalid_label_rejected(self, micro_db):
        checker = StreamingFactChecker(seed=0)
        with pytest.raises(StreamingError):
            checker.record_label("c1", 5)

    def test_weights_exchange(self, micro_db):
        checker = StreamingFactChecker(seed=0)
        arrivals = list(stream_from_database(micro_db))
        checker.observe(arrivals[0])
        weights = checker.weights
        assert weights is not None
        weights.values[:] = 0.1
        checker.receive_weights(weights)
        assert np.allclose(checker.weights.values, 0.1)

    def test_full_replay_tracks_offline_inference(self):
        """Online EM over the whole stream must approximate the offline
        model: streaming marginals correlate with iCRF marginals on the
        same corpus, and precision lands in the same band."""
        from repro.inference import ICrf

        db = load_dataset("wiki", seed=42, scale=0.2)
        checker = StreamingFactChecker(seed=0)
        for arrival in stream_from_database(db):
            checker.observe(arrival)
        snapshot = checker.database

        reference = load_dataset("wiki", seed=42, scale=0.2)
        icrf = ICrf(reference, seed=0)
        offline_precision = icrf.infer().grounding.precision(
            reference.truth_vector()
        )

        streaming_by_id = {
            claim.claim_id: float(snapshot.probabilities[index])
            for index, claim in enumerate(snapshot.claims)
        }
        offline_by_id = {
            reference.claim_id(index): float(reference.probabilities[index])
            for index in range(reference.num_claims)
        }
        ids = sorted(streaming_by_id)
        correlation = np.corrcoef(
            [streaming_by_id[i] for i in ids],
            [offline_by_id[i] for i in ids],
        )[0, 1]
        assert correlation > 0.3

        truth_by_id = {c.claim_id: int(bool(c.truth)) for c in db.claims}
        predictions = (np.asarray(snapshot.probabilities) >= 0.5).astype(int)
        hits = sum(
            1
            for index, claim in enumerate(snapshot.claims)
            if predictions[index] == truth_by_id[claim.claim_id]
        )
        assert hits / len(truth_by_id) >= offline_precision - 0.25

    def test_update_is_linear_time_shape(self):
        """Per-arrival update time must not explode over the stream."""
        db = load_dataset("wiki", seed=42, scale=0.1)
        checker = StreamingFactChecker(seed=0)
        times = [
            checker.observe(arrival).elapsed_seconds
            for arrival in stream_from_database(db)
        ]
        first_half = np.mean(times[: len(times) // 2])
        second_half = np.mean(times[len(times) // 2 :])
        # Quadratic blow-up would give ratios far above this bound.
        assert second_half < max(first_half * 25, 0.05)


class TestIncrementalGrowth:
    """The incremental growth path against the rebuild-per-arrival oracle.

    ``incremental=False`` keeps the historical rebuild-everything path as
    a reference implementation; the default in-place growth must match it
    bit for bit at every arrival — including across mid-stream labels and
    parameter exchanges — on both engine backends.
    """

    @pytest.mark.parametrize("engine", ("numpy", "reference"))
    def test_micro_stream_matches_rebuild_bit_for_bit(self, engine, micro_db):
        arrivals = list(stream_from_database(micro_db))
        grown = StreamingFactChecker(incremental=True, engine=engine, seed=3)
        rebuilt = StreamingFactChecker(incremental=False, engine=engine, seed=3)
        for index, arrival in enumerate(arrivals):
            a = grown.observe(arrival)
            b = rebuilt.observe(arrival)
            assert np.array_equal(a.weights.values, b.weights.values)
            assert np.array_equal(
                np.asarray(grown.database.probabilities),
                np.asarray(rebuilt.database.probabilities),
            )
            for left, right in zip(
                grown.database.clique_arrays(), rebuilt.database.clique_arrays()
            ):
                assert np.array_equal(left, right)
            if index == 0:
                # Mid-stream interventions must not break the equivalence.
                claim_id = arrival.claim.claim_id
                grown.record_label(claim_id, 1)
                rebuilt.record_label(claim_id, 1)
                exchanged = grown.weights
                exchanged.values[:] = 0.05
                grown.receive_weights(exchanged)
                rebuilt.receive_weights(exchanged)

    @pytest.mark.parametrize("engine", ("numpy", "reference"))
    def test_wiki_stream_matches_rebuild_bit_for_bit(self, engine):
        db = load_dataset("wiki", seed=42, scale=0.15)
        arrivals = list(stream_from_database(db))
        grown = StreamingFactChecker(incremental=True, engine=engine, seed=3)
        rebuilt = StreamingFactChecker(incremental=False, engine=engine, seed=3)
        for arrival in arrivals:
            a = grown.observe(arrival)
            b = rebuilt.observe(arrival)
            assert np.array_equal(a.weights.values, b.weights.values)
        assert np.array_equal(
            np.asarray(grown.database.probabilities),
            np.asarray(rebuilt.database.probabilities),
        )


class TestDocumentlessSources:
    """Sources that never published a document still reach the stream."""

    @staticmethod
    def _corpus_with_lonely_source():
        from repro.data.database import FactDatabase
        from repro.data.entities import Claim, ClaimLink, Document, Source

        return FactDatabase(
            sources=[
                Source("s1", features=[1.0]),
                Source("lurker", features=[-1.0]),
            ],
            documents=[
                Document(
                    "d1",
                    source_id="s1",
                    features=[0.5],
                    claim_links=(ClaimLink("c1"),),
                )
            ],
            claims=[Claim("c1", text="one", truth=True)],
        )

    def test_lonely_source_delivered_with_trailing_event(self):
        arrivals = list(stream_from_database(self._corpus_with_lonely_source()))
        delivered = [s.source_id for a in arrivals for s in a.sources]
        assert sorted(delivered) == ["lurker", "s1"]
        trailing = arrivals[-1]
        assert trailing.claim is None
        assert [s.source_id for s in trailing.sources] == ["lurker"]

    def test_stream_end_state_matches_batch_corpus(self):
        corpus = self._corpus_with_lonely_source()
        checker = StreamingFactChecker(seed=0)
        for arrival in stream_from_database(corpus):
            checker.observe(arrival)
        snapshot = checker.database
        assert {s.source_id for s in snapshot.sources} == {
            s.source_id for s in corpus.sources
        }
        assert {d.document_id for d in snapshot.documents} == {
            d.document_id for d in corpus.documents
        }
        assert {c.claim_id for c in snapshot.claims} == {
            c.claim_id for c in corpus.claims
        }


class TestPendingLabels:
    """record_label on claims that have not arrived yet."""

    def test_unknown_claim_rejected_by_default(self, micro_db):
        checker = StreamingFactChecker(seed=0)
        arrivals = list(stream_from_database(micro_db))
        checker.observe(arrivals[0])
        with pytest.raises(StreamingError, match="has not arrived"):
            checker.record_label("no-such-claim", 1)

    def test_pending_label_parked_then_promoted(self, micro_db):
        checker = StreamingFactChecker(allow_pending_labels=True, seed=0)
        arrivals = list(stream_from_database(micro_db))
        future = [a.claim.claim_id for a in arrivals if a.claim is not None][-1]
        checker.record_label(future, 1)
        assert checker.pending_labels == {future: 1}
        for arrival in arrivals:
            checker.observe(arrival)
        assert checker.pending_labels == {}
        db = checker.database
        assert db.label_of(db.claim_position(future)) == 1
        assert db.probability(db.claim_position(future)) == 1.0

    def test_pending_labels_survive_state_roundtrip(self, micro_db):
        checker = StreamingFactChecker(allow_pending_labels=True, seed=0)
        arrivals = list(stream_from_database(micro_db))
        checker.observe(arrivals[0])
        future = [a.claim.claim_id for a in arrivals if a.claim is not None][-1]
        checker.record_label(future, 0)
        clone = StreamingFactChecker(allow_pending_labels=True, seed=0)
        clone.load_state_dict(checker.state_dict())
        assert clone.pending_labels == {future: 0}
        for arrival in arrivals[1:]:
            clone.observe(arrival)
        assert clone.pending_labels == {}
        db = clone.database
        assert db.label_of(db.claim_position(future)) == 0
