"""Bit-for-bit checkpoint/resume tests (repro.api.checkpoint).

Golden-fixture style: the uninterrupted run *is* the golden reference —
the same spec is run once to completion, and once interrupted mid-run,
checkpointed, reloaded, and continued.  Every trace field except
wall-clock time, the final weights, the final probabilities, and the
onward RNG streams must match exactly, for both engine backends and both
session modes.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import FactCheckSession, SessionSpec
from repro.errors import CheckpointError
from repro.streaming import stream_from_database

from tests.fixtures import build_micro_database

ENGINES = ("numpy", "reference", "sharded")


def batch_spec(engine: str) -> SessionSpec:
    return SessionSpec(
        seed=11,
        dataset={"name": "wiki", "seed": 42, "scale": 0.15},
        inference={"engine": engine, "em_iterations": 2, "num_samples": 8},
        guidance={"strategy": "hybrid", "candidate_limit": 10},
        user={"error_probability": 0.1, "skip_probability": 0.1},
        effort={
            "goal": {"kind": "none"},
            "budget": 8,
            "confirmation_interval": 3,
            "termination": [
                {"kind": "urr", "params": {"threshold": 0.001, "patience": 6}}
            ],
        },
    )


def streaming_spec(engine: str) -> SessionSpec:
    return SessionSpec(
        mode="streaming",
        seed=5,
        inference={"engine": engine, "em_iterations": 2, "num_samples": 8},
        guidance={"strategy": "hybrid", "candidate_limit": 10},
        effort={"goal": {"kind": "none"}},
        stream={"validation_every": 4},
    )


def assert_records_identical(golden, resumed):
    """Record-level equality, excluding wall-clock response times."""
    assert len(golden) == len(resumed)
    for a, b in zip(golden, resumed):
        assert a.iteration == b.iteration
        assert a.claim_indices == b.claim_indices
        assert a.claim_ids == b.claim_ids
        assert a.user_values == b.user_values
        assert a.strategy_used == b.strategy_used
        assert a.error_rate == b.error_rate
        assert a.hybrid_score == b.hybrid_score
        assert a.unreliable_ratio == b.unreliable_ratio
        assert a.entropy == b.entropy
        assert a.precision == b.precision
        assert a.grounding_changes == b.grounding_changes
        assert a.predictions_matched == b.predictions_matched
        assert a.skipped == b.skipped
        assert a.repairs == b.repairs


@pytest.mark.parametrize("engine", ENGINES)
class TestBatchResume:
    def test_resumed_run_matches_uninterrupted(self, engine, tmp_path):
        golden = FactCheckSession(batch_spec(engine)).run()

        interrupted = FactCheckSession(batch_spec(engine)).open()
        for _ in range(3):
            interrupted.step()
        path = tmp_path / "batch.json"
        interrupted.save(path)

        resumed_session = FactCheckSession.load(path)
        assert resumed_session.trace.iterations == 3
        resumed = resumed_session.run()

        assert golden.stop_reason == resumed.stop_reason
        assert_records_identical(golden.trace.records, resumed.trace.records)
        assert golden.validated_claim_ids == resumed.validated_claim_ids
        assert np.array_equal(golden.weights.values, resumed.weights.values)
        assert golden.final_precision == resumed.final_precision
        assert golden.trace.final_grounding == resumed.trace.final_grounding

    def test_resume_restores_database_state(self, engine, tmp_path):
        session = FactCheckSession(batch_spec(engine)).open()
        session.step()
        session.step()
        path = tmp_path / "state.json"
        session.save(path)
        resumed = FactCheckSession.load(path)
        original = session.database
        restored = resumed.database
        assert np.array_equal(
            np.asarray(original.probabilities), np.asarray(restored.probabilities)
        )
        assert original.labels == restored.labels
        # The corpus structure itself round-trips through the checkpoint.
        assert [c.claim_id for c in original.claims] == [
            c.claim_id for c in restored.claims
        ]


@pytest.mark.parametrize("engine", ENGINES)
class TestStreamingResume:
    def test_resumed_stream_matches_uninterrupted(self, engine, tmp_path):
        database = build_database()
        arrivals = list(stream_from_database(database))
        cut = len(arrivals) // 2

        golden = FactCheckSession(streaming_spec(engine)).run(arrivals=arrivals)

        interrupted = FactCheckSession(streaming_spec(engine)).open()
        every = 4
        for arrival in arrivals[:cut]:
            interrupted.observe(arrival)
            if interrupted._since_validation >= every:
                interrupted.validate(every)
        path = tmp_path / "stream.json"
        interrupted.save(path)

        resumed_session = FactCheckSession.load(path)
        resumed = resumed_session.run(arrivals=arrivals[cut:])

        assert len(golden.stream_updates) == len(resumed.stream_updates)
        for a, b in zip(golden.stream_updates, resumed.stream_updates):
            assert a.arrival_index == b.arrival_index
            assert a.step_size == b.step_size
            assert np.array_equal(a.weights.values, b.weights.values)
            assert a.num_claims == b.num_claims
        assert golden.validated_claim_ids == resumed.validated_claim_ids
        assert_records_identical(golden.trace.records, resumed.trace.records)
        assert np.array_equal(golden.weights.values, resumed.weights.values)
        assert golden.final_precision == resumed.final_precision


def build_database():
    """Small multi-source corpus for the streaming resume test."""
    from repro.datasets import load_dataset

    return load_dataset("health", seed=5, scale=0.02)


class TestAutoCheckpoint:
    """Periodic auto-checkpointing inside ``FactCheckSession.run``."""

    def test_batch_autocheckpoint_resumes_bit_for_bit(self, tmp_path):
        golden = FactCheckSession(batch_spec("numpy")).run()

        path = tmp_path / "auto.json.gz"
        crashed = FactCheckSession(batch_spec("numpy"))
        with pytest.raises(RuntimeError, match="simulated crash"):

            def crash(record):
                if record.iteration == 4:
                    raise RuntimeError("simulated crash")

            crashed.run(checkpoint_every=2, checkpoint_path=path, on_iteration=crash)

        resumed_session = FactCheckSession.load(path)
        # The last auto-checkpoint landed after iteration 2 (the crash at
        # iteration 4 pre-empted the one due at 4).
        assert resumed_session.trace.iterations == 2
        resumed = resumed_session.run()
        assert golden.stop_reason == resumed.stop_reason
        assert_records_identical(golden.trace.records, resumed.trace.records)
        assert np.array_equal(golden.weights.values, resumed.weights.values)

    def test_streaming_autocheckpoint_counts_arrivals(self, tmp_path):
        database = build_database()
        arrivals = list(stream_from_database(database))
        golden = FactCheckSession(streaming_spec("numpy")).run(arrivals=arrivals)

        path = tmp_path / "stream-auto.json"
        seen = [0]

        def crash(update):
            seen[0] += 1
            if seen[0] == 7:
                raise RuntimeError("simulated crash")

        crashed = FactCheckSession(streaming_spec("numpy"))
        with pytest.raises(RuntimeError, match="simulated crash"):
            crashed.run(
                arrivals=arrivals,
                checkpoint_every=3,
                checkpoint_path=path,
                on_iteration=crash,
            )

        resumed_session = FactCheckSession.load(path)
        done = len(resumed_session._updates)  # arrivals checkpointed so far
        assert done == 6
        resumed = resumed_session.run(arrivals=arrivals[done:])
        assert len(golden.stream_updates) == len(resumed.stream_updates)
        for a, b in zip(golden.stream_updates, resumed.stream_updates):
            assert np.array_equal(a.weights.values, b.weights.values)
        assert golden.validated_claim_ids == resumed.validated_claim_ids
        assert np.array_equal(golden.weights.values, resumed.weights.values)

    def test_run_final_checkpoint_reflects_completion(self, tmp_path):
        path = tmp_path / "final.json"
        result = FactCheckSession(batch_spec("numpy")).run(
            checkpoint_every=100, checkpoint_path=path
        )
        restored = FactCheckSession.load(path)
        assert restored.trace.iterations == result.trace.iterations

    def test_checkpoint_every_requires_path(self):
        from repro.errors import SessionError

        with pytest.raises(SessionError, match="checkpoint_path"):
            FactCheckSession(batch_spec("numpy")).run(checkpoint_every=2)


class TestCheckpointFormat:
    def test_checkpoint_is_json_with_headers(self, tmp_path):
        session = FactCheckSession(
            SessionSpec(seed=1), database=build_micro_database()
        ).open()
        path = tmp_path / "ckpt.json"
        session.save(path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-session-checkpoint"
        assert payload["version"] == 3
        assert payload["mode"] == "batch"
        assert "spec" in payload and "state" in payload
        # An explicitly supplied corpus cannot be regenerated from the
        # spec, so it stays embedded.
        assert "database" in payload

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(CheckpointError):
            FactCheckSession.load(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            FactCheckSession.load(tmp_path / "absent.json")

    def test_loaded_session_is_open_and_steppable(self, tmp_path):
        database = build_micro_database()
        session = FactCheckSession(
            SessionSpec(seed=1, effort={"goal": {"kind": "none"}}),
            database=database,
        ).open()
        session.step()
        path = tmp_path / "ckpt.json"
        session.save(path)
        resumed = FactCheckSession.load(path)
        assert resumed.status == "open"
        record = resumed.step()
        assert record.iteration == 2


class TestCheckpointCompaction:
    """gzip compression and corpus-elision for spec-described datasets."""

    def test_gzip_checkpoint_roundtrips(self, tmp_path):
        session = FactCheckSession(batch_spec("numpy")).open()
        session.step()
        plain = tmp_path / "ckpt.json"
        packed = tmp_path / "ckpt.json.gz"
        session.save(plain)
        session.save(packed)
        assert packed.read_bytes()[:2] == b"\x1f\x8b"
        assert packed.stat().st_size < plain.stat().st_size
        resumed = FactCheckSession.load(packed)
        golden = FactCheckSession.load(plain)
        assert_records_identical(
            golden.trace.records, resumed.trace.records
        )
        assert golden.step().claim_ids == resumed.step().claim_ids

    def test_dataset_sessions_omit_corpus_structure(self, tmp_path):
        session = FactCheckSession(batch_spec("numpy")).open()
        session.step()
        path = tmp_path / "compact.json"
        session.save(path)
        payload = json.loads(path.read_text())
        assert "database" not in payload
        fingerprint = payload["database_fingerprint"]
        assert fingerprint["num_claims"] == session.database.num_claims
        resumed = FactCheckSession.load(path)
        assert resumed.database.num_claims == session.database.num_claims
        # A re-save of the regenerated session stays compact.
        again = tmp_path / "again.json"
        resumed.save(again)
        assert "database" not in json.loads(again.read_text())

    def test_compact_checkpoint_is_smaller_than_embedded(self, tmp_path):
        spec = batch_spec("numpy")
        compact_session = FactCheckSession(spec).open()
        embedded_session = FactCheckSession(
            spec, database=spec.dataset.load()
        ).open()
        compact = tmp_path / "compact.json"
        embedded = tmp_path / "embedded.json"
        compact_session.save(compact)
        embedded_session.save(embedded)
        assert compact.stat().st_size < embedded.stat().st_size / 2

    def test_fingerprint_mismatch_is_rejected(self, tmp_path):
        session = FactCheckSession(batch_spec("numpy")).open()
        path = tmp_path / "compact.json"
        session.save(path)
        payload = json.loads(path.read_text())
        payload["database_fingerprint"]["num_claims"] += 1
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="does not match"):
            FactCheckSession.load(path)

    def test_fingerprint_catches_same_shape_different_seed_corpus(self, tmp_path):
        from repro.datasets import load_dataset

        session = FactCheckSession(batch_spec("numpy")).open()
        path = tmp_path / "compact.json"
        session.save(path)
        # Same profile and scale, different seed: counts and positional
        # claim ids coincide, but the truth pattern differs — the content
        # digest must reject the swap.
        impostor = load_dataset("wiki", seed=43, scale=0.15)
        assert impostor.num_claims == session.database.num_claims
        with pytest.raises(CheckpointError, match="does not match"):
            FactCheckSession.load(path, database=impostor)

    def test_version_1_checkpoint_with_embedded_corpus_loads(self, tmp_path):
        session = FactCheckSession(batch_spec("numpy")).open()
        session.step()
        path = tmp_path / "v2.json"
        session.save(path)
        payload = json.loads(path.read_text())
        # Rewrite as a v1-style checkpoint: corpus embedded, no fingerprint.
        from repro.datasets.io import database_to_dict

        payload["version"] = 1
        payload.pop("database_fingerprint", None)
        payload["database"] = database_to_dict(session.database)
        legacy = tmp_path / "v1.json"
        legacy.write_text(json.dumps(payload))
        resumed = FactCheckSession.load(legacy)
        assert resumed.trace.iterations == 1
        assert resumed.step().iteration == 2


def sourced_streaming_spec(engine: str) -> SessionSpec:
    """Streaming spec whose arrivals come from a declared replayable source."""
    return SessionSpec(
        mode="streaming",
        seed=5,
        inference={"engine": engine, "em_iterations": 2, "num_samples": 8},
        guidance={"strategy": "hybrid", "candidate_limit": 10},
        effort={"goal": {"kind": "none"}},
        stream={
            "validation_every": 4,
            "source": {"dataset": {"name": "health", "seed": 5, "scale": 0.02}},
        },
    )


@pytest.mark.parametrize("engine", ENGINES)
class TestMidStreamResumeWithForwardLinks:
    def test_resume_at_truncated_forward_link_matches_uninterrupted(
        self, engine, tmp_path
    ):
        """Checkpoint taken while a document's forward link is truncated.

        The first micro-corpus arrival delivers d1, which also references
        the not-yet-arrived claim c2 — at the cut the snapshot holds the
        document with that link parked (only the d1→c1 clique exists).
        Resuming must rebuild exactly that truncated structure and then
        continue bit-for-bit.
        """
        database = build_micro_database()
        arrivals = list(stream_from_database(database))

        golden = FactCheckSession(streaming_spec(engine)).run(arrivals=arrivals)

        interrupted = FactCheckSession(streaming_spec(engine)).open()
        interrupted.observe(arrivals[0])
        snapshot = interrupted.database
        assert snapshot.num_claims == 1
        assert snapshot.num_documents == 1
        assert snapshot.num_cliques == 1  # d1→c2 parked, not materialised
        path = tmp_path / "forward-cut.json"
        interrupted.save(path)

        resumed_session = FactCheckSession.load(path)
        restored = resumed_session.database
        assert restored.num_cliques == 1
        resumed = resumed_session.run(arrivals=arrivals[1:])

        assert len(golden.stream_updates) == len(resumed.stream_updates)
        for a, b in zip(golden.stream_updates, resumed.stream_updates):
            assert a.arrival_index == b.arrival_index
            assert np.array_equal(a.weights.values, b.weights.values)
        assert np.array_equal(golden.weights.values, resumed.weights.values)


@pytest.mark.parametrize("engine", ENGINES)
class TestCompactStreamingCheckpoint:
    """Source-backed sessions checkpoint as fingerprint + position (v3)."""

    def test_mid_stream_compact_resume_matches_uninterrupted(
        self, engine, tmp_path
    ):
        golden = FactCheckSession(sourced_streaming_spec(engine)).run()

        interrupted = FactCheckSession(sourced_streaming_spec(engine)).open()
        interrupted.ingest_from_source(count=7)
        path = tmp_path / "compact-stream.json"
        interrupted.save(path)

        payload = json.loads(path.read_text())
        assert payload["state"]["stream_position"] == 7
        assert "stream_fingerprint" in payload
        # Compact form: the checker state carries no entity lists.
        for key in ("sources", "documents", "claims"):
            assert key not in payload["state"]["checker"]

        resumed_session = FactCheckSession.load(path)
        resumed = resumed_session.run()

        assert len(golden.stream_updates) == len(resumed.stream_updates)
        for a, b in zip(golden.stream_updates, resumed.stream_updates):
            assert a.arrival_index == b.arrival_index
            assert a.step_size == b.step_size
            assert np.array_equal(a.weights.values, b.weights.values)
        assert golden.validated_claim_ids == resumed.validated_claim_ids
        assert_records_identical(golden.trace.records, resumed.trace.records)
        assert np.array_equal(golden.weights.values, resumed.weights.values)

    def test_compact_is_smaller_than_embedded_checkpoint(self, engine, tmp_path):
        sourced = FactCheckSession(sourced_streaming_spec(engine)).open()
        sourced.ingest_from_source(count=10)
        compact = tmp_path / "compact.json"
        sourced.save(compact)

        embedded_session = FactCheckSession(streaming_spec(engine)).open()
        source = sourced_streaming_spec(engine).stream.source
        from itertools import islice

        embedded_session.ingest(islice(source.arrivals(), 10))
        embedded = tmp_path / "embedded.json"
        embedded_session.save(embedded)
        assert compact.stat().st_size < embedded.stat().st_size / 2

    def test_stream_fingerprint_mismatch_rejected(self, engine, tmp_path):
        session = FactCheckSession(sourced_streaming_spec(engine)).open()
        session.ingest_from_source(count=5)
        path = tmp_path / "tampered.json"
        session.save(path)
        payload = json.loads(path.read_text())
        payload["stream_fingerprint"]["entities_digest"] = "0" * 16
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="does not match"):
            FactCheckSession.load(path)


class TestExternalArrivalsFallback:
    def test_out_of_band_arrival_forces_embedded_checkpoint(self, tmp_path):
        from itertools import islice

        spec = sourced_streaming_spec("numpy")
        session = FactCheckSession(spec).open()
        session.ingest_from_source(count=3)
        # An arrival observed outside the declared source makes the
        # stream position meaningless: the checkpoint must fall back to
        # embedding the full entity state.
        extra = next(islice(spec.stream.source.arrivals(), 3, 4))
        session.observe(extra)
        path = tmp_path / "external.json"
        session.save(path)
        payload = json.loads(path.read_text())
        assert "stream_position" not in payload["state"]
        assert "stream_fingerprint" not in payload
        assert "claims" in payload["state"]["checker"]

        resumed = FactCheckSession.load(path)
        with pytest.raises(Exception, match="outside its declared"):
            resumed.ingest_from_source(count=1)

    def test_ingest_from_source_requires_declared_source(self):
        from repro.errors import SessionError

        session = FactCheckSession(streaming_spec("numpy")).open()
        with pytest.raises(SessionError, match="spec.stream.source"):
            session.ingest_from_source(count=1)
