"""Bit-for-bit checkpoint/resume tests (repro.api.checkpoint).

Golden-fixture style: the uninterrupted run *is* the golden reference —
the same spec is run once to completion, and once interrupted mid-run,
checkpointed, reloaded, and continued.  Every trace field except
wall-clock time, the final weights, the final probabilities, and the
onward RNG streams must match exactly, for both engine backends and both
session modes.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import FactCheckSession, SessionSpec
from repro.errors import CheckpointError
from repro.streaming import stream_from_database

from tests.fixtures import build_micro_database

ENGINES = ("numpy", "reference")


def batch_spec(engine: str) -> SessionSpec:
    return SessionSpec(
        seed=11,
        dataset={"name": "wiki", "seed": 42, "scale": 0.15},
        inference={"engine": engine, "em_iterations": 2, "num_samples": 8},
        guidance={"strategy": "hybrid", "candidate_limit": 10},
        user={"error_probability": 0.1, "skip_probability": 0.1},
        effort={
            "goal": {"kind": "none"},
            "budget": 8,
            "confirmation_interval": 3,
            "termination": [
                {"kind": "urr", "params": {"threshold": 0.001, "patience": 6}}
            ],
        },
    )


def streaming_spec(engine: str) -> SessionSpec:
    return SessionSpec(
        mode="streaming",
        seed=5,
        inference={"engine": engine, "em_iterations": 2, "num_samples": 8},
        guidance={"strategy": "hybrid", "candidate_limit": 10},
        effort={"goal": {"kind": "none"}},
        stream={"validation_every": 4},
    )


def assert_records_identical(golden, resumed):
    """Record-level equality, excluding wall-clock response times."""
    assert len(golden) == len(resumed)
    for a, b in zip(golden, resumed):
        assert a.iteration == b.iteration
        assert a.claim_indices == b.claim_indices
        assert a.claim_ids == b.claim_ids
        assert a.user_values == b.user_values
        assert a.strategy_used == b.strategy_used
        assert a.error_rate == b.error_rate
        assert a.hybrid_score == b.hybrid_score
        assert a.unreliable_ratio == b.unreliable_ratio
        assert a.entropy == b.entropy
        assert a.precision == b.precision
        assert a.grounding_changes == b.grounding_changes
        assert a.predictions_matched == b.predictions_matched
        assert a.skipped == b.skipped
        assert a.repairs == b.repairs


@pytest.mark.parametrize("engine", ENGINES)
class TestBatchResume:
    def test_resumed_run_matches_uninterrupted(self, engine, tmp_path):
        golden = FactCheckSession(batch_spec(engine)).run()

        interrupted = FactCheckSession(batch_spec(engine)).open()
        for _ in range(3):
            interrupted.step()
        path = tmp_path / "batch.json"
        interrupted.save(path)

        resumed_session = FactCheckSession.load(path)
        assert resumed_session.trace.iterations == 3
        resumed = resumed_session.run()

        assert golden.stop_reason == resumed.stop_reason
        assert_records_identical(golden.trace.records, resumed.trace.records)
        assert golden.validated_claim_ids == resumed.validated_claim_ids
        assert np.array_equal(golden.weights.values, resumed.weights.values)
        assert golden.final_precision == resumed.final_precision
        assert golden.trace.final_grounding == resumed.trace.final_grounding

    def test_resume_restores_database_state(self, engine, tmp_path):
        session = FactCheckSession(batch_spec(engine)).open()
        session.step()
        session.step()
        path = tmp_path / "state.json"
        session.save(path)
        resumed = FactCheckSession.load(path)
        original = session.database
        restored = resumed.database
        assert np.array_equal(
            np.asarray(original.probabilities), np.asarray(restored.probabilities)
        )
        assert original.labels == restored.labels
        # The corpus structure itself round-trips through the checkpoint.
        assert [c.claim_id for c in original.claims] == [
            c.claim_id for c in restored.claims
        ]


@pytest.mark.parametrize("engine", ENGINES)
class TestStreamingResume:
    def test_resumed_stream_matches_uninterrupted(self, engine, tmp_path):
        database = build_database()
        arrivals = list(stream_from_database(database))
        cut = len(arrivals) // 2

        golden = FactCheckSession(streaming_spec(engine)).run(arrivals=arrivals)

        interrupted = FactCheckSession(streaming_spec(engine)).open()
        every = 4
        for arrival in arrivals[:cut]:
            interrupted.observe(arrival)
            if interrupted._since_validation >= every:
                interrupted.validate(every)
        path = tmp_path / "stream.json"
        interrupted.save(path)

        resumed_session = FactCheckSession.load(path)
        resumed = resumed_session.run(arrivals=arrivals[cut:])

        assert len(golden.stream_updates) == len(resumed.stream_updates)
        for a, b in zip(golden.stream_updates, resumed.stream_updates):
            assert a.arrival_index == b.arrival_index
            assert a.step_size == b.step_size
            assert np.array_equal(a.weights.values, b.weights.values)
            assert a.num_claims == b.num_claims
        assert golden.validated_claim_ids == resumed.validated_claim_ids
        assert_records_identical(golden.trace.records, resumed.trace.records)
        assert np.array_equal(golden.weights.values, resumed.weights.values)
        assert golden.final_precision == resumed.final_precision


def build_database():
    """Small multi-source corpus for the streaming resume test."""
    from repro.datasets import load_dataset

    return load_dataset("health", seed=5, scale=0.02)


class TestCheckpointFormat:
    def test_checkpoint_is_json_with_headers(self, tmp_path):
        session = FactCheckSession(
            SessionSpec(seed=1), database=build_micro_database()
        ).open()
        path = tmp_path / "ckpt.json"
        session.save(path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-session-checkpoint"
        assert payload["version"] == 1
        assert payload["mode"] == "batch"
        assert "spec" in payload and "state" in payload

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(CheckpointError):
            FactCheckSession.load(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            FactCheckSession.load(tmp_path / "absent.json")

    def test_loaded_session_is_open_and_steppable(self, tmp_path):
        database = build_micro_database()
        session = FactCheckSession(
            SessionSpec(seed=1, effort={"goal": {"kind": "none"}}),
            database=database,
        ).open()
        session.step()
        path = tmp_path / "ckpt.json"
        session.save(path)
        resumed = FactCheckSession.load(path)
        assert resumed.status == "open"
        record = resumed.step()
        assert record.iteration == 2
