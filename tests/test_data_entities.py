"""Tests for the entity value objects (§2.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.entities import Claim, ClaimLink, Document, Source
from repro.data.stance import Stance
from repro.errors import DataModelError


class TestStance:
    def test_signs(self):
        assert Stance.SUPPORT.sign == 1
        assert Stance.REFUTE.sign == -1

    def test_flipped_is_involution(self):
        for stance in Stance:
            assert stance.flipped().flipped() is stance

    def test_from_sign_roundtrip(self):
        for stance in Stance:
            assert Stance.from_sign(stance.sign) is stance

    def test_from_sign_rejects_zero(self):
        with pytest.raises(ValueError):
            Stance.from_sign(0)


class TestSource:
    def test_features_are_immutable(self):
        source = Source("s1", features=[1.0, 2.0])
        with pytest.raises(ValueError):
            source.features[0] = 9.0

    def test_features_coerced_to_float(self):
        source = Source("s1", features=[1, 2])
        assert source.features.dtype == float

    def test_num_features(self):
        assert Source("s1", features=[1.0, 2.0, 3.0]).num_features == 3

    def test_empty_id_rejected(self):
        with pytest.raises(DataModelError):
            Source("", features=[1.0])

    def test_two_dimensional_features_rejected(self):
        with pytest.raises(DataModelError):
            Source("s1", features=np.ones((2, 2)))

    def test_nan_features_rejected(self):
        with pytest.raises(DataModelError):
            Source("s1", features=[float("nan")])

    def test_inf_features_rejected(self):
        with pytest.raises(DataModelError):
            Source("s1", features=[float("inf")])


class TestDocument:
    def test_claim_ids_follow_links(self):
        doc = Document(
            "d1",
            source_id="s1",
            features=[0.0],
            claim_links=(ClaimLink("c1"), ClaimLink("c2", Stance.REFUTE)),
        )
        assert doc.claim_ids == ("c1", "c2")

    def test_duplicate_claim_link_rejected(self):
        with pytest.raises(DataModelError):
            Document(
                "d1",
                source_id="s1",
                features=[0.0],
                claim_links=(ClaimLink("c1"), ClaimLink("c1", Stance.REFUTE)),
            )

    def test_default_stance_is_support(self):
        assert ClaimLink("c1").stance is Stance.SUPPORT

    def test_empty_source_rejected(self):
        with pytest.raises(DataModelError):
            Document("d1", source_id="", features=[0.0])

    def test_no_links_allowed(self):
        doc = Document("d1", source_id="s1", features=[0.0])
        assert doc.claim_ids == ()

    def test_non_claimlink_rejected(self):
        with pytest.raises(DataModelError):
            Document(
                "d1", source_id="s1", features=[0.0], claim_links=("c1",)
            )

    def test_invalid_stance_type_rejected(self):
        with pytest.raises(DataModelError):
            ClaimLink("c1", stance="support")


class TestClaim:
    def test_truth_optional(self):
        assert Claim("c1").truth is None

    def test_truth_bool(self):
        assert Claim("c1", truth=True).truth is True

    def test_truth_int_rejected(self):
        with pytest.raises(DataModelError):
            Claim("c1", truth=1)

    def test_empty_id_rejected(self):
        with pytest.raises(DataModelError):
            Claim("")

    def test_entities_are_hashable_frozen(self):
        claim = Claim("c1")
        with pytest.raises(Exception):
            claim.claim_id = "c2"
