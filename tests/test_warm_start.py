"""End-to-end warm-start semantics of the incremental inference paths.

§3.2's "view maintenance" rests on three carry-overs: the Gibbs chain
state, the model weights ``W``, and the credibility probabilities stored
in the fact database.  These tests pin down that each of them actually
persists — across :meth:`ICrf.infer` invocations and across streaming
arrivals — and that dropping them changes behaviour the way a cold start
should.
"""

from __future__ import annotations

import numpy as np

from repro.crf.weights import CrfWeights
from repro.datasets import load_dataset
from repro.inference.icrf import ICrf
from repro.streaming.process import StreamingFactChecker
from repro.streaming.stream import stream_from_database
from tests.fixtures import build_micro_database


def make_icrf(database, backend="numpy", seed=13, **kwargs):
    kwargs.setdefault("em_iterations", 2)
    kwargs.setdefault("num_samples", 8)
    kwargs.setdefault("burn_in", 3)
    return ICrf(database, engine=backend, seed=seed, **kwargs)


class TestChainWarmStart:
    def test_chain_state_persists_across_infer(self):
        database = load_dataset("wiki", seed=42, scale=0.15)
        icrf = make_icrf(database)
        assert icrf.sampler.state is None
        icrf.infer()
        state_after_first = icrf.sampler.state
        assert state_after_first is not None
        icrf.infer()
        # Still a live chain covering every claim; labels still pinned.
        assert icrf.sampler.state.shape == state_after_first.shape

    def test_warm_and_cold_chains_diverge(self):
        """Resetting the chain must change the sampled trajectory."""
        database = load_dataset("wiki", seed=42, scale=0.15)
        state = database.clone_state()
        warm = make_icrf(database)
        warm.infer()
        warm_second = warm.infer().marginals.copy()

        database.restore_state(state)
        cold = make_icrf(database)
        cold.infer()
        cold.reset_chain()
        cold_second = cold.infer().marginals.copy()
        assert not np.array_equal(warm_second, cold_second)

    def test_chain_state_survives_new_labels(self):
        database = build_micro_database()
        icrf = make_icrf(database)
        icrf.infer()
        database.label(1, 0)
        icrf.infer()
        assert icrf.sampler.state[1] == 0

    def test_reset_chain_clears_state(self):
        database = build_micro_database()
        icrf = make_icrf(database)
        icrf.infer()
        icrf.reset_chain()
        assert icrf.sampler.state is None


class TestWeightWarmStart:
    def test_weights_persist_across_infer(self):
        database = load_dataset("wiki", seed=42, scale=0.15)
        icrf = make_icrf(database)
        first = icrf.infer()
        assert np.array_equal(icrf.weights.values, first.weights.values)
        second = icrf.infer()
        assert np.array_equal(icrf.weights.values, second.weights.values)

    def test_skipping_mstep_keeps_weights(self):
        database = load_dataset("wiki", seed=42, scale=0.15)
        icrf = make_icrf(database)
        icrf.infer()
        before = icrf.weights.values.copy()
        icrf.infer(update_weights=False)
        assert np.array_equal(icrf.weights.values, before)

    def test_external_weights_are_adopted(self):
        database = build_micro_database()
        icrf = make_icrf(database)
        external = CrfWeights(np.linspace(-0.5, 0.5, icrf.weights.size))
        icrf.set_weights(external)
        assert np.array_equal(icrf.weights.values, external.values)
        # The engine reads the refreshed local fields immediately.
        expected = icrf.model.featurizer.local_fields(
            external.feature_weights
        )
        assert np.array_equal(icrf.model.local_fields, expected)


class TestProbabilityWarmStart:
    def test_marginals_written_back_to_database(self):
        database = build_micro_database()
        icrf = make_icrf(database)
        result = icrf.infer()
        assert np.array_equal(
            np.asarray(database.probabilities), result.marginals
        )

    def test_second_inference_starts_from_previous_marginals(self):
        """With the chain dropped, the E-step re-initialises from the
        *database* probabilities, not from the prior — the probability
        carry-over of §3.2."""
        database = load_dataset("wiki", seed=42, scale=0.15)
        icrf = make_icrf(database)
        first = icrf.infer().marginals.copy()
        icrf.reset_chain()
        second = icrf.infer(em_iterations=1).marginals
        # One warm EM round moves marginals far less than the cold start:
        # the carried-over state keeps the chain near its previous mode.
        assert np.mean(np.abs(second - first)) < np.mean(np.abs(first - 0.5))


class TestStreamingWarmStart:
    def _arrivals(self):
        database = build_micro_database()
        return list(stream_from_database(database))

    def test_probabilities_persist_across_arrivals(self):
        arrivals = self._arrivals()
        checker = StreamingFactChecker(seed=5)
        checker.observe(arrivals[0])
        first_claim = checker.database.claims[0].claim_id
        before = checker.database.probabilities[
            checker.database.claim_position(first_claim)
        ]
        checker.observe(arrivals[1])
        after = checker.database.probabilities[
            checker.database.claim_position(first_claim)
        ]
        # The carried probability seeds the next E-step: it must start
        # from the previous estimate, not reset to the prior.
        assert before != checker.database.prior or after != checker.database.prior
        assert abs(after - before) < abs(before - checker.database.prior) + 0.5

    def test_labels_survive_rebuilds_and_future_claims(self):
        arrivals = self._arrivals()
        checker = StreamingFactChecker(seed=5)
        checker.observe(arrivals[0])
        labelled_id = checker.database.claims[0].claim_id
        checker.record_label(labelled_id, 1)
        for arrival in arrivals[1:]:
            checker.observe(arrival)
        position = checker.database.claim_position(labelled_id)
        assert checker.database.label_of(position) == 1
        assert checker.database.probabilities[position] == 1.0

    def test_label_recorded_before_claim_arrives(self):
        arrivals = self._arrivals()
        checker = StreamingFactChecker(allow_pending_labels=True, seed=5)
        checker.observe(arrivals[0])
        future_ids = {
            arrival.claim.claim_id for arrival in arrivals[1:]
            if arrival.claim is not None
        }
        target = sorted(future_ids)[0]
        checker.record_label(target, 0)
        assert checker.pending_labels == {target: 0}
        for arrival in arrivals[1:]:
            checker.observe(arrival)
        position = checker.database.claim_position(target)
        assert checker.database.label_of(position) == 0
        assert checker.pending_labels == {}

    def test_weights_blend_continuously(self):
        """W_t = W_{t-1} + γ_t(Ŵ_t - W_{t-1}) keeps a warm trajectory."""
        arrivals = self._arrivals()
        checker = StreamingFactChecker(seed=5)
        previous = None
        for arrival in arrivals:
            update = checker.observe(arrival)
            if previous is not None:
                gamma = update.step_size
                assert 0.0 < gamma <= 1.0
            previous = update.weights.values.copy()
        assert np.array_equal(checker.weights.values, previous)

    def test_validation_weights_feed_streaming(self):
        """Alg. 2 line 7: parameters handed over persist in the checker."""
        arrivals = self._arrivals()
        checker = StreamingFactChecker(seed=5)
        checker.observe(arrivals[0])
        external = CrfWeights(
            np.linspace(-0.2, 0.2, checker.weights.size)
        )
        checker.receive_weights(external)
        assert np.array_equal(checker.weights.values, external.values)
        update = checker.observe(arrivals[1])
        # The next online step starts from the received parameters.
        assert update.weights.size == external.size
