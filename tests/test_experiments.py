"""Smoke tests of every experiment driver at miniature scale.

Each driver must run end-to-end, return a well-formed result table, and
satisfy the coarsest shape property the paper reports where that can be
asserted cheaply.
"""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, ExperimentConfig
from repro.experiments.reporting import ExperimentResult, series_at_grid

#: Tiny configuration: one dataset, one run, minimum corpus sizes.
TINY = ExperimentConfig(
    seed=5,
    runs=1,
    scale_factor=0.4,
    datasets=("wiki",),
    em_iterations=1,
    gibbs_samples=8,
    candidate_limit=8,
)


class TestReporting:
    def test_add_row_validates_width(self):
        result = ExperimentResult("x", "X", headers=["a", "b"])
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_column_lookup(self):
        result = ExperimentResult("x", "X", headers=["a", "b"])
        result.add_row(1, 2)
        result.add_row(3, 4)
        assert result.column("b") == [2, 4]

    def test_column_unknown(self):
        result = ExperimentResult("x", "X", headers=["a"])
        with pytest.raises(KeyError):
            result.column("z")

    def test_format_table_contains_everything(self):
        result = ExperimentResult("x", "Title", headers=["a"], notes="hello")
        result.add_row(1.23456)
        text = result.format_table()
        assert "Title" in text
        assert "1.235" in text
        assert "hello" in text

    def test_series_at_grid_step_interpolation(self):
        values = series_at_grid([0.1, 0.5, 0.9], [1.0, 2.0, 3.0],
                                [0.0, 0.5, 1.0])
        assert values == [1.0, 2.0, 3.0]

    def test_series_at_grid_validation(self):
        with pytest.raises(ValueError):
            series_at_grid([0.1], [1.0, 2.0], [0.5])
        with pytest.raises(ValueError):
            series_at_grid([], [], [0.5])


class TestExperimentConfig:
    def test_scale_of(self):
        config = ExperimentConfig(scale_factor=2.0)
        assert config.scale_of("wiki") == pytest.approx(0.40)

    def test_with_overrides(self):
        config = ExperimentConfig().with_overrides(runs=9)
        assert config.runs == 9
        assert ExperimentConfig().runs != 9


class TestDrivers:
    def test_registry_complete(self):
        expected = {
            "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11", "stream_time", "table1", "table2", "table3",
        }
        assert set(EXPERIMENTS) == expected

    def test_fig2_variant_rows(self):
        result = EXPERIMENTS["fig2"].run(TINY, iterations=2)
        variants = set(result.column("variant"))
        assert variants == {"origin", "scalable", "parallel+partition"}
        assert all(t >= 0 for t in result.column("avg_seconds"))

    def test_fig3_bins_cover_effort(self):
        result = EXPERIMENTS["fig3"].run(TINY, dataset="wiki")
        assert sum(result.column("samples")) > 0

    def test_fig4_histogram_sums_to_100(self):
        result = EXPERIMENTS["fig4"].run(TINY, checkpoints=(0.0, 0.2))
        for column in ("effort_0%", "effort_20%"):
            assert sum(result.column(column)) == pytest.approx(100.0, abs=0.5)

    def test_fig5_negative_correlation(self):
        config = TINY.with_overrides(runs=2)
        result = EXPERIMENTS["fig5"].run(config)
        rows = dict(zip(result.column("statistic"), result.column("value")))
        assert rows["pairs"] > 0
        assert rows["pearson"] < 0.2  # strongly negative at real scale

    def test_fig6_rows_per_strategy(self):
        result = EXPERIMENTS["fig6"].run(TINY, strategies=("random", "info"))
        assert len(result.rows) == 2
        for effort in result.column("effort_to_0.9"):
            assert 0.0 <= effort <= 1.0

    def test_table1_detection_rates_are_percentages(self):
        result = EXPERIMENTS["table1"].run(TINY, probabilities=(0.2,),
                                           effort_fraction=0.5)
        value = result.rows[0][1]
        assert 0.0 <= value <= 100.0

    def test_fig7_runs_with_errors(self):
        result = EXPERIMENTS["fig7"].run(
            TINY, strategies=("random",), error_probability=0.2
        )
        assert len(result.rows) == 1

    def test_fig8_saved_effort_rows(self):
        result = EXPERIMENTS["fig8"].run(
            TINY, skip_probabilities=(0.25,), targets=(0.7,)
        )
        assert len(result.rows) == 1
        saved = result.rows[0][2]
        assert -100.0 <= saved <= 100.0

    def test_fig9_indicator_columns(self):
        result = EXPERIMENTS["fig9"].run(TINY, dataset="wiki")
        assert result.headers == [
            "effort", "prec_improv_%", "URR_%", "CNG_%", "PRE_%", "PIR_%",
        ]
        assert len(result.rows) > 0

    def test_fig10_cost_saving_monotone_in_k(self):
        result = EXPERIMENTS["fig10"].run(
            TINY, batch_sizes=(1, 5), effort_fraction=0.4
        )
        savings = result.column("CS(alpha=0.5)_%")
        assert savings[1] > savings[0]

    def test_fig11_has_dynamic_row(self):
        result = EXPERIMENTS["fig11"].run(
            TINY, batch_sizes=(1, 5), thresholds=(0.7,)
        )
        ks = result.column("k")
        assert "dynamic" in ks

    def test_stream_time_rows(self):
        result = EXPERIMENTS["stream_time"].run(TINY)
        assert result.column("dataset") == ["wiki"]
        assert result.rows[0][2] >= 0.0

    def test_table2_tau_in_range(self):
        result = EXPERIMENTS["table2"].run(TINY, periods=(0.3,))
        tau = result.rows[0][1]
        assert -1.0 <= tau <= 1.0

    def test_table3_expert_slower_more_accurate(self):
        result = EXPERIMENTS["table3"].run(TINY, num_claims=20)
        row = result.rows[0]
        dataset, expert_time, crowd_time, expert_acc, crowd_acc = row
        assert expert_time > crowd_time
        assert expert_acc >= crowd_acc - 0.15
