"""Tests for the deterministic inference and ordering features.

Covers the mean-field E-step mode of iCRF, deterministic tie-breaking in
selection strategies, and the ablation experiment drivers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crf.partition import ComponentIndex
from repro.errors import InferenceError
from repro.experiments import ablations
from repro.experiments.runner import ExperimentConfig
from repro.guidance.base import SelectionContext
from repro.guidance.gain import GainEstimator
from repro.guidance.strategies import UncertaintyStrategy
from repro.inference.icrf import ICrf

from tests.fixtures import build_micro_database

TINY = ExperimentConfig(
    seed=5, runs=1, scale_factor=0.4, datasets=("wiki",),
    em_iterations=1, gibbs_samples=8, candidate_limit=8,
)


class TestMeanFieldEStep:
    def test_invalid_mode_rejected(self, micro_db):
        with pytest.raises(InferenceError):
            ICrf(micro_db, estep_mode="variational")

    def test_meanfield_is_deterministic(self):
        results = []
        for seed in (1, 2):
            db = build_micro_database()
            icrf = ICrf(db, estep_mode="meanfield", seed=seed)
            results.append(icrf.infer().marginals)
        assert np.allclose(results[0], results[1])

    def test_gibbs_mode_varies_with_seed(self):
        results = []
        for seed in (1, 2):
            db = build_micro_database()
            icrf = ICrf(db, estep_mode="gibbs", seed=seed)
            results.append(icrf.infer().marginals)
        assert not np.allclose(results[0], results[1])

    def test_meanfield_respects_labels(self, micro_db):
        icrf = ICrf(micro_db, estep_mode="meanfield", seed=0)
        micro_db.label(0, 0)
        result = icrf.infer()
        assert result.marginals[0] == 0.0
        assert result.grounding[0] == 0

    def test_meanfield_and_gibbs_agree_qualitatively(self):
        """With frozen weights, both E-steps must assign higher
        credibility to the claim with uncontested supporting evidence
        (c3) than to the contested c2.

        Weights are frozen (``update_weights=False``) because on a 3-claim
        corpus without labels the self-training M-step collapses towards
        uninformative weights, flattening all marginals.
        """
        db_a = build_micro_database()
        icrf_a = ICrf(db_a, estep_mode="gibbs", num_samples=200, seed=0)
        gibbs = icrf_a.infer(update_weights=False).marginals
        db_b = build_micro_database()
        icrf_b = ICrf(db_b, estep_mode="meanfield", seed=0)
        meanfield = icrf_b.infer(update_weights=False).marginals
        c2 = db_b.claim_position("c2")
        c3 = db_b.claim_position("c3")
        assert gibbs[c3] > gibbs[c2]
        assert meanfield[c3] > meanfield[c2]

    def test_meanfield_subset_restriction(self, micro_db):
        icrf = ICrf(micro_db, estep_mode="meanfield", seed=0)
        before = np.asarray(micro_db.probabilities).copy()
        icrf.infer(claim_subset=np.asarray([2]))
        after = np.asarray(micro_db.probabilities)
        assert after[0] == before[0]
        assert after[1] == before[1]


class TestDeterministicTies:
    def make_context(self, deterministic):
        db = build_micro_database()
        icrf = ICrf(db, estep_mode="meanfield", seed=0)
        icrf.infer()
        # Force an exact tie between all claims.
        db.set_probabilities(np.full(3, 0.5))
        gains = GainEstimator(icrf.model, ComponentIndex(db), seed=1)
        return SelectionContext(
            database=db,
            gains=gains,
            rng=np.random.default_rng(123),
            deterministic_ties=deterministic,
        )

    def test_uncertainty_deterministic_tie(self):
        context = self.make_context(True)
        picks = {UncertaintyStrategy().select(context) for _ in range(5)}
        assert picks == {0}

    def test_uncertainty_random_tie_spreads(self):
        context = self.make_context(False)
        picks = {UncertaintyStrategy().select(context) for _ in range(30)}
        assert len(picks) > 1

    def test_info_strategy_deterministic_run(self):
        """Two processes with deterministic ties and mean-field inference
        produce identical validation orders."""
        from repro.datasets import load_dataset
        from repro.guidance.strategies import make_strategy
        from repro.validation.oracle import SimulatedUser
        from repro.validation.process import ValidationProcess

        orders = []
        for seed in (10, 20):  # different process seeds
            db = load_dataset("wiki", seed=1, scale=0.1)
            icrf = ICrf(db, estep_mode="meanfield", seed=seed)
            process = ValidationProcess(
                db,
                strategy=make_strategy("info"),
                user=SimulatedUser(seed=seed),
                icrf=icrf,
                deterministic_ties=True,
                seed=seed,
            )
            trace = process.run(max_iterations=6)
            orders.append(trace.validated_claims())
        assert orders[0] == orders[1]


class TestAblations:
    def test_coupling_ablation_rows(self):
        result = ablations.coupling_ablation(TINY, dataset="wiki",
                                             effort_fraction=0.2)
        assert set(result.column("coupling")) == {"on", "off"}

    def test_aggregation_ablation_rows(self):
        result = ablations.aggregation_ablation(TINY, dataset="wiki",
                                                effort_fraction=0.2)
        assert set(result.column("aggregation")) == {"sum", "mean", "sqrt"}

    def test_warm_start_ablation_rows(self):
        result = ablations.warm_start_ablation(TINY, dataset="wiki",
                                               iterations=3)
        assert set(result.column("chain")) == {"warm", "cold"}
        for value in result.column("avg_infer_seconds"):
            assert value > 0

    def test_batch_selection_ablation_guarantee(self):
        result = ablations.batch_selection_ablation(
            TINY, dataset="wiki", k=2, candidate_limit=6
        )
        rows = {row[1]: row[2] for row in result.rows}
        if rows["exhaustive"] > 0:
            assert rows["greedy"] >= (1 - 1 / np.e) * rows["exhaustive"] - 1e-9
