"""Tests for trace accessors, gain caching, and generator statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crf.partition import ComponentIndex
from repro.data.grounding import Grounding
from repro.datasets import generate_dataset, get_profile
from repro.guidance.gain import GainConfig, GainEstimator
from repro.inference.icrf import ICrf
from repro.validation.session import IterationRecord, ValidationTrace

from tests.fixtures import build_micro_database


def record(iteration, claims, values, precision, repairs=0, entropy=1.0):
    return IterationRecord(
        iteration=iteration,
        claim_indices=list(claims),
        user_values=list(values),
        strategy_used="info",
        error_rate=0.1,
        hybrid_score=0.2,
        unreliable_ratio=0.1,
        entropy=entropy,
        precision=precision,
        grounding_changes=1,
        predictions_matched=[True] * len(claims),
        response_seconds=0.01,
        repairs=repairs,
    )


def make_trace():
    return ValidationTrace(
        num_claims=10,
        initial_precision=0.5,
        initial_entropy=4.0,
        records=[
            record(1, [0], [1], precision=0.6),
            record(2, [1, 2], [0, 1], precision=0.8, repairs=1),
            record(3, [3], [1], precision=0.95),
        ],
    )


class TestTraceAccessors:
    def test_total_validations_vs_effort(self):
        trace = make_trace()
        assert trace.total_validations() == 4
        assert trace.total_effort() == 5  # + one repair

    def test_efforts_with_and_without_repairs(self):
        trace = make_trace()
        plain = trace.efforts()
        with_repairs = trace.efforts(include_repairs=True)
        assert plain.tolist() == pytest.approx([0.1, 0.3, 0.4])
        assert with_repairs.tolist() == pytest.approx([0.1, 0.4, 0.5])

    def test_validated_claims_order(self):
        trace = make_trace()
        assert trace.validated_claims() == [0, 1, 2, 3]

    def test_effort_to_reach(self):
        trace = make_trace()
        assert trace.effort_to_reach(0.8) == pytest.approx(0.3)
        assert trace.effort_to_reach(0.99) is None

    def test_effort_to_reach_with_repairs(self):
        trace = make_trace()
        assert trace.effort_to_reach(0.8, include_repairs=True) == pytest.approx(0.4)

    def test_precision_improvements(self):
        trace = make_trace()
        improvements = trace.precision_improvements()
        # R = (P - 0.5) / 0.5
        assert improvements.tolist() == pytest.approx([0.2, 0.6, 0.9])

    def test_precision_improvements_without_truth(self):
        trace = make_trace()
        trace.initial_precision = None
        assert np.all(np.isnan(trace.precision_improvements()))

    def test_prediction_match_flags_flatten(self):
        trace = make_trace()
        assert trace.prediction_match_flags() == [True] * 4

    def test_final_grounding_roundtrip(self):
        trace = make_trace()
        trace.final_grounding = Grounding([1] * 10)
        assert trace.final_grounding.num_credible() == 10


class TestGainBaselineCache:
    def test_batched_gains_match_scalar_gains(self):
        """The per-component baseline cache must not change results."""
        db = build_micro_database()
        icrf = ICrf(db, estep_mode="meanfield", seed=0)
        icrf.infer(update_weights=False)
        gains = GainEstimator(
            icrf.model,
            ComponentIndex(db),
            config=GainConfig(inference_mode="meanfield"),
            seed=1,
        )
        batched = gains.information_gains([0, 1, 2])
        singles = [gains.information_gain(i) for i in range(3)]
        assert np.allclose(batched, singles)

    def test_cache_cleared_between_calls(self):
        db = build_micro_database()
        icrf = ICrf(db, estep_mode="meanfield", seed=0)
        icrf.infer(update_weights=False)
        gains = GainEstimator(
            icrf.model,
            ComponentIndex(db),
            config=GainConfig(inference_mode="meanfield"),
            seed=1,
        )
        first = gains.information_gains([0, 1, 2])
        # Mutating the state must be reflected in a later call (no stale
        # cache): label one claim and re-query.
        db.label(1, 0)
        second = gains.information_gains([0, 1, 2])
        assert second[1] == 0.0
        assert not np.allclose(first, second)

    def test_gain_at_maximum_uncertainty_bounded_by_log2_plus_propagation(self):
        db = build_micro_database()
        icrf = ICrf(db, estep_mode="meanfield", seed=0)
        icrf.infer(update_weights=False)
        gains = GainEstimator(
            icrf.model,
            ComponentIndex(db),
            config=GainConfig(inference_mode="meanfield"),
            seed=1,
        )
        values = gains.information_gains([0, 1, 2])
        # Self-entropy reduction is at most log 2 per claim; with a
        # 3-claim component total gain cannot exceed 3 log 2.
        assert np.all(values <= 3 * np.log(2) + 1e-9)


class TestGeneratorStatistics:
    @pytest.fixture(scope="class")
    def snopes_replica(self):
        return generate_dataset(get_profile("snopes"), seed=13, scale=0.02)

    def test_claim_popularity_is_heavy_tailed(self, snopes_replica):
        counts = np.asarray(
            [
                len(snopes_replica.cliques_of_claim(c))
                for c in range(snopes_replica.num_claims)
            ]
        )
        # Top 20% of claims should hold a disproportionate share of links.
        counts = np.sort(counts)[::-1]
        top = counts[: max(1, counts.size // 5)].sum()
        assert top / counts.sum() > 0.35

    def test_source_activity_is_heavy_tailed(self, snopes_replica):
        counts = np.asarray(
            [
                len(snopes_replica.cliques_of_source(s))
                for s in range(snopes_replica.num_sources)
            ]
        )
        counts = np.sort(counts)[::-1]
        top = counts[: max(1, counts.size // 10)].sum()
        assert top / max(counts.sum(), 1) > 0.2

    def test_difficulty_recorded_in_metadata(self, snopes_replica):
        difficulties = [
            c.metadata["difficulty"] for c in snopes_replica.claims
        ]
        assert all(0.0 <= d <= 1.0 for d in difficulties)
        assert np.std(difficulties) > 0.05

    def test_source_stances_are_self_consistent(self, snopes_replica):
        """A source's net stance towards a claim should rarely be torn:
        beliefs are decided once per (source, claim), so only the
        stance-extraction noise can split a pair's documents."""
        from collections import defaultdict

        votes = defaultdict(list)
        for clique in snopes_replica.cliques:
            votes[(clique.source_index, clique.claim_index)].append(
                clique.stance_sign
            )
        multi = {k: v for k, v in votes.items() if len(v) >= 3}
        if not multi:
            pytest.skip("no (source, claim) pair with 3+ documents")
        torn = sum(
            1 for signs in multi.values() if abs(sum(signs)) < len(signs) / 2
        )
        assert torn / len(multi) < 0.4

    def test_documents_per_claim_ratio_preserved(self):
        profile = get_profile("health")
        replica = generate_dataset(profile, seed=3, scale=0.01)
        ratio_full = profile.num_documents / profile.num_claims
        ratio_replica = replica.num_documents / replica.num_claims
        assert ratio_replica == pytest.approx(ratio_full, rel=0.25)
