"""Tests for the Gibbs sampler (§3.2 E-step) and its constraint handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crf.gibbs import GibbsSampler
from repro.crf.model import CrfModel
from repro.crf.weights import CrfWeights
from repro.errors import InferenceError

from tests.fixtures import build_micro_database


def make_model(coupling=1.0, bias=1.0):
    db = build_micro_database()
    weights = CrfWeights.zeros(2, 2, coupling=coupling)
    weights.values[0] = bias
    return CrfModel(db, weights=weights), db


class TestConstruction:
    def test_invalid_burn_in(self):
        model, _ = make_model()
        with pytest.raises(InferenceError):
            GibbsSampler(model, burn_in=-1)

    def test_invalid_num_samples(self):
        model, _ = make_model()
        with pytest.raises(InferenceError):
            GibbsSampler(model, num_samples=0)

    def test_invalid_thin(self):
        model, _ = make_model()
        with pytest.raises(InferenceError):
            GibbsSampler(model, thin=0)

    def test_state_none_before_first_sample(self):
        model, _ = make_model()
        assert GibbsSampler(model, seed=0).state is None


class TestSampling:
    def test_marginals_in_unit_interval(self):
        model, db = make_model()
        sampler = GibbsSampler(model, seed=0, num_samples=10)
        result = sampler.sample()
        assert np.all((result.marginals >= 0) & (result.marginals <= 1))

    def test_labels_are_pinned(self):
        model, db = make_model()
        db.label(0, 1)
        db.label(1, 0)
        sampler = GibbsSampler(model, seed=0, num_samples=10)
        result = sampler.sample()
        assert result.marginals[0] == 1.0
        assert result.marginals[1] == 0.0
        # Every sampled configuration respects the labels.
        for config_bytes in result.configuration_counts:
            config = np.frombuffer(config_bytes, dtype=np.int8)
            assert config[0] == 1
            assert config[1] == 0

    def test_mode_configuration_is_most_frequent(self):
        model, db = make_model()
        sampler = GibbsSampler(model, seed=0, num_samples=30)
        result = sampler.sample()
        counts = result.configuration_counts
        top = max(counts.values())
        assert counts[result.mode_configuration.tobytes()] == top

    def test_num_samples_honoured(self):
        model, db = make_model()
        sampler = GibbsSampler(model, seed=0, num_samples=12)
        result = sampler.sample()
        assert result.num_samples == 12
        assert sum(result.configuration_counts.values()) == 12

    def test_all_labelled_shortcut(self):
        model, db = make_model()
        for claim in range(db.num_claims):
            db.label(claim, 1)
        sampler = GibbsSampler(model, seed=0)
        result = sampler.sample()
        assert result.num_samples == 1
        assert result.marginals.tolist() == [1.0, 1.0, 1.0]

    def test_subset_restriction_freezes_outside(self):
        model, db = make_model()
        db.set_probabilities(np.asarray([0.9, 0.1, 0.5]))
        sampler = GibbsSampler(model, seed=0, num_samples=10)
        result = sampler.sample(claim_subset=np.asarray([2]))
        # Claims 0 and 1 were not resampled: marginals unchanged.
        assert result.marginals[0] == pytest.approx(0.9)
        assert result.marginals[1] == pytest.approx(0.1)

    def test_warm_start_persists_state(self):
        model, db = make_model()
        sampler = GibbsSampler(model, seed=0, num_samples=5)
        sampler.sample()
        state = sampler.state
        assert state is not None
        assert state.shape == (db.num_claims,)

    def test_reset_clears_state(self):
        model, db = make_model()
        sampler = GibbsSampler(model, seed=0, num_samples=5)
        sampler.sample()
        sampler.reset()
        assert sampler.state is None

    def test_deterministic_given_seed(self):
        model_a, _ = make_model()
        model_b, _ = make_model()
        result_a = GibbsSampler(model_a, seed=42, num_samples=8).sample()
        result_b = GibbsSampler(model_b, seed=42, num_samples=8).sample()
        assert np.allclose(result_a.marginals, result_b.marginals)


class TestDistributionalCorrectness:
    def test_strong_positive_field_pushes_marginal_up(self):
        """A claim with strong supporting evidence should sample credible."""
        model, db = make_model(coupling=0.0, bias=3.0)
        sampler = GibbsSampler(model, seed=1, burn_in=10, num_samples=50)
        result = sampler.sample()
        # c3 has a single supporting document: local field = +3.
        c3 = db.claim_position("c3")
        assert result.marginals[c3] > 0.8

    def test_zero_field_samples_near_half(self):
        model, db = make_model(coupling=0.0, bias=0.0)
        sampler = GibbsSampler(model, seed=1, burn_in=10, num_samples=200)
        result = sampler.sample()
        assert abs(result.marginals[0] - 0.5) < 0.15

    def test_matches_exact_conditional_on_chain_pair(self):
        """Empirical marginals track the exact enumeration distribution."""
        model, db = make_model(coupling=0.5, bias=1.0)
        # Exact marginals by enumerating all 8 configurations.
        configs = [(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)]
        log_potentials = np.asarray(
            [model.joint_log_potential(np.asarray(cfg, dtype=np.int8))
             for cfg in configs]
        )
        weights = np.exp(log_potentials - log_potentials.max())
        weights /= weights.sum()
        exact = np.zeros(3)
        for weight, cfg in zip(weights, configs):
            exact += weight * np.asarray(cfg)
        sampler = GibbsSampler(model, seed=3, burn_in=50, num_samples=600)
        result = sampler.sample()
        assert np.allclose(result.marginals, exact, atol=0.1)

    def test_label_propagates_through_coupling(self):
        """Labelling c1 credible should raise the marginal of c3 (same
        trustworthy source) relative to the unlabelled run."""
        model_a, db_a = make_model(coupling=1.5, bias=0.0)
        sampler_a = GibbsSampler(model_a, seed=5, burn_in=10, num_samples=100)
        base = sampler_a.sample().marginals

        model_b, db_b = make_model(coupling=1.5, bias=0.0)
        db_b.label(db_b.claim_position("c1"), 1)
        db_b.label(db_b.claim_position("c2"), 0)
        sampler_b = GibbsSampler(model_b, seed=5, burn_in=10, num_samples=100)
        labelled = sampler_b.sample().marginals

        c3 = db_b.claim_position("c3")
        assert labelled[c3] > base[c3] - 0.05
        assert labelled[c3] > 0.5
