"""End-to-end integration tests across the whole framework."""

from __future__ import annotations

import numpy as np

from repro import (
    ICrf,
    SimulatedUser,
    TruePrecisionGoal,
    ValidationProcess,
    load_dataset,
    make_strategy,
)
from repro.effort.termination import UncertaintyReductionCriterion
from repro.guidance.gain import GainConfig
from repro.streaming.process import StreamingFactChecker
from repro.streaming.stream import stream_from_database
from repro.validation.robustness import ConfirmationChecker


class TestGuidedValidationEndToEnd:
    def test_hybrid_reaches_high_precision_fast(self):
        """The headline behaviour: hybrid guidance reaches 0.9 precision
        with clearly less than full effort on the wiki replica."""
        db = load_dataset("wiki", seed=3, scale=0.2)
        process = ValidationProcess(
            db,
            strategy=make_strategy("hybrid"),
            user=SimulatedUser(seed=3),
            goal=TruePrecisionGoal(0.9),
            seed=3,
        )
        trace = process.run()
        assert process.current_precision() >= 0.9
        assert trace.efforts()[-1] < 0.95

    def test_guided_beats_random_on_average(self):
        """Across seeds, hybrid needs no more effort than random to 0.9.

        At this miniature scale (~31 claims) single-seed outcomes are
        noisy (the effort quantum is 1/31), so the comparison averages
        five seeds and allows a one-quantum-scale tolerance; the strict
        dominance claim is asserted at experiment scale by
        ``benchmarks/test_fig6_guidance.py``.
        """
        efforts = {"hybrid": [], "random": []}
        for seed in (1, 2, 3, 4, 5):
            for name in efforts:
                db = load_dataset("wiki", seed=100 + seed, scale=0.2)
                process = ValidationProcess(
                    db,
                    strategy=make_strategy(name),
                    user=SimulatedUser(seed=seed),
                    goal=TruePrecisionGoal(0.9),
                    seed=seed,
                )
                trace = process.run()
                reached = trace.effort_to_reach(0.9)
                efforts[name].append(reached if reached is not None else 1.0)
        assert np.mean(efforts["hybrid"]) <= np.mean(efforts["random"]) + 0.1

    def test_full_pipeline_with_all_features(self):
        """Robustness + termination + batching + erroneous user together."""
        db = load_dataset("wiki", seed=5, scale=0.2)
        process = ValidationProcess(
            db,
            strategy=make_strategy("hybrid"),
            user=SimulatedUser(error_probability=0.1, seed=5),
            goal=TruePrecisionGoal(0.95),
            robustness=ConfirmationChecker(interval=5),
            termination=[UncertaintyReductionCriterion(threshold=0.001,
                                                       patience=5)],
            batch_size=2,
            gain_config=GainConfig(localize=True, parallel=False),
            seed=5,
        )
        trace = process.run()
        assert trace.stop_reason in ("goal", "exhausted", "urr", "budget")
        assert trace.iterations > 0
        final_precision = process.current_precision()
        assert final_precision is not None and final_precision >= 0.5

    def test_trace_series_have_consistent_lengths(self):
        db = load_dataset("wiki", seed=7, scale=0.15)
        process = ValidationProcess(
            db,
            strategy=make_strategy("uncertainty"),
            user=SimulatedUser(seed=7),
            seed=7,
        )
        trace = process.run(max_iterations=5)
        n = trace.iterations
        assert len(trace.efforts()) == n
        assert len(trace.precisions()) == n
        assert len(trace.entropies()) == n
        assert len(trace.response_times()) == n
        assert len(trace.hybrid_scores()) == n


class TestStreamingIntegration:
    def test_stream_then_validate_matches_offline_claims(self):
        """Claims validated after a full stream replay are real claims of
        the original corpus and labels propagate back to the checker."""
        db = load_dataset("wiki", seed=9, scale=0.15)
        checker = StreamingFactChecker(seed=9)
        for arrival in stream_from_database(db):
            checker.observe(arrival)
        snapshot = checker.database
        icrf = ICrf(snapshot, seed=9)
        weights = checker.weights
        assert weights is not None
        icrf.set_weights(weights)
        process = ValidationProcess(
            snapshot,
            strategy=make_strategy("hybrid"),
            user=SimulatedUser(seed=9),
            icrf=icrf,
            seed=9,
        )
        process.initialize()
        record = process.step()
        claim_id = snapshot.claim_id(record.claim_indices[0])
        checker.record_label(claim_id, record.user_values[0])
        checker.receive_weights(icrf.weights)
        position = checker.database.claim_position(claim_id)
        assert checker.database.label_of(position) == record.user_values[0]

    def test_streaming_model_usable_for_grounding(self):
        db = load_dataset("wiki", seed=13, scale=0.1)
        checker = StreamingFactChecker(seed=13)
        for arrival in stream_from_database(db):
            checker.observe(arrival)
        probabilities = np.asarray(checker.database.probabilities)
        assert probabilities.shape == (db.num_claims,)
        assert np.all((probabilities >= 0) & (probabilities <= 1))


class TestPublicApi:
    def test_quickstart_from_docstring(self):
        """The quickstart in repro.__doc__ must actually work."""
        database = load_dataset("snopes", seed=7, scale=0.004)
        process = ValidationProcess(
            database,
            strategy=make_strategy("hybrid"),
            user=SimulatedUser(seed=7),
            goal=TruePrecisionGoal(0.9),
            seed=7,
        )
        trace = process.run()
        assert trace.stop_reason in ("goal", "exhausted")

    def test_version_exported(self):
        import repro

        assert repro.__version__
