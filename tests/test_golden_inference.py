"""Golden-value regression tests for the inference hot path.

Seed-RNG outputs of :class:`~repro.inference.icrf.ICrf` and
:class:`~repro.crf.gibbs.GibbsSampler` are frozen under ``tests/golden/``
and every backend must reproduce them:

* the ``reference`` backend guards the seed semantics against accidental
  change;
* the ``numpy`` backend documents that the vectorised engine is
  numerically equivalent to the seed path — identical marginals,
  groundings, and chain states for identical seeds.

Marginals, groundings and chain states are compared **exactly**.  Weights
come out of TRON matrix algebra whose last-ulp rounding can differ across
BLAS builds, so they carry a documented tolerance of 1e-8.

To re-record after an intentional semantic change::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_inference.py

Fixtures are always recorded from the ``reference`` backend.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.crf.gibbs import GibbsSampler
from repro.crf.model import CrfModel
from repro.crf.weights import CrfWeights
from repro.datasets import load_dataset
from repro.inference.icrf import ICrf
from tests.fixtures import build_micro_database

GOLDEN_DIR = Path(__file__).parent / "golden"
WEIGHT_TOLERANCE = 1e-8

BACKENDS = ("reference", "numpy", "sharded")


def _micro_icrf_outputs(backend: str) -> dict:
    """Two chained ICrf inferences on the micro corpus (cold + warm)."""
    database = build_micro_database()
    icrf = ICrf(
        database, em_iterations=3, num_samples=12, burn_in=4,
        engine=backend, seed=7,
    )
    first = icrf.infer()
    database.label(0, 1)
    second = icrf.infer()
    return {
        "first_marginals": first.marginals.tolist(),
        "first_grounding": first.grounding.values.tolist(),
        "first_weights": first.weights.values.tolist(),
        "second_marginals": second.marginals.tolist(),
        "second_grounding": second.grounding.values.tolist(),
        "second_weights": second.weights.values.tolist(),
        "chain_state": icrf.sampler.state.tolist(),
    }


def _wiki_icrf_outputs(backend: str) -> dict:
    """One EM round at reduced wiki scale."""
    database = load_dataset("wiki", seed=42, scale=0.3)
    icrf = ICrf(
        database, em_iterations=2, num_samples=10, burn_in=3,
        engine=backend, seed=123,
    )
    result = icrf.infer()
    return {
        "marginals": result.marginals.tolist(),
        "grounding": result.grounding.values.tolist(),
        "weights": result.weights.values.tolist(),
    }


def _wiki_gibbs_outputs(backend: str) -> dict:
    """Raw sampler pass with non-trivial weights, cold then warm."""
    database = load_dataset("wiki", seed=42, scale=0.3)
    database.label(1, 1)
    database.label(4, 0)
    rng = np.random.default_rng(3)
    size = 2 + database.document_features.shape[1] \
        + database.source_features.shape[1]
    weights = CrfWeights(0.5 * rng.normal(size=size))
    model = CrfModel(database, weights=weights)
    from repro.inference.engine import create_engine

    sampler = GibbsSampler(
        model, burn_in=4, num_samples=12, seed=11,
        engine=create_engine(model, backend),
    )
    cold = sampler.sample()
    warm = sampler.sample()
    return {
        "cold_marginals": cold.marginals.tolist(),
        "cold_mode": cold.mode_configuration.tolist(),
        "warm_marginals": warm.marginals.tolist(),
        "warm_mode": warm.mode_configuration.tolist(),
        "chain_state": sampler.state.tolist(),
    }


GOLDEN_CASES = {
    "micro_icrf": _micro_icrf_outputs,
    "wiki_icrf": _wiki_icrf_outputs,
    "wiki_gibbs": _wiki_gibbs_outputs,
}

#: Keys compared with the documented weight tolerance instead of exactly.
TOLERANT_KEYS = ("first_weights", "second_weights", "weights")


def _fixture_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


@pytest.fixture(scope="module", autouse=True)
def regenerate_if_requested():
    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        for name, compute in GOLDEN_CASES.items():
            payload = compute("reference")
            _fixture_path(name).write_text(
                json.dumps(payload, indent=2) + "\n", encoding="utf-8"
            )


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
@pytest.mark.parametrize("backend", BACKENDS)
def test_golden(name, backend):
    path = _fixture_path(name)
    if not path.exists():
        pytest.fail(
            f"golden fixture {path} missing; record it with REGEN_GOLDEN=1"
        )
    expected = json.loads(path.read_text(encoding="utf-8"))
    actual = GOLDEN_CASES[name](backend)
    assert set(actual) == set(expected)
    for key, value in expected.items():
        produced = np.asarray(actual[key])
        recorded = np.asarray(value)
        if key in TOLERANT_KEYS:
            assert np.allclose(produced, recorded, rtol=0.0,
                               atol=WEIGHT_TOLERANCE), key
        else:
            assert np.array_equal(produced, recorded), (
                f"{name}/{key} diverged from the golden fixture"
            )
