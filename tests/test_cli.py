"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.datasets import load_database


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_command_parses(self):
        args = build_parser().parse_args(
            ["experiment", "fig6", "--runs", "1", "--datasets", "wiki"]
        )
        assert args.command == "experiment"
        assert args.name == "fig6"
        assert args.datasets == ["wiki"]

    def test_experiment_rejects_unknown_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_validate_defaults(self):
        args = build_parser().parse_args(["validate"])
        assert args.dataset == "snopes"
        assert args.strategy == "hybrid"
        assert args.goal == 0.9

    def test_generate_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.spool_dir is None
        assert args.workers == 4
        assert args.checkpoint_every == 1

    def test_serve_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--spool-dir", "spool", "--workers", "2",
             "--checkpoint-every", "0", "--port-file", "p.txt"]
        )
        assert args.port == 0
        assert args.spool_dir == "spool"
        assert args.checkpoint_every == 0
        assert args.port_file == "p.txt"


class TestCommands:
    def test_generate_writes_loadable_json(self, tmp_path, capsys):
        out = tmp_path / "corpus.json"
        code = main(
            ["generate", "--dataset", "wiki", "--scale", "0.05",
             "--seed", "3", "--out", str(out)]
        )
        assert code == 0
        database = load_database(out)
        assert database.num_claims > 0
        assert "wrote" in capsys.readouterr().out

    def test_generate_output_is_valid_json(self, tmp_path):
        out = tmp_path / "corpus.json"
        main(["generate", "--dataset", "wiki", "--scale", "0.05",
              "--out", str(out)])
        payload = json.loads(out.read_text())
        assert payload["version"] == 1

    def test_validate_runs_to_goal(self, capsys):
        code = main(
            ["validate", "--dataset", "wiki", "--scale", "0.1",
             "--seed", "3", "--goal", "0.8", "--quiet"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "stop reason" in output
        assert "final precision" in output

    def test_validate_verbose_prints_iterations(self, capsys):
        main(
            ["validate", "--dataset", "wiki", "--scale", "0.1",
             "--seed", "3", "--goal", "0.8", "--budget", "3"]
        )
        output = capsys.readouterr().out
        assert "initial precision" in output

    def test_experiment_prints_table(self, capsys):
        code = main(
            ["experiment", "table3", "--runs", "1",
             "--scale-factor", "0.5", "--datasets", "wiki"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Table 3" in output
        assert "wiki" in output


class TestSessionWorkflow:
    """The declarative session flags: --save-spec / --spec / --checkpoint / --resume."""

    def test_save_spec_writes_session_spec_json(self, tmp_path, capsys):
        from repro.api import SessionSpec

        out = tmp_path / "spec.json"
        code = main(
            ["validate", "--dataset", "wiki", "--scale", "0.1",
             "--seed", "3", "--goal", "0.85", "--save-spec", str(out)]
        )
        assert code == 0
        spec = SessionSpec.from_json(out.read_text())
        assert spec.dataset.name == "wiki"
        assert spec.effort.goal.threshold == 0.85

    def test_spec_checkpoint_resume_round_trip(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        ckpt_path = tmp_path / "ckpt.json"
        main(
            ["validate", "--dataset", "wiki", "--scale", "0.1", "--seed", "3",
             "--goal", "0.9", "--budget", "2", "--save-spec", str(spec_path)]
        )
        code = main(
            ["validate", "--spec", str(spec_path), "--quiet",
             "--checkpoint", str(ckpt_path)]
        )
        assert code == 0
        assert ckpt_path.exists()
        capsys.readouterr()
        code = main(["validate", "--resume", str(ckpt_path), "--quiet"])
        assert code == 0
        assert "stop reason" in capsys.readouterr().out

    def test_resume_rejects_streaming_checkpoint(self, tmp_path, capsys):
        from repro.api import FactCheckSession, SessionSpec
        from repro.streaming import stream_from_database
        from tests.fixtures import build_micro_database

        session = FactCheckSession(
            SessionSpec(mode="streaming", seed=1)
        ).open()
        for arrival in stream_from_database(build_micro_database()):
            session.observe(arrival)
        ckpt = tmp_path / "stream.json"
        session.save(ckpt)
        code = main(["validate", "--resume", str(ckpt)])
        assert code == 2
        assert "batch" in capsys.readouterr().out
