"""Claim streams: turning a corpus into an arrival sequence (§7).

The streaming experiments replay a corpus "in the order of posting time"
(§8.8).  Synthetic corpora carry no timestamps, so document index order
serves as posting order: a claim *arrives* with the first document that
references it, together with any sources and documents not seen before.
Later documents that reference an already-arrived claim are delivered as
evidence updates attached to the next arrival.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.data.database import FactDatabase
from repro.data.entities import Claim, Document, Source


@dataclass
class ClaimArrival:
    """One streaming event: a new claim plus its not-yet-seen context.

    Attributes:
        claim: The newly arriving claim (Alg. 2 line 1); ``None`` for a
            trailing evidence-only event delivering documents about
            already-arrived claims.
        documents: Documents delivered with this arrival (the claim's
            first document plus any backlog referencing earlier claims).
        sources: Sources appearing for the first time in this event.
    """

    claim: Optional[Claim]
    documents: List[Document] = field(default_factory=list)
    sources: List[Source] = field(default_factory=list)


def arrival_to_dict(arrival: ClaimArrival) -> dict:
    """Render one arrival as a JSON-compatible entry (the service wire form).

    Entities reuse the :mod:`repro.datasets.io` corpus format, so a corpus
    file and a claim stream speak the same dialect.
    """
    from repro.datasets.io import claim_to_dict, document_to_dict, source_to_dict

    return {
        "claim": None if arrival.claim is None else claim_to_dict(arrival.claim),
        "documents": [document_to_dict(entry) for entry in arrival.documents],
        "sources": [source_to_dict(entry) for entry in arrival.sources],
    }


def arrival_from_dict(payload: dict) -> ClaimArrival:
    """Inverse of :func:`arrival_to_dict`."""
    from repro.datasets.io import claim_from_dict, document_from_dict, source_from_dict

    claim = payload.get("claim")
    return ClaimArrival(
        claim=None if claim is None else claim_from_dict(claim),
        documents=[document_from_dict(entry) for entry in payload.get("documents", [])],
        sources=[source_from_dict(entry) for entry in payload.get("sources", [])],
    )


def stream_from_database(database: FactDatabase) -> Iterator[ClaimArrival]:
    """Replay a corpus as a claim-arrival stream in posting order.

    Iterates documents in index order; when a document references a claim
    that has not arrived yet, a :class:`ClaimArrival` is emitted carrying
    the claim, all pending documents (including this one), and all sources
    those documents introduced.  Sources that never published a document
    are delivered with the trailing evidence-only event, so the stream's
    end-state entity sets match the corpus exactly.  Claims never
    referenced by any document are emitted last with empty context.

    Yields:
        :class:`ClaimArrival` events covering every claim exactly once.
    """
    seen_claims: set = set()
    seen_sources: set = set()
    pending_documents: List[Document] = []
    pending_sources: List[Source] = []

    source_by_id = {source.source_id: source for source in database.sources}
    claim_by_id = {claim.claim_id: claim for claim in database.claims}

    for document in database.documents:
        if document.source_id not in seen_sources:
            seen_sources.add(document.source_id)
            pending_sources.append(source_by_id[document.source_id])
        pending_documents.append(document)
        new_claims = [
            link.claim_id
            for link in document.claim_links
            if link.claim_id not in seen_claims
        ]
        for claim_id in new_claims:
            seen_claims.add(claim_id)
            yield ClaimArrival(
                claim=claim_by_id[claim_id],
                documents=pending_documents,
                sources=pending_sources,
            )
            pending_documents = []
            pending_sources = []

    # Sources without any document never enter via the document walk;
    # deliver them (in corpus order) with the trailing backlog so replaying
    # the stream reproduces the corpus entity sets exactly.
    pending_sources.extend(
        source
        for source in database.sources
        if source.source_id not in seen_sources
    )
    if pending_documents or pending_sources:
        # Trailing documents only reference already-arrived claims:
        # deliver them — and any document-less sources — as an
        # evidence-only event.
        yield ClaimArrival(
            claim=None,
            documents=pending_documents,
            sources=pending_sources,
        )

    for claim in database.claims:
        if claim.claim_id not in seen_claims:
            seen_claims.add(claim.claim_id)
            yield ClaimArrival(claim=claim, documents=[], sources=[])
