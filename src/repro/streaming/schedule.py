"""Step-size schedules for stochastic-approximation EM (§7, Eq. 29).

The online update interpolates the expected log-likelihood with a
decreasing sequence of positive step sizes γ_t satisfying the
Robbins–Monro conditions ``Σ γ_t = ∞`` and ``Σ γ_t² < ∞``.  The canonical
choice ``γ_t = scale / t^β`` with β ∈ (0.5, 1] is implemented here.
"""

from __future__ import annotations

from repro.errors import StreamingError


class RobbinsMonroSchedule:
    """Polynomially decaying step sizes ``γ_t = scale / t^β``.

    Args:
        beta: Decay exponent; must lie in (0.5, 1] for the Robbins–Monro
            conditions to hold.
        scale: Multiplier of the first step; γ_1 = scale (clipped to 1).
    """

    def __init__(self, beta: float = 0.7, scale: float = 1.0) -> None:
        if not 0.5 < beta <= 1.0:
            raise StreamingError(
                f"beta must lie in (0.5, 1] for Robbins-Monro validity, "
                f"got {beta}"
            )
        if scale <= 0:
            raise StreamingError(f"scale must be positive, got {scale}")
        self.beta = float(beta)
        self.scale = float(scale)

    def step_size(self, t: int) -> float:
        """γ_t for the 1-based arrival index ``t``."""
        if t < 1:
            raise StreamingError(f"t must be at least 1, got {t}")
        return min(self.scale / (t**self.beta), 1.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RobbinsMonroSchedule(beta={self.beta}, scale={self.scale})"
