"""Streaming fact checking (§7): claim streams and online EM (Alg. 2)."""

from repro.streaming.process import StreamingFactChecker, StreamUpdate
from repro.streaming.schedule import RobbinsMonroSchedule
from repro.streaming.stream import (
    ClaimArrival,
    arrival_from_dict,
    arrival_to_dict,
    stream_from_database,
)

__all__ = [
    "ClaimArrival",
    "RobbinsMonroSchedule",
    "StreamUpdate",
    "StreamingFactChecker",
    "arrival_from_dict",
    "arrival_to_dict",
    "stream_from_database",
]
