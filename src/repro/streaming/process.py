"""Streaming fact checking — Algorithm 2 of the paper (§7).

:class:`StreamingFactChecker` consumes :class:`~repro.streaming.stream.ClaimArrival`
events.  Per arrival it (lines 2–6) extends the entity sets, then (lines
8–9) performs one *online EM* update: a light E-step over the grown model
followed by a stochastic-approximation parameter move

    W_t = W_{t-1} + γ_t (Ŵ_t - W_{t-1})

where ``Ŵ_t`` maximises the expected log-likelihood of the current data
(one warm-started TRON step) and γ_t follows a Robbins–Monro schedule —
the practical realisation of Eq. 29–30, in which the interpolated
Q-function is represented through its maximiser rather than stored
symbolically.  Credibility estimates and user labels are carried across
arrivals by claim identifier, so earlier inference is reused, never
recomputed from scratch.

By default the snapshot database, model and engine are *grown in place*
per arrival (``incremental=True``): :meth:`FactDatabase.extend` merges
the new cliques into the columnar arrays, the featurizer patches its
cached matrices, and the engine refreshes its gathered views — the
literal reading of the paper's reuse discipline.  ``incremental=False``
falls back to rebuilding the snapshot from scratch per arrival; the two
paths produce bit-for-bit identical results (the rebuild is kept as the
reference oracle in the test suite), the incremental one just does it
without the O(corpus) per-arrival rebuild cost.

The checker interoperates with the validation process (Alg. 1): the
current parameters can be handed to / received from an
:class:`~repro.inference.icrf.ICrf` instance (Alg. 2 lines 7 and 10), which
the Table 2 experiment uses to interleave validation with arrivals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro._legacy import warn_legacy
from repro.crf.model import CrfModel
from repro.crf.potentials import sigmoid
from repro.crf.weights import CrfWeights
from repro.data.database import FactDatabase
from repro.data.entities import Claim, Document, Source
from repro.errors import StreamingError
from repro.inference.engine import (
    EngineConfig,
    InferenceEngine,
    create_engine,
)
from repro.inference.mstep import MStepConfig, run_m_step
from repro.streaming.schedule import RobbinsMonroSchedule
from repro.streaming.stream import ClaimArrival
from repro.utils.rng import RandomState, ensure_rng


@dataclass
class StreamUpdate:
    """Outcome of processing one arrival.

    Attributes:
        arrival_index: 1-based arrival counter t.
        elapsed_seconds: Total wall-clock time of the arrival (the §8.8
            measurement): ``ingest_seconds + update_seconds``.
        step_size: γ_t used for the parameter interpolation.
        weights: Parameters W_t after the update.
        num_claims / num_documents / num_sources: Entity counts after the
            arrival.
        ingest_seconds: Structure phase — entity bookkeeping plus growing
            (or rebuilding) the snapshot database/model/engine (Alg. 2
            lines 2–6).
        update_seconds: Online-EM phase — the mean-field E-step, the
            stochastic-approximation M-step, and marginal persistence
            (Alg. 2 lines 8–9).
    """

    arrival_index: int
    elapsed_seconds: float
    step_size: float
    weights: CrfWeights
    num_claims: int
    num_documents: int
    num_sources: int
    ingest_seconds: float = 0.0
    update_seconds: float = 0.0


class StreamingFactChecker:
    """Online fact-checking model over a claim stream (Alg. 2).

    Args:
        schedule: Step-size schedule for the stochastic approximation.
        aggregation: Claim-evidence aggregation mode of the CRF.
        coupling_enabled: Whether the indirect relation is active.
        mstep: M-step hyper-parameters (the online step uses a tightened
            iteration budget regardless).
        meanfield_steps: E-step fixed-point iterations per arrival.
        initial_bias: Cold-start bias weight of a fresh model.
        prior: Credibility prior of newly arrived claims.
        engine: Hot-path backend selection (see
            :mod:`repro.inference.engine`); the snapshot model keeps one
            engine of this backend, refreshed in place as arrivals grow
            the structure.
        incremental: Grow the snapshot database/model/engine in place per
            arrival (default).  ``False`` rebuilds the snapshot from
            scratch per arrival — same results bit for bit, kept as the
            reference oracle.
        allow_pending_labels: Accept :meth:`record_label` for claims that
            have not arrived yet, parking them until the claim does.
            When ``False`` (default) labelling an unknown claim raises
            :class:`~repro.errors.StreamingError`.
        seed: Seed or generator.
    """

    #: Not checkpointed (lint rule STATE001): pure configuration, all of
    #: it restored from the session spec on resume.  Everything that
    #: drifts per arrival — corpus, weights, probabilities, labels, RNG,
    #: step counter, rebuilt model/database — is carried (or explicitly
    #: reconstructed) by ``state_dict``/``load_state_dict``.
    _STATE_EXCLUDED = (
        "_schedule",
        "_aggregation",
        "_coupling_enabled",
        "_mstep",
        "_meanfield_steps",
        "_initial_bias",
        "_prior",
        "_engine_config",
        "_incremental",
        "_allow_pending_labels",
    )

    def __init__(
        self,
        schedule: Optional[RobbinsMonroSchedule] = None,
        aggregation: str = "sqrt",
        coupling_enabled: bool = True,
        mstep: Optional[MStepConfig] = None,
        meanfield_steps: int = 3,
        initial_bias: float = 1.0,
        prior: float = 0.5,
        engine: Union[None, str, EngineConfig] = None,
        incremental: bool = True,
        allow_pending_labels: bool = False,
        seed: RandomState = None,
    ) -> None:
        warn_legacy(
            "StreamingFactChecker(...) with keyword arguments",
            "repro.api.FactCheckSession with a SessionSpec(mode='streaming')",
        )
        self._schedule = schedule if schedule is not None else RobbinsMonroSchedule()
        self._aggregation = aggregation
        self._coupling_enabled = coupling_enabled
        self._mstep = mstep if mstep is not None else MStepConfig(max_iterations=5)
        self._meanfield_steps = meanfield_steps
        self._initial_bias = float(initial_bias)
        self._prior = float(prior)
        self._engine_config = (
            engine if isinstance(engine, EngineConfig)
            else EngineConfig() if engine is None
            else EngineConfig(backend=engine)
        )
        self._engine: Optional[InferenceEngine] = None
        self._incremental = bool(incremental)
        self._allow_pending_labels = bool(allow_pending_labels)
        self._rng = ensure_rng(seed)

        self._sources: List[Source] = []
        self._documents: List[Document] = []
        self._claims: List[Claim] = []
        self._known_sources: set = set()
        self._known_documents: set = set()
        self._known_claims: set = set()
        self._probabilities: Dict[str, float] = {}
        self._labels: Dict[str, int] = {}
        self._pending_labels: Dict[str, int] = {}
        self._weights: Optional[CrfWeights] = None
        self._t = 0
        self._database: Optional[FactDatabase] = None
        self._model: Optional[CrfModel] = None

    # ------------------------------------------------------------------
    # Declarative construction and checkpoint state
    # ------------------------------------------------------------------

    @classmethod
    def from_spec(cls, spec, seed: RandomState = None):
        """Construct from a declarative :class:`repro.api.SessionSpec`.

        Uses ``spec.stream`` for the online-EM schedule and
        ``spec.inference`` for the shared model settings; the preferred
        entry point is :class:`repro.api.FactCheckSession`.
        """
        from repro.api.build import build_checker

        return build_checker(spec, seed=seed)

    def state_dict(self) -> dict:
        """Serialise the complete online-EM state (JSON-compatible)."""
        from repro.datasets.io import (
            claim_to_dict,
            document_to_dict,
            source_to_dict,
        )

        state = self.mutable_state_dict()
        state.update(
            {
                "sources": [source_to_dict(source) for source in self._sources],
                "documents": [
                    document_to_dict(doc) for doc in self._documents
                ],
                "claims": [claim_to_dict(claim) for claim in self._claims],
            }
        )
        return state

    def mutable_state_dict(self) -> dict:
        """Serialise the online-EM state *without* the streamed entities.

        The compact streaming checkpoints of :mod:`repro.api` store this
        together with a stream position and fingerprint; the entities are
        regenerated by replaying the declared stream source
        (:meth:`replay_structure`) instead of being embedded.
        """
        from repro.utils.rng import rng_state

        self._sync_probabilities()
        return {
            "t": self._t,
            "probabilities": dict(self._probabilities),
            "labels": dict(self._labels),
            "pending_labels": dict(self._pending_labels),
            "weights": (
                None if self._weights is None else self._weights.values.tolist()
            ),
            "rng": rng_state(self._rng),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot bit-for-bit.

        The checker must have been constructed with the same configuration
        (schedule, aggregation, engine backend, …) — typically from the
        same :class:`~repro.api.SessionSpec`.
        """
        from repro.datasets.io import (
            claim_from_dict,
            document_from_dict,
            source_from_dict,
        )

        self._sources = [source_from_dict(entry) for entry in state["sources"]]
        self._documents = [
            document_from_dict(entry) for entry in state["documents"]
        ]
        self._claims = [claim_from_dict(entry) for entry in state["claims"]]
        self._known_sources = {source.source_id for source in self._sources}
        self._known_documents = {doc.document_id for doc in self._documents}
        self._known_claims = {claim.claim_id for claim in self._claims}
        self.load_mutable_state(state)

    def replay_structure(self, arrivals) -> int:
        """Re-ingest arrivals structurally, without any online-EM work.

        Used when resuming from a compact checkpoint: the declared stream
        source replays the first ``t`` arrivals to regenerate the entity
        sets, then :meth:`load_mutable_state` overlays the saved
        probabilities, labels, weights and RNG position.  Returns the
        number of arrivals replayed.
        """
        if self._t or self._sources or self._documents or self._claims:
            raise StreamingError(
                "replay_structure requires a freshly constructed checker"
            )
        count = 0
        for arrival in arrivals:
            self._ingest(arrival)
            count += 1
        self._t = count
        return count

    def load_mutable_state(self, state: dict) -> None:
        """Restore a :meth:`mutable_state_dict` snapshot.

        The entity sets must already be in place (restored directly or
        replayed via :meth:`replay_structure`).
        """
        from repro.utils.rng import set_rng_state

        self._probabilities = {
            str(key): float(value)
            for key, value in state["probabilities"].items()
        }
        self._labels = {
            str(key): int(value) for key, value in state["labels"].items()
        }
        self._pending_labels = {
            str(key): int(value)
            for key, value in state.get("pending_labels", {}).items()
        }
        weights = state["weights"]
        self._weights = (
            None
            if weights is None
            else CrfWeights(np.asarray(weights, dtype=float))
        )
        self._t = int(state["t"])
        set_rng_state(self._rng, state["rng"])
        self._database = None
        self._model = None
        self._engine = None
        if self._claims:
            self._rebuild()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def arrivals(self) -> int:
        """Number of processed arrivals t."""
        return self._t

    @property
    def weights(self) -> Optional[CrfWeights]:
        """Current parameters W_t (``None`` before the first arrival)."""
        return self._weights.copy() if self._weights is not None else None

    def receive_weights(self, weights: CrfWeights) -> None:
        """Accept parameters from the validation process (Alg. 2 line 7)."""
        self._weights = weights.copy()
        if self._model is not None:
            self._model.set_weights(self._weights)

    def record_label(self, claim: Union[str, int], value: int) -> None:
        """Register user input so it survives future arrivals.

        Labels for claims that have not arrived are rejected by default
        (a typo'd identifier would otherwise be stored forever and never
        applied); with ``allow_pending_labels=True`` they are parked in
        :attr:`pending_labels` and applied the moment the claim arrives.

        Args:
            claim: Claim identifier, or a dense index into the *current*
                snapshot database (historically the two addressing schemes
                were inconsistent across the public surface; both are now
                accepted and mapped to the stable string identifier).
            value: User label, 0 or 1.

        Raises:
            StreamingError: On an invalid label value, or — unless
                ``allow_pending_labels`` is set — on a claim identifier
                that has not arrived on this stream.
        """
        if value not in (0, 1):
            raise StreamingError(f"label must be 0 or 1, got {value!r}")
        claim_id = self._resolve_claim_id(claim)
        if claim_id not in self._known_claims:
            if not self._allow_pending_labels:
                raise StreamingError(
                    f"cannot label unknown claim {claim_id!r}: it has not "
                    "arrived on this stream (construct the checker with "
                    "allow_pending_labels=True to park labels for future "
                    "claims)"
                )
            self._pending_labels[claim_id] = int(value)
            return
        self._labels[claim_id] = value
        self._probabilities[claim_id] = float(value)
        if self._database is not None:
            self._database.label(self._database.claim_position(claim_id), value)

    @property
    def pending_labels(self) -> Dict[str, int]:
        """Labels parked for claims that have not arrived yet."""
        return dict(self._pending_labels)

    def _resolve_claim_id(self, claim: Union[str, int]) -> str:
        """Map an index or identifier onto the stable claim identifier."""
        if isinstance(claim, str):
            return claim
        index = int(claim)
        if self._database is None:
            raise StreamingError(
                "cannot address claims by index before the first arrival; "
                "use the string claim id"
            )
        if not 0 <= index < self._database.num_claims:
            raise StreamingError(
                f"claim index {index} out of range for the current snapshot "
                f"of {self._database.num_claims} claims"
            )
        return self._database.claim_id(index)

    @property
    def database(self) -> FactDatabase:
        """Snapshot fact database over all entities seen so far."""
        if self._database is None:
            raise StreamingError("no arrivals processed yet")
        return self._database

    @property
    def model(self) -> Optional[CrfModel]:
        """Snapshot CRF model, or ``None`` before the first arrival."""
        return self._model

    # ------------------------------------------------------------------
    # Alg. 2 main loop body
    # ------------------------------------------------------------------

    def observe(self, arrival: ClaimArrival) -> StreamUpdate:
        """Process one claim arrival (lines 2–10 of Alg. 2)."""
        started = time.perf_counter()
        self._t += 1
        new_sources, new_documents, new_claims = self._ingest(arrival)
        if self._incremental and self._database is not None:
            self._grow(new_sources, new_documents, new_claims)
        else:
            self._rebuild()
        assert self._database is not None and self._model is not None
        ingested = time.perf_counter()

        # E-step: light inference over the grown model.
        marginals = self._mean_field()
        self._database.set_probabilities(marginals)

        # M-step with stochastic approximation (Eq. 29-30).
        previous = self._model.weights.values.copy()
        run_m_step(self._model, np.asarray(self._database.probabilities),
                   self._mstep, engine=self._engine)
        candidate = self._model.weights.values
        gamma = self._schedule.step_size(self._t)
        blended = previous + gamma * (candidate - previous)
        self._weights = CrfWeights(blended)
        self._model.set_weights(self._weights)

        if not self._incremental:
            # The snapshot is discarded at the next rebuild: persist the
            # marginals by claim id for reuse.  The incremental path keeps
            # the snapshot alive, so the array itself carries them.
            self._sync_probabilities()

        finished = time.perf_counter()
        return StreamUpdate(
            arrival_index=self._t,
            elapsed_seconds=finished - started,
            step_size=gamma,
            weights=self._weights.copy(),
            num_claims=len(self._claims),
            num_documents=len(self._documents),
            num_sources=len(self._sources),
            ingest_seconds=ingested - started,
            update_seconds=finished - ingested,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _ingest(self, arrival: ClaimArrival):
        """Lines 2–6: extend C^U, D, S with the arrival's entities.

        Returns the novel ``(sources, documents, claims)`` of this
        arrival, for the incremental growth path.
        """
        new_sources: List[Source] = []
        new_documents: List[Document] = []
        new_claims: List[Claim] = []
        for source in arrival.sources:
            if source.source_id not in self._known_sources:
                self._known_sources.add(source.source_id)
                self._sources.append(source)
                new_sources.append(source)
        for document in arrival.documents:
            if document.document_id not in self._known_documents:
                self._known_documents.add(document.document_id)
                self._documents.append(document)
                new_documents.append(document)
        if arrival.claim is None:
            return new_sources, new_documents, new_claims
        claim_id = arrival.claim.claim_id
        if claim_id in self._known_claims:
            raise StreamingError(f"claim {claim_id!r} arrived twice")
        self._known_claims.add(claim_id)
        self._claims.append(arrival.claim)
        new_claims.append(arrival.claim)
        pending = self._pending_labels.pop(claim_id, None)
        if pending is not None:
            self._labels[claim_id] = pending
            self._probabilities[claim_id] = float(pending)
        return new_sources, new_documents, new_claims

    def _grow(
        self,
        new_sources: List[Source],
        new_documents: List[Document],
        new_claims: List[Claim],
    ) -> None:
        """Extend the live snapshot in place (§7: reuse, never recompute).

        The database merges the arrival's cliques into its columnar
        arrays, the model patches its cached matrices, and the memoised
        engine refreshes its gathered views — no object is rebuilt.  New
        claims start at the prior; a parked or previously recorded label
        for a new claim is applied immediately, matching the rebuild
        path's label re-imposition.
        """
        assert self._database is not None and self._model is not None
        delta = self._database.extend(
            sources=new_sources, documents=new_documents, claims=new_claims
        )
        self._model.grow(delta)
        self._engine = create_engine(self._model, self._engine_config)
        for claim in new_claims:
            value = self._labels.get(claim.claim_id)
            if value is not None:
                self._database.label(
                    self._database.claim_position(claim.claim_id), value
                )

    def _sync_probabilities(self) -> None:
        """Mirror the snapshot's probability array into the by-id dict."""
        if self._database is None:
            return
        values = self._database.probabilities
        for index, claim in enumerate(self._database.claims):
            self._probabilities[claim.claim_id] = float(values[index])

    def _rebuild(self) -> None:
        """(Re)build the snapshot database/model over all seen entities.

        Documents may reference claims that have not arrived yet (a multi-
        claim document delivered with its first claim); such forward links
        are truncated until the claim arrives, keeping every reference in
        the snapshot valid.  In incremental mode this runs only for the
        first build and when restoring a checkpoint — the pending links
        are then parked inside the database so later arrivals can
        materialise them in place.
        """
        if self._incremental:
            database = FactDatabase(
                sources=self._sources,
                documents=self._documents,
                claims=self._claims,
                prior=self._prior,
                allow_pending_links=True,
            )
        else:
            documents = []
            for doc in self._documents:
                known_links = tuple(
                    link
                    for link in doc.claim_links
                    if link.claim_id in self._known_claims
                )
                if len(known_links) == len(doc.claim_links):
                    documents.append(doc)
                else:
                    documents.append(
                        Document(
                            document_id=doc.document_id,
                            source_id=doc.source_id,
                            features=doc.features,
                            claim_links=known_links,
                            metadata=doc.metadata,
                        )
                    )
            database = FactDatabase(
                sources=self._sources,
                documents=documents,
                claims=self._claims,
                prior=self._prior,
            )
        probabilities = np.asarray(
            [
                self._probabilities.get(claim.claim_id, self._prior)
                for claim in self._claims
            ]
        )
        database.set_probabilities(probabilities)
        for claim_id, value in self._labels.items():
            if claim_id in self._known_claims:
                database.label(database.claim_position(claim_id), value)

        if self._weights is None:
            weights = CrfWeights.zeros(
                database.document_features.shape[1],
                database.source_features.shape[1],
            )
            weights.values[0] = self._initial_bias
            self._weights = weights
        self._database = database
        self._model = CrfModel(
            database,
            weights=self._weights,
            aggregation=self._aggregation,
            coupling_enabled=self._coupling_enabled,
        )
        self._engine = create_engine(self._model, self._engine_config)

    def _mean_field(self) -> np.ndarray:
        """Damped mean-field E-step over all unlabelled claims."""
        assert self._database is not None and self._model is not None
        marginals = np.asarray(self._database.probabilities, dtype=float).copy()
        free = self._database.unlabelled_indices
        if free.size == 0:
            return marginals
        for _ in range(self._meanfield_steps):
            logits = self._model.marginal_logits(marginals)
            marginals[free] = 0.3 * marginals[free] + 0.7 * sigmoid(logits[free])
        return marginals
