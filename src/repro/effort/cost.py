"""Set-up cost model of batch validation (§8.7).

The paper captures the user-cost saving of validating batches of size k as

    CS(k) = 1 - 1 / k^α

where α (the "rail factor") controls how strongly larger batches amortise
the per-domain familiarisation cost; the functional form covers both
linear and non-linear cost models.
"""

from __future__ import annotations

from repro.utils.checks import check_positive, check_positive_int


def cost_saving(batch_size: int, alpha: float) -> float:
    """CS(k) = 1 - 1/k^α, in [0, 1) for k ≥ 1.

    Args:
        batch_size: Batch size k ≥ 1.
        alpha: Rail factor α > 0.
    """
    batch_size = check_positive_int(batch_size, "batch_size")
    alpha = check_positive(alpha, "alpha")
    return 1.0 - 1.0 / (batch_size**alpha)


def precision_degradation(precision_unbatched: float, precision_batched: float) -> float:
    """Relative precision loss of batching (Fig. 10's y-axis).

    ``(P_unbatched - P_batched) / P_unbatched``, clipped below at 0.
    """
    if not 0.0 < precision_unbatched <= 1.0:
        raise ValueError(
            f"precision_unbatched must be in (0, 1], got {precision_unbatched!r}"
        )
    if not 0.0 <= precision_batched <= 1.0:
        raise ValueError(
            f"precision_batched must be in [0, 1], got {precision_batched!r}"
        )
    return max((precision_unbatched - precision_batched) / precision_unbatched, 0.0)


def dynamic_batch_size(
    labelled_fraction: float,
    initial: int = 1,
    maximum: int = 20,
    growth_point: float = 0.2,
) -> int:
    """Heuristic dynamic batch-size schedule suggested by §8.7.

    "Initially, a small k shall be used, which is increased once a
    sufficient amount of claims has been validated."  The schedule keeps
    ``initial`` until ``growth_point`` of the claims are labelled, then
    grows linearly to ``maximum`` at full effort.

    Args:
        labelled_fraction: h_i = fraction of claims already validated.
        initial: Batch size before the growth point.
        maximum: Batch size approached at 100% effort.
        growth_point: Fraction of labelled claims at which growth starts.
    """
    if not 0.0 <= labelled_fraction <= 1.0:
        raise ValueError(
            f"labelled_fraction must be in [0, 1], got {labelled_fraction!r}"
        )
    initial = check_positive_int(initial, "initial")
    maximum = check_positive_int(maximum, "maximum")
    if maximum < initial:
        raise ValueError("maximum must be at least the initial batch size")
    if labelled_fraction <= growth_point:
        return initial
    span = 1.0 - growth_point
    progress = (labelled_fraction - growth_point) / span if span > 0 else 1.0
    return int(round(initial + progress * (maximum - initial)))
