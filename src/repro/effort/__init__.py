"""Effort-reduction methods (§6): early termination, batching, cost model."""

from repro.effort.batching import (
    BatchSelection,
    batch_utility,
    correlation_matrix,
    exact_batch_gain,
    exhaustive_topk_selection,
    greedy_topk_selection,
)
from repro.effort.cost import cost_saving, dynamic_batch_size, precision_degradation
from repro.effort.crossval import estimate_precision
from repro.effort.termination import (
    GroundingChangeCriterion,
    PrecisionImprovementCriterion,
    TerminationCriterion,
    UncertaintyReductionCriterion,
    ValidatedPredictionCriterion,
    cng_series,
    pir_series,
    pre_series,
    urr_series,
)

__all__ = [
    "BatchSelection",
    "GroundingChangeCriterion",
    "PrecisionImprovementCriterion",
    "TerminationCriterion",
    "UncertaintyReductionCriterion",
    "ValidatedPredictionCriterion",
    "batch_utility",
    "cng_series",
    "correlation_matrix",
    "cost_saving",
    "dynamic_batch_size",
    "estimate_precision",
    "exact_batch_gain",
    "exhaustive_topk_selection",
    "greedy_topk_selection",
    "pir_series",
    "pre_series",
    "precision_degradation",
    "urr_series",
]
