"""Batch selection of claims for joint validation (§6.2).

Validating a batch B of claims per iteration cuts the user's set-up costs.
The ideal batch maximises the expected uncertainty reduction (Eq. 24–25),
which is intractable, so the paper substitutes the utility

    F(B) = w Σ_{c∈B} q(c) IG(c)  -  Σ_{c,c'∈B} IG(c) M(c,c') IG(c')   (Eq. 27)

combining individual information gains with a redundancy penalty built on
the source-correlation matrix ``M(c, c') ∝ |{s | c ∈ C_s ∧ c' ∈ C_s}|``
and the importance weights ``q(c) = Σ_{c'} M(c, c') IG(c')``.  F is
monotone submodular, so the greedy algorithm implemented here enjoys the
classic (1 - 1/e) approximation guarantee; the marginal gain is updated
incrementally as in the paper:
``Δ_{i+1}(c) = Δ_i(c) - 2 IG(c*_i) M(c, c*_i) IG(c)``.

:func:`exact_batch_gain` evaluates the *exact* expected benefit of Eq. 24
by enumeration — exponential in |B|, provided for validating the greedy
approximation on small instances.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.crf.entropy import binary_entropy
from repro.data.database import FactDatabase
from repro.errors import GuidanceError
from repro.guidance.gain import (
    GainEstimator,
    StateSnapshot,
    marginal_entropy_ranking,
)


@dataclass
class BatchSelection:
    """Result of a batch-selection call.

    Attributes:
        claims: Selected claim indices, in greedy pick order.
        gains: IG_C of each selected claim.
        utility: F(B) of the selected batch.
    """

    claims: List[int]
    gains: List[float]
    utility: float


def correlation_matrix(
    database: FactDatabase, claims: Sequence[int]
) -> np.ndarray:
    """Source-correlation matrix M over the given claims (Eq. 26).

    ``M[i, j]`` counts the sources connected to both claims, normalised by
    the maximum count so all entries lie in [0, 1].  The diagonal counts a
    claim's own sources.
    """
    claims = list(claims)
    source_sets = [
        set(int(s) for s in database.sources_of_claim(int(c))) for c in claims
    ]
    size = len(claims)
    matrix = np.zeros((size, size))
    for i in range(size):
        matrix[i, i] = len(source_sets[i])
        for j in range(i + 1, size):
            shared = len(source_sets[i] & source_sets[j])
            matrix[i, j] = shared
            matrix[j, i] = shared
    peak = matrix.max()
    if peak > 0:
        matrix /= peak
    return matrix


def batch_utility(
    gains: np.ndarray,
    correlation: np.ndarray,
    members: Sequence[int],
    utility_weight: float = 1.0,
) -> float:
    """F(B) of Eq. 27 for ``members`` (indices into ``gains``)."""
    members = list(members)
    if not members:
        return 0.0
    gains = np.asarray(gains, dtype=float)
    importance = correlation @ gains  # q(c) = Σ_c' M(c,c') IG(c')
    individual = float(np.sum(importance[members] * gains[members]))
    sub = correlation[np.ix_(members, members)]
    redundancy = float(gains[members] @ sub @ gains[members])
    return utility_weight * individual - redundancy


def greedy_topk_selection(
    database: FactDatabase,
    gains: GainEstimator,
    k: int,
    utility_weight: float = 1.0,
    candidate_limit: Optional[int] = None,
) -> BatchSelection:
    """Greedy top-k batch selection with incremental gain updates (§6.2).

    Args:
        database: The fact database.
        gains: Information-gain estimator for IG_C.
        k: Batch size.
        utility_weight: The w of Eq. 27.
        candidate_limit: Restrict the candidate pool to the most uncertain
            claims (``None`` considers all of C^U).

    Returns:
        The selected batch with its utility value.

    Raises:
        GuidanceError: When no unlabelled claims remain or k < 1.
    """
    if k < 1:
        raise GuidanceError(f"batch size must be at least 1, got {k}")
    unlabelled = database.unlabelled_indices
    if unlabelled.size == 0:
        raise GuidanceError("no unlabelled claims remain")
    if candidate_limit is not None and unlabelled.size > candidate_limit:
        candidates = marginal_entropy_ranking(database, unlabelled)[:candidate_limit]
    else:
        candidates = unlabelled
    candidates = np.asarray(candidates, dtype=np.intp)
    k = min(k, candidates.size)

    gain_values = np.asarray(gains.information_gains(candidates), dtype=float)
    gain_values = np.maximum(gain_values, 0.0)
    correlation = correlation_matrix(database, candidates)
    importance = correlation @ gain_values

    # Initial marginal gain of each singleton: F({c}).
    delta = (
        utility_weight * importance * gain_values
        - np.diag(correlation) * gain_values**2
    )
    selected: List[int] = []
    selected_mask = np.zeros(candidates.size, dtype=bool)
    for _ in range(k):
        masked = np.where(selected_mask, -np.inf, delta)
        best = int(np.argmax(masked))
        if not np.isfinite(masked[best]):
            break
        selected.append(best)
        selected_mask[best] = True
        # Incremental update: Δ(c) -= 2 IG(c*) M(c, c*) IG(c).
        delta = delta - 2.0 * gain_values[best] * correlation[:, best] * gain_values

    members = selected
    utility = batch_utility(gain_values, correlation, members, utility_weight)
    return BatchSelection(
        claims=[int(candidates[i]) for i in members],
        gains=[float(gain_values[i]) for i in members],
        utility=utility,
    )


def exhaustive_topk_selection(
    database: FactDatabase,
    gains: GainEstimator,
    k: int,
    utility_weight: float = 1.0,
    candidate_limit: Optional[int] = 12,
) -> BatchSelection:
    """Exhaustive argmax of F(B) (Eq. 28) — exponential, for evaluation.

    Used by tests and the ablation benchmark to measure how close the
    greedy selection gets to the optimum on small candidate pools.
    """
    if k < 1:
        raise GuidanceError(f"batch size must be at least 1, got {k}")
    unlabelled = database.unlabelled_indices
    if unlabelled.size == 0:
        raise GuidanceError("no unlabelled claims remain")
    if candidate_limit is not None and unlabelled.size > candidate_limit:
        candidates = marginal_entropy_ranking(database, unlabelled)[:candidate_limit]
    else:
        candidates = unlabelled
    candidates = np.asarray(candidates, dtype=np.intp)
    k = min(k, candidates.size)

    gain_values = np.maximum(
        np.asarray(gains.information_gains(candidates), dtype=float), 0.0
    )
    correlation = correlation_matrix(database, candidates)
    best_members: tuple = ()
    best_utility = -np.inf
    for members in itertools.combinations(range(candidates.size), k):
        utility = batch_utility(gain_values, correlation, members, utility_weight)
        if utility > best_utility:
            best_utility = utility
            best_members = members
    return BatchSelection(
        claims=[int(candidates[i]) for i in best_members],
        gains=[float(gain_values[i]) for i in best_members],
        utility=float(best_utility),
    )


def exact_batch_gain(
    database: FactDatabase,
    gains: GainEstimator,
    claims: Sequence[int],
) -> float:
    """Exact expected benefit of validating ``claims`` (Eq. 24–25).

    Enumerates all credibility configurations of the batch, weights each
    by its probability under the current (independent) marginals, runs the
    light hypothetical inference for each, and averages the resulting
    entropies.  Exponential in ``len(claims)``.

    Every configuration is evaluated as a multi-pin overlay on one state
    snapshot — the database is never mutated, and the numbers match the
    historical label/restore enumeration exactly (a pinned claim starts
    the fixed point at its pinned value and is excluded from the free
    set, which is precisely what labelling it produced).
    """
    claims = [int(c) for c in claims]
    if not claims:
        return 0.0
    if len(claims) > 12:
        raise GuidanceError(
            "exact batch gain enumerates 2^|B| configurations; |B| > 12 "
            "is not supported"
        )
    probabilities = np.asarray(database.probabilities, dtype=float)
    scope: set = set()
    for claim in claims:
        scope.update(int(c) for c in gains.components.component_of_claim(claim))
    scope_array = np.asarray(sorted(scope), dtype=np.intp)

    current_entropy = float(binary_entropy(probabilities[scope_array]).sum())
    conditional = 0.0
    snapshot = StateSnapshot.capture(database)
    for values in itertools.product((0, 1), repeat=len(claims)):
        weight = 1.0
        for claim, value in zip(claims, values):
            p = float(probabilities[claim])
            weight *= p if value == 1 else (1.0 - p)
        if weight == 0.0:
            continue
        pins = dict(zip(claims, values))
        marginals = gains._mean_field(scope_array, pins=pins, state=snapshot)
        entropy = float(binary_entropy(marginals[scope_array]).sum())
        conditional += weight * entropy
    return current_entropy - conditional
