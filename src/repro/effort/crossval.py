"""k-fold cross-validated precision estimation (§6.1).

The *precision improvement rate* criterion estimates model precision
without ground truth: the labelled claims are split into k folds; each
fold's labels are held out in turn, credibility is re-inferred from the
remaining information, and the re-inferred values are compared with the
held-out user input.  The mean agreement across folds is the precision
estimate ``A_i`` at step i.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

import numpy as np

from repro.crf.model import CrfModel
from repro.crf.partition import ComponentIndex
from repro.crf.potentials import sigmoid
from repro.errors import ValidationProcessError
from repro.utils.rng import RandomState, ensure_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.validation.process import ValidationProcess


def estimate_precision(
    process: "ValidationProcess",
    folds: int = 5,
    meanfield_steps: int = 4,
    seed: RandomState = 17,
) -> float:
    """Estimate grounding precision by k-fold cross validation.

    Args:
        process: The running validation process (its database and model
            are used; all mutations are rolled back).
        folds: Number of partitions k.
        meanfield_steps: Light-inference iterations per fold.
        seed: Seed for the fold shuffle (fixed by default so successive
            estimates during one run are comparable).

    Returns:
        ``A_i`` — the mean held-out agreement, in [0, 1].

    Raises:
        ValidationProcessError: With fewer labelled claims than folds.
    """
    database = process.database
    labelled = [int(c) for c in database.labelled_indices]
    if len(labelled) < folds:
        raise ValidationProcessError(
            f"need at least {folds} labelled claims for {folds}-fold CV, "
            f"have {len(labelled)}"
        )
    rng = ensure_rng(seed)
    shuffled = list(labelled)
    rng.shuffle(shuffled)
    partitions: List[List[int]] = [shuffled[j::folds] for j in range(folds)]

    model = process.icrf.model
    components = process.components
    agreements = []
    for partition in partitions:
        if not partition:
            continue
        agreements.append(
            _fold_agreement(model, components, partition, meanfield_steps)
        )
    return float(np.mean(agreements)) if agreements else 0.0


def _fold_agreement(
    model: CrfModel,
    components: ComponentIndex,
    held_out: List[int],
    meanfield_steps: int,
) -> float:
    """Agreement of re-inferred values with held-out labels for one fold."""
    database = model.database
    snapshot = database.clone_state()
    stored = {c: database.label_of(c) for c in held_out}
    try:
        scope: set = set()
        for claim_index in held_out:
            database.unlabel(claim_index)
            scope.update(
                int(c) for c in components.component_of_claim(claim_index)
            )
        marginals = _mean_field(model, np.asarray(sorted(scope), dtype=np.intp),
                                meanfield_steps)
        hits = sum(
            1
            for claim_index in held_out
            if int(marginals[claim_index] >= 0.5) == stored[claim_index]
        )
        return hits / len(held_out)
    finally:
        database.restore_state(snapshot)


def _mean_field(
    model: CrfModel, scope: np.ndarray, steps: int, damping: float = 0.2
) -> np.ndarray:
    """Damped mean-field re-inference restricted to ``scope``."""
    database = model.database
    marginals = np.asarray(database.probabilities, dtype=float).copy()
    labelled = database.labels
    free = np.asarray(
        [int(c) for c in scope if int(c) not in labelled], dtype=np.intp
    )
    if free.size == 0:
        return marginals
    for _ in range(steps):
        logits = model.marginal_logits(marginals)
        marginals[free] = damping * marginals[free] + (1.0 - damping) * sigmoid(
            logits[free]
        )
    return marginals
