"""Early-termination criteria for the validation process (§6.1).

Four convergence indicators are defined by the paper; each is implemented
as a criterion object the process consults after every iteration, plus a
pure series function the Fig. 9 experiment uses to plot the indicator:

* **URR** — uncertainty reduction rate ``(H_C(Q_i) - H_C(Q_{i+1})) /
  H_C(Q_i)``; stop when it stays below a threshold.
* **CNG** — the amount of grounding changes ``|{c | g_i(c) ≠ g_{i+1}(c)}|``;
  stop when negligible over several consecutive iterations.
* **PRE** — the amount of validated predictions: stop when inference and
  user input agree for several consecutive iterations.
* **PIR** — the precision improvement rate of the k-fold cross-validated
  precision estimate; stop when it converges to zero.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.errors import ValidationProcessError
from repro.utils.checks import check_non_negative, check_positive_int
from repro.validation.session import IterationRecord, ValidationTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.validation.process import ValidationProcess


class TerminationCriterion(abc.ABC):
    """Interface of an early-termination criterion."""

    #: Identifier reported as the trace's stop reason.
    name: str = "criterion"

    @abc.abstractmethod
    def update(
        self,
        trace: ValidationTrace,
        record: IterationRecord,
        process: "ValidationProcess",
    ) -> Optional[str]:
        """Consume the newest record; return the stop reason if triggered."""


class UncertaintyReductionCriterion(TerminationCriterion):
    """Stop when the uncertainty reduction rate stays below a threshold."""

    name = "urr"

    def __init__(self, threshold: float = 0.02, patience: int = 3) -> None:
        self.threshold = check_non_negative(threshold, "threshold")
        self.patience = check_positive_int(patience, "patience")
        self._streak = 0
        self._previous_entropy: Optional[float] = None

    def update(self, trace, record, process) -> Optional[str]:
        previous = (
            self._previous_entropy
            if self._previous_entropy is not None
            else trace.initial_entropy
        )
        rate = 0.0 if previous <= 0 else (previous - record.entropy) / previous
        self._previous_entropy = record.entropy
        self._streak = self._streak + 1 if rate < self.threshold else 0
        if self._streak >= self.patience:
            return self.name
        return None


class GroundingChangeCriterion(TerminationCriterion):
    """Stop when consecutive groundings barely change (CNG)."""

    name = "cng"

    def __init__(self, max_changes: int = 0, patience: int = 3) -> None:
        self.max_changes = int(check_non_negative(max_changes, "max_changes"))
        self.patience = check_positive_int(patience, "patience")
        self._streak = 0

    def update(self, trace, record, process) -> Optional[str]:
        small = record.grounding_changes <= self.max_changes
        self._streak = self._streak + 1 if small else 0
        if self._streak >= self.patience:
            return self.name
        return None


class ValidatedPredictionCriterion(TerminationCriterion):
    """Stop when inference keeps agreeing with the user input (PRE)."""

    name = "pre"

    def __init__(self, patience: int = 5) -> None:
        self.patience = check_positive_int(patience, "patience")
        self._streak = 0

    def update(self, trace, record, process) -> Optional[str]:
        consistent = bool(record.predictions_matched) and all(
            record.predictions_matched
        )
        self._streak = self._streak + 1 if consistent else 0
        if self._streak >= self.patience:
            return self.name
        return None


class PrecisionImprovementCriterion(TerminationCriterion):
    """Stop when the cross-validated precision stops improving (PIR)."""

    name = "pir"

    def __init__(
        self,
        threshold: float = 0.01,
        patience: int = 3,
        folds: int = 5,
        check_every: int = 1,
        min_labels: int = 10,
    ) -> None:
        self.threshold = check_non_negative(threshold, "threshold")
        self.patience = check_positive_int(patience, "patience")
        self.folds = check_positive_int(folds, "folds")
        self.check_every = check_positive_int(check_every, "check_every")
        self.min_labels = check_positive_int(min_labels, "min_labels")
        self._streak = 0
        self._since_check = 0
        self._previous_estimate: Optional[float] = None

    def update(self, trace, record, process) -> Optional[str]:
        if process.database.num_labelled < max(self.min_labels, self.folds):
            return None
        self._since_check += 1
        if self._since_check < self.check_every:
            return None
        self._since_check = 0
        from repro.effort.crossval import estimate_precision

        estimate = estimate_precision(process, folds=self.folds)
        if self._previous_estimate is None:
            self._previous_estimate = estimate
            return None
        base = max(self._previous_estimate, 1e-9)
        rate = (estimate - self._previous_estimate) / base
        self._previous_estimate = estimate
        self._streak = self._streak + 1 if abs(rate) < self.threshold else 0
        if self._streak >= self.patience:
            return self.name
        return None


# ----------------------------------------------------------------------
# Pure indicator series (Fig. 9)
# ----------------------------------------------------------------------


def urr_series(trace: ValidationTrace) -> np.ndarray:
    """Uncertainty reduction rate per iteration."""
    entropies = np.concatenate(([trace.initial_entropy], trace.entropies()))
    previous = entropies[:-1]
    deltas = previous - entropies[1:]
    with np.errstate(divide="ignore", invalid="ignore"):
        rates = np.where(previous > 0, deltas / previous, 0.0)
    return rates


def cng_series(trace: ValidationTrace) -> np.ndarray:
    """Grounding changes per iteration, as a fraction of |C|."""
    return trace.grounding_change_counts() / trace.num_claims


def pre_series(trace: ValidationTrace, window: int = 5) -> np.ndarray:
    """Rolling fraction of validated predictions over a trailing window."""
    if window < 1:
        raise ValidationProcessError("window must be at least 1")
    flags: List[float] = []
    for record in trace.records:
        if record.predictions_matched:
            flags.append(float(np.mean(record.predictions_matched)))
        else:
            flags.append(0.0)
    values = np.asarray(flags)
    rolled = np.empty_like(values)
    for index in range(values.size):
        start = max(0, index - window + 1)
        rolled[index] = values[start : index + 1].mean()
    return rolled


def pir_series(estimates: np.ndarray) -> np.ndarray:
    """Precision improvement rate from a series of precision estimates."""
    estimates = np.asarray(estimates, dtype=float)
    if estimates.size < 2:
        return np.zeros(max(estimates.size - 1, 0))
    previous = np.maximum(estimates[:-1], 1e-9)
    return (estimates[1:] - estimates[:-1]) / previous
