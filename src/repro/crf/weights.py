"""Parameters W of the log-linear CRF (Eq. 2).

The paper's potential is ``log φ(c=o(c), d, s; W) = w_{π,o(c)} +
Σ w^D_t f^D_t(d) + Σ w^S_t f^S_t(s)``, with one weight set per clique in
the most general formulation.  As discussed in DESIGN.md we *tie* weights
across cliques (the paper's own single-logistic-regression M-step implies
the same): because only the difference ``log φ(c=1, ·) - log φ(c=0, ·)``
enters the conditional distribution of a claim, the tied model is fully
described by

* one weight per clique-feature dimension ``[bias, f^D, f^S]``, and
* one *coupling* weight for the indirect relation — the influence of a
  source's agreement with the rest of the current configuration (§3.1's
  "indirect relation", realised through the Markov blanket in Gibbs
  sampling).

The coupling weight is learned like any other: the M-step design matrix
carries the trust signal as its last column.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InferenceError


@dataclass
class CrfWeights:
    """Tied CRF weights: clique-feature weights plus the coupling weight.

    Attributes:
        values: Weight vector of length ``2 + m_D + m_S``; layout is
            ``[bias, w^D (m_D entries), w^S (m_S entries), coupling]``.
    """

    values: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float).copy()
        if self.values.ndim != 1 or self.values.size < 2:
            raise InferenceError(
                "weights must be a vector [bias, w_D..., w_S..., coupling]"
            )
        if not np.all(np.isfinite(self.values)):
            raise InferenceError("weights must be finite")

    @classmethod
    def zeros(cls, num_document_features: int, num_source_features: int,
              coupling: float = 0.0) -> "CrfWeights":
        """Neutral weights (uniform potentials, maximum entropy, §8.1)."""
        size = 2 + num_document_features + num_source_features
        values = np.zeros(size)
        values[-1] = coupling
        return cls(values)

    @property
    def size(self) -> int:
        """Total number of parameters."""
        return int(self.values.size)

    @property
    def feature_weights(self) -> np.ndarray:
        """Weights applied to the clique feature map ``[1, f^D, f^S]``."""
        return self.values[:-1]

    @property
    def bias(self) -> float:
        """The configuration bias ``w_{π,1} - w_{π,0}``."""
        return float(self.values[0])

    @property
    def coupling(self) -> float:
        """Weight of the source-agreement (indirect-relation) signal."""
        return float(self.values[-1])

    def copy(self) -> "CrfWeights":
        """Deep copy."""
        return CrfWeights(self.values.copy())

    def distance(self, other: "CrfWeights") -> float:
        """Euclidean distance to another weight vector (EM convergence)."""
        if other.size != self.size:
            raise InferenceError("weight vectors must have equal length")
        return float(np.linalg.norm(self.values - other.values))
