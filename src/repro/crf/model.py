"""The CRF over sources, documents, and claims (§3.1).

:class:`CrfModel` combines the direct and indirect relations of the paper's
model into one energy function over claim configurations ``x ∈ {0,1}^|C|``:

* **Direct relation** — each clique π = {c, d, s} contributes stance-signed
  log-linear evidence about its claim (Eq. 2); per-claim aggregation yields
  the *local field* ``lf_c`` (see :class:`~repro.crf.potentials.CliqueFeaturizer`).
* **Indirect relation** — documents of different sources referring to the
  same claim interact through *source consistency*.  For source ``s``,
  ``A_s(x) = Σ_{π ∈ cliques(s)} sign_π · spin(c_π)`` (with
  ``spin = 2x - 1``) measures how consistently the source supports
  credible and refutes non-credible claims under configuration ``x``.
  The energy term ``(γ/2) Σ_s A_s(x)² / n_s`` rewards configurations under
  which each source is coherently trustworthy *or* coherently
  untrustworthy — exactly the mutual-reinforcement reading of §3.1 ("a
  source disagreeing with a claim considered credible by several sources
  shall be regarded as not trustworthy").

The unnormalised joint is::

    log P̃(x) = Σ_c lf_c · x_c + (γ/2) Σ_s A_s(x)² / n_s

whose exact single-claim conditional (used by Gibbs sampling) is::

    logit(c | x_-c) = lf_c + 2γ Σ_{s ∈ sources(c)} B_{s,c} · A_s^{-c}(x) / n_s

where ``B_{s,c}`` is the net stance of source ``s`` towards claim ``c``
(sum of stance signs over their shared cliques) and ``A_s^{-c}`` excludes
claim ``c``'s own contribution.  The same trust signal evaluated at the
current marginal probabilities is the last column of the M-step design
matrix, so the coupling weight γ is *learned*, not hand-tuned.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.contracts import derived_cache, mutates
from repro.crf.potentials import CliqueFeaturizer, sigmoid
from repro.crf.weights import CrfWeights
from repro.data.database import FactDatabase
from repro.errors import InferenceError


class CrfModel:
    """Energy model over claim configurations for one fact database.

    Args:
        database: The fact database (structure only is read).
        weights: Initial parameters; defaults to the maximum-entropy zero
            vector (§8.1: "model parameters are initialised ... following
            the maximum entropy principle").
        aggregation: Claim-evidence aggregation mode (see
            :class:`~repro.crf.potentials.CliqueFeaturizer`).
        coupling_enabled: When ``False`` the indirect relation is dropped —
            the model degenerates to independent logistic regression per
            claim.  Exposed for the ablation benchmark.
    """

    def __init__(
        self,
        database: FactDatabase,
        weights: Optional[CrfWeights] = None,
        aggregation: str = "sqrt",
        coupling_enabled: bool = True,
    ) -> None:
        self._database = database
        self._featurizer = CliqueFeaturizer(database, aggregation=aggregation)
        self._coupling_enabled = bool(coupling_enabled)
        if weights is None:
            weights = CrfWeights.zeros(
                database.document_features.shape[1],
                database.source_features.shape[1],
            )
        self._build_pairs()
        self.set_weights(weights)

    # ------------------------------------------------------------------
    # Static structure
    # ------------------------------------------------------------------

    @mutates("engine_views")
    def _build_pairs(self) -> None:
        """Collapse cliques into unique (claim, source) pairs.

        ``B_{s,c}`` sums the stance signs of all cliques shared by the
        pair; ``n_s`` counts the cliques of each source (with
        multiplicity), normalising its consistency statistic.
        """
        featurizer = self._featurizer
        database = self._database
        clique_claim = featurizer.clique_claim
        clique_source = featurizer.clique_source
        signs = featurizer.stance_signs
        num_sources = max(database.num_sources, 1)
        if clique_claim.size:
            # Composite (claim, source) key; np.unique sorts it exactly like
            # lexicographic ordering of the pairs.
            keys = clique_claim * num_sources + clique_source
            unique_keys, inverse = np.unique(keys, return_inverse=True)
            self._pair_claim = (unique_keys // num_sources).astype(np.intp)
            self._pair_source = (unique_keys % num_sources).astype(np.intp)
            self._pair_stance = np.bincount(
                inverse, weights=signs, minlength=unique_keys.size
            )
        else:
            self._pair_claim = np.empty(0, dtype=np.intp)
            self._pair_source = np.empty(0, dtype=np.intp)
            self._pair_stance = np.empty(0, dtype=float)

        self._source_clique_count = np.bincount(
            clique_source, minlength=database.num_sources
        ).astype(float)
        # Pair rows grouped by claim for O(deg) Gibbs updates.
        order = np.argsort(self._pair_claim, kind="stable")
        self._pair_order = order
        counts = np.bincount(self._pair_claim, minlength=database.num_claims)
        self._pair_ptr = np.concatenate(([0], np.cumsum(counts)))
        self._refresh_engines()

    def _refresh_engines(self) -> None:
        """Re-derive the pair views cached by memoised inference engines.

        Engines created via :func:`repro.inference.engine.create_engine`
        gather the pair table into their own structure-derived arrays;
        whenever the pair table is rebuilt they must re-gather (their
        views read only the pair structure, never the weights, so the
        refresh is safe before :meth:`set_weights` runs).  A no-op at
        construction time — the memo does not exist yet.
        """
        for engine in getattr(self, "_engine_cache", {}).values():
            engine.refresh_structure()

    def grow(self, delta) -> None:
        """Refresh the cached structure after :meth:`FactDatabase.extend`.

        The featurizer patches its matrices row-wise; the (claim, source)
        pair table and the local fields are cheap integer/matvec
        derivations of the (already exact) columnar arrays, so they are
        re-derived wholesale — the results are bit-for-bit identical to a
        fresh model over the grown database.  Engines cached on this model
        via :func:`repro.inference.engine.create_engine` are refreshed in
        place.
        """
        self._featurizer.grow(delta)
        self._build_pairs()
        self.set_weights(self._weights)

    @property
    def database(self) -> FactDatabase:
        """The underlying fact database."""
        return self._database

    @property
    def featurizer(self) -> CliqueFeaturizer:
        """The clique featuriser (direct-relation evidence)."""
        return self._featurizer

    @property
    def coupling_enabled(self) -> bool:
        """Whether the indirect relation participates in the energy."""
        return self._coupling_enabled

    @property
    def weights(self) -> CrfWeights:
        """Current parameters W."""
        return self._weights

    @mutates("local_fields")
    def set_weights(self, weights: CrfWeights) -> None:
        """Install new parameters and refresh the cached local fields."""
        expected = self._featurizer.feature_dim + 1
        if weights.size != expected:
            raise InferenceError(
                f"expected {expected} weights (features + coupling), "
                f"got {weights.size}"
            )
        self._weights = weights.copy()
        self._local_fields = self._featurizer.local_fields(weights.feature_weights)

    @property
    @derived_cache("local_fields", backing=("_weights",), storage="_local_fields")
    def local_fields(self) -> np.ndarray:
        """Cached per-claim direct-relation evidence ``lf_c``."""
        return self._local_fields

    @derived_cache(
        "engine_views",
        backing=(
            "_pair_claim",
            "_pair_source",
            "_pair_stance",
            "_pair_order",
            "_pair_ptr",
            "_source_clique_count",
        ),
        hook="_refresh_engines",
    )
    def pairs_of_claim(self, claim_index: int) -> np.ndarray:
        """Rows of the (claim, source) pair table involving the claim."""
        start = self._pair_ptr[claim_index]
        stop = self._pair_ptr[claim_index + 1]
        return self._pair_order[start:stop]

    @property
    def pair_claim(self) -> np.ndarray:
        """Claim index per pair row."""
        return self._pair_claim

    @property
    def pair_source(self) -> np.ndarray:
        """Source index per pair row."""
        return self._pair_source

    @property
    def pair_stance(self) -> np.ndarray:
        """Net stance ``B_{s,c}`` per pair row."""
        return self._pair_stance

    @property
    def pair_order(self) -> np.ndarray:
        """Pair rows sorted by claim (CSR order over the pair table)."""
        return self._pair_order

    @property
    def pair_ptr(self) -> np.ndarray:
        """Per-claim slice boundaries into :attr:`pair_order`."""
        return self._pair_ptr

    @property
    def source_clique_count(self) -> np.ndarray:
        """``n_s`` — cliques per source (with multiplicity)."""
        return self._source_clique_count

    # ------------------------------------------------------------------
    # Consistency statistics and conditionals
    # ------------------------------------------------------------------

    def source_statistics(self, spins: np.ndarray) -> np.ndarray:
        """``A_s = Σ_c B_{s,c} spin_c`` for every source.

        Args:
            spins: Per-claim spin vector; hard configurations use ±1,
                expectations use ``2 P(c) - 1``.
        """
        contributions = self._pair_stance * spins[self._pair_claim]
        return np.bincount(
            self._pair_source,
            weights=contributions,
            minlength=self._database.num_sources,
        )

    def trust_signals(self, probabilities: np.ndarray) -> np.ndarray:
        """Indirect-relation signal per claim at the given marginals.

        ``T_c = 2 Σ_{s} B_{s,c} A_s^{-c} / n_s`` with ``A_s`` evaluated at
        expected spins.  This is the coupling column of the M-step design
        matrix and, multiplied by γ, the coupling part of a claim's
        conditional logit.
        """
        spins = 2.0 * np.asarray(probabilities, dtype=float) - 1.0
        stats = self.source_statistics(spins)
        own = self._pair_stance * spins[self._pair_claim]
        excluded = stats[self._pair_source] - own
        denom = np.maximum(self._source_clique_count[self._pair_source], 1.0)
        contributions = 2.0 * self._pair_stance * excluded / denom
        signals = np.zeros(self._database.num_claims)
        np.add.at(signals, self._pair_claim, contributions)
        if not self._coupling_enabled:
            signals[:] = 0.0
        return signals

    def conditional_logit(
        self, claim_index: int, spins: np.ndarray, source_stats: np.ndarray
    ) -> float:
        """Exact Gibbs conditional logit of one claim.

        Args:
            claim_index: The claim being resampled.
            spins: Current ±1 configuration over all claims.
            source_stats: Current ``A_s`` vector consistent with ``spins``.
        """
        logit = float(self._local_fields[claim_index])
        if not self._coupling_enabled:
            return logit
        gamma = self._weights.coupling
        if gamma == 0.0:
            return logit
        rows = self.pairs_of_claim(claim_index)
        if rows.size == 0:
            return logit
        sources = self._pair_source[rows]
        stances = self._pair_stance[rows]
        own = stances * spins[claim_index]
        excluded = source_stats[sources] - own
        denom = np.maximum(self._source_clique_count[sources], 1.0)
        logit += 2.0 * gamma * float(np.sum(stances * excluded / denom))
        return logit

    def marginal_logits(self, probabilities: np.ndarray) -> np.ndarray:
        """Mean-field logits: local field plus γ times the trust signal."""
        logits = self._local_fields.copy()
        if self._coupling_enabled:
            logits = logits + self._weights.coupling * self.trust_signals(
                probabilities
            )
        return logits

    def mean_field_probabilities(self, probabilities: np.ndarray) -> np.ndarray:
        """One damped mean-field update of the marginals."""
        return sigmoid(self.marginal_logits(probabilities))

    # ------------------------------------------------------------------
    # Joint (for exact entropy on small components)
    # ------------------------------------------------------------------

    def joint_log_potential(self, configuration: np.ndarray) -> float:
        """``log P̃(x)`` of a full 0/1 configuration (unnormalised)."""
        configuration = np.asarray(configuration)
        if configuration.shape != (self._database.num_claims,):
            raise InferenceError(
                f"configuration must cover all {self._database.num_claims} claims"
            )
        value = float(np.dot(self._local_fields, configuration))
        if self._coupling_enabled and self._weights.coupling != 0.0:
            spins = 2.0 * configuration.astype(float) - 1.0
            stats = self.source_statistics(spins)
            denom = np.maximum(self._source_clique_count, 1.0)
            value += 0.5 * self._weights.coupling * float(
                np.sum(stats * stats / denom)
            )
        return value
