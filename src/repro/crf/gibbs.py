"""Gibbs sampling over claim configurations (§3.2, E-step).

The E-step of iCRF estimates credibility probabilities as the fraction of
Gibbs samples in which each claim is credible (Eq. 7) and keeps the most
frequent sampled configuration for grounding instantiation (Eq. 10).

Two properties requested by the paper are built in:

* **Constraint handling** — user-labelled claims are pinned to their label
  during sampling, and the opposing-variable non-equality constraint
  (Eq. 3) is enforced structurally through stance signs (a refuting
  document contributes inverted evidence), so no sampled configuration can
  violate it.
* **View maintenance / warm starts** — the sampler keeps its chain state
  across invocations, so iteration ``z`` of the validation process resumes
  from iteration ``z-1``'s state instead of re-mixing from scratch; this is
  the "maintaining a set of Gibbs samples over time" of §3.2.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

import numpy as np

from repro.crf.model import CrfModel
from repro.errors import InferenceError
from repro.utils.rng import RandomState, ensure_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.inference.engine import InferenceEngine


@dataclass
class GibbsResult:
    """Outcome of one sampling pass.

    Attributes:
        marginals: Per-claim credibility estimates (Eq. 7); labelled claims
            carry their label value.
        mode_configuration: The most frequent sampled configuration — the
            sample-based argmax of Eq. 10.
        num_samples: Number of recorded samples.
        configuration_counts: Multiplicity of each sampled configuration,
            keyed by the packed byte representation.
    """

    marginals: np.ndarray
    mode_configuration: np.ndarray
    num_samples: int
    configuration_counts: Dict[bytes, int]


class GibbsSampler:
    """Sequential-scan Gibbs sampler with persistent chain state.

    Args:
        model: The CRF energy model.
        burn_in: Sweeps discarded before recording (fresh chains only; a
            warm-started chain re-burns ``max(1, burn_in // 2)`` sweeps).
        num_samples: Recorded samples per call.
        thin: Sweeps between recorded samples.
        seed: Seed or generator.
        engine: Hot-path engine executing the sweeps; defaults to the
            configured default backend for ``model`` (see
            :mod:`repro.inference.engine`).
    """

    #: Not checkpointed (lint rule STATE001): the model and engine are
    #: rebuilt from the session spec on resume, and the sweep-schedule
    #: parameters are immutable configuration.  Chain state (``_spins``,
    #: ``_rng``) is what ``state_dict`` carries.
    _STATE_EXCLUDED = ("_model", "_engine", "_burn_in", "_num_samples", "_thin")

    def __init__(
        self,
        model: CrfModel,
        burn_in: int = 5,
        num_samples: int = 20,
        thin: int = 1,
        seed: RandomState = None,
        engine: Optional["InferenceEngine"] = None,
    ) -> None:
        if burn_in < 0:
            raise InferenceError(f"burn_in must be non-negative, got {burn_in}")
        if num_samples <= 0:
            raise InferenceError(f"num_samples must be positive, got {num_samples}")
        if thin <= 0:
            raise InferenceError(f"thin must be positive, got {thin}")
        from repro.inference.engine import create_engine

        self._model = model
        self._engine = create_engine(model, engine)
        self._burn_in = burn_in
        self._num_samples = num_samples
        self._thin = thin
        self._rng = ensure_rng(seed)
        self._spins: Optional[np.ndarray] = None

    @property
    def model(self) -> CrfModel:
        """The sampled CRF model."""
        return self._model

    @property
    def engine(self) -> "InferenceEngine":
        """The engine executing the sweeps."""
        return self._engine

    @property
    def state(self) -> Optional[np.ndarray]:
        """Current chain configuration as 0/1, or ``None`` before first use."""
        if self._spins is None:
            return None
        return ((self._spins > 0).astype(np.int8)).copy()

    def reset(self) -> None:
        """Discard the chain state; the next call starts a fresh chain."""
        self._spins = None

    def state_dict(self) -> dict:
        """Serialise chain state and RNG position for session checkpoints."""
        from repro.utils.rng import rng_state

        return {
            "spins": None if self._spins is None else self._spins.tolist(),
            "rng": rng_state(self._rng),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot bit-for-bit."""
        from repro.utils.rng import set_rng_state

        spins = state["spins"]
        self._spins = (
            None if spins is None else np.asarray(spins, dtype=float)
        )
        set_rng_state(self._rng, state["rng"])

    def _initial_spins(self, state) -> np.ndarray:
        """Draw an initial configuration from the current marginals."""
        probabilities = state.probabilities
        draws = self._rng.random(probabilities.size) < probabilities
        return np.where(draws, 1.0, -1.0)

    def _pin_labels(self, spins: np.ndarray, state) -> None:
        """Force labelled claims to their user-provided value."""
        indices, values = state.label_arrays()
        if indices.size:
            spins[indices] = np.where(values > 0, 1.0, -1.0)

    def sample(
        self,
        claim_subset: Optional[np.ndarray] = None,
        overlay=None,
    ) -> GibbsResult:
        """Run the chain and collect samples.

        Args:
            claim_subset: When given, only these claims are resampled and
                all others stay fixed — the localisation used for
                component-restricted inference (§5.1).  Defaults to all
                unlabelled claims.
            overlay: Optional read-only state view (probabilities, label
                arrays) substituted for the model's database — e.g. a
                :class:`~repro.guidance.gain.HypotheticalView` pinning a
                hypothetical label without mutating the shared database.
                The chain consumes the generator exactly as it would with
                the database mutated to the same state, so overlay-based
                and mutate-and-restore evaluation are bit-for-bit
                interchangeable.

        Returns:
            A :class:`GibbsResult`; marginals of claims outside the subset
            are taken from the database (or overlay) unchanged.
        """
        database = overlay if overlay is not None else self._model.database
        warm = self._spins is not None
        if self._spins is None or self._spins.size != database.num_claims:
            self._spins = self._initial_spins(database)
        spins = self._spins
        self._pin_labels(spins, database)

        if claim_subset is None:
            free_claims = database.unlabelled_indices
        else:
            claim_subset = np.asarray(claim_subset, dtype=np.intp)
            labelled = set(int(i) for i in database.labelled_indices)
            free_claims = np.asarray(
                [int(c) for c in claim_subset if int(c) not in labelled],
                dtype=np.intp,
            )

        marginals = np.asarray(database.probabilities, dtype=float).copy()
        label_indices, label_values = database.label_arrays()
        if label_indices.size:
            marginals[label_indices] = label_values

        if free_claims.size == 0:
            configuration = (spins > 0).astype(np.int8)
            return GibbsResult(
                marginals=marginals,
                mode_configuration=configuration,
                num_samples=1,
                configuration_counts={configuration.tobytes(): 1},
            )

        stats = self._model.source_statistics(spins)
        burn_in = max(1, self._burn_in // 2) if warm else self._burn_in
        for _ in range(burn_in):
            self._sweep(free_claims, spins, stats)

        counts = np.zeros(free_claims.size)
        configurations: Counter = Counter()
        for _ in range(self._num_samples):
            for _ in range(self._thin):
                self._sweep(free_claims, spins, stats)
            counts += spins[free_claims] > 0
            configurations[(spins > 0).astype(np.int8).tobytes()] += 1

        marginals[free_claims] = counts / self._num_samples
        mode_bytes, _ = configurations.most_common(1)[0]
        mode_configuration = np.frombuffer(mode_bytes, dtype=np.int8).copy()
        return GibbsResult(
            marginals=marginals,
            mode_configuration=mode_configuration,
            num_samples=self._num_samples,
            configuration_counts=dict(configurations),
        )

    def _sweep(
        self, free_claims: np.ndarray, spins: np.ndarray, stats: np.ndarray
    ) -> None:
        """One random-order sequential scan over the free claims."""
        self._engine.sweep(free_claims, spins, stats, self._rng)
