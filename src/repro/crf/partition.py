"""Connected-component index of the CRF graph (§5.1, "Graph partitioning").

The paper accelerates claim selection by decomposing the CRF into its
connected components: claims in different components never influence one
another, so inference and information-gain evaluation can be restricted to
the component of the claim under consideration.

:class:`ComponentIndex` caches the decomposition and answers
claim-to-component queries in O(1).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.data.database import FactDatabase


class ComponentIndex:
    """Cached connected-component decomposition of a fact database."""

    def __init__(self, database: FactDatabase) -> None:
        self._components: List[np.ndarray] = database.connected_components()
        self._claim_component = np.empty(database.num_claims, dtype=np.intp)
        for component_id, members in enumerate(self._components):
            self._claim_component[members] = component_id

    @property
    def num_components(self) -> int:
        """Number of connected components."""
        return len(self._components)

    @property
    def components(self) -> List[np.ndarray]:
        """Claim-index arrays, one per component."""
        return [members.copy() for members in self._components]

    def component_of(self, claim_index: int) -> int:
        """Component identifier of a claim."""
        return int(self._claim_component[claim_index])

    def members_of(self, component_id: int) -> np.ndarray:
        """Claims of a component."""
        return self._components[component_id].copy()

    def component_of_claim(self, claim_index: int) -> np.ndarray:
        """Claims in the same component as ``claim_index`` (inclusive)."""
        return self.members_of(self.component_of(claim_index))

    def sizes(self) -> np.ndarray:
        """Component sizes in component-id order."""
        return np.asarray([members.size for members in self._components])

    def largest(self) -> np.ndarray:
        """Claims of the largest component."""
        sizes = self.sizes()
        return self.members_of(int(np.argmax(sizes)))
