"""Uncertainty measures over probabilistic fact databases (§4.1).

Two estimators of the configuration entropy ``H_C(Q)`` are provided:

* :func:`approximate_entropy` — the linear-time approximation of Eq. 13,
  summing the Bernoulli entropies of the per-claim marginals.  This is the
  "scalable" variant of Fig. 2 and the default everywhere.
* :func:`exact_entropy` — exact computation by enumeration, done per CRF
  connected component (entropy is additive over independent components).
  The paper computes the partition function with Ising methods on its
  acyclic graphs; our coupled graphs are not acyclic in general, so we
  enumerate components up to a size cap and fall back to the approximation
  for larger ones.

Source-trustworthiness uncertainty ``H_S(Q)`` (Eq. 17–18) is estimated from
a grounding: the trust of a source is the fraction of its claims that the
grounding deems credible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.crf.model import CrfModel
from repro.data.database import FactDatabase
from repro.data.grounding import Grounding
from repro.errors import InferenceError

#: Components larger than this are never enumerated exactly.
MAX_EXACT_COMPONENT = 18


def binary_entropy(probabilities: np.ndarray) -> np.ndarray:
    """Elementwise Bernoulli entropy in nats, with ``0 log 0 = 0``."""
    p = np.clip(np.asarray(probabilities, dtype=float), 0.0, 1.0)
    out = np.zeros_like(p)
    interior = (p > 0.0) & (p < 1.0)
    pi = p[interior]
    out[interior] = -(pi * np.log(pi) + (1.0 - pi) * np.log1p(-pi))
    return out


def approximate_entropy(probabilities: np.ndarray) -> float:
    """``H_C(Q)`` by the linear approximation of Eq. 13 (nats)."""
    return float(binary_entropy(probabilities).sum())


def exact_entropy(
    model: CrfModel,
    max_component: int = MAX_EXACT_COMPONENT,
    probabilities: Optional[np.ndarray] = None,
) -> float:
    """``H_C(Q)`` with exact per-component enumeration (Eq. 11–12).

    Claims in components of size ≤ ``max_component`` contribute their exact
    joint entropy (labelled claims are clamped); larger components fall
    back to the marginal approximation of Eq. 13.

    Args:
        model: The CRF model whose energy defines the distribution.
        max_component: Enumeration size cap.
        probabilities: Marginals used for the fallback; defaults to the
            database's current ``P``.

    Returns:
        Entropy in nats.
    """
    if max_component < 1:
        raise InferenceError(
            f"max_component must be positive, got {max_component}"
        )
    max_component = min(max_component, MAX_EXACT_COMPONENT)
    database = model.database
    if probabilities is None:
        probabilities = np.asarray(database.probabilities, dtype=float)
    labelled = set(int(i) for i in database.labelled_indices)

    total = 0.0
    for component in database.connected_components():
        free = np.asarray(
            [int(c) for c in component if int(c) not in labelled], dtype=np.intp
        )
        if free.size == 0:
            continue
        if free.size > max_component:
            total += approximate_entropy(probabilities[free])
            continue
        total += component_entropy(model, free)
    return total


def component_entropy(model: CrfModel, free_claims: np.ndarray) -> float:
    """Exact joint entropy of the free claims of one component (nats).

    Enumerates all ``2^k`` configurations of the free claims with every
    other claim held at its maximum-marginal value, normalises the joint
    potentials, and returns the Shannon entropy.
    """
    free_claims = np.asarray(free_claims, dtype=np.intp)
    k = free_claims.size
    if k == 0:
        return 0.0
    if k > MAX_EXACT_COMPONENT:
        raise InferenceError(
            f"component of {k} claims exceeds the enumeration cap "
            f"{MAX_EXACT_COMPONENT}"
        )
    database = model.database
    base = (np.asarray(database.probabilities) >= 0.5).astype(np.int8)
    for claim_index, label in database.labels.items():
        base[claim_index] = label

    log_potentials = np.empty(2**k)
    config = base.copy()
    for mask in range(2**k):
        for bit in range(k):
            config[free_claims[bit]] = (mask >> bit) & 1
        log_potentials[mask] = model.joint_log_potential(config)
    log_z = _log_sum_exp(log_potentials)
    log_probs = log_potentials - log_z
    probs = np.exp(log_probs)
    return float(-(probs * log_probs).sum())


def _log_sum_exp(values: np.ndarray) -> float:
    peak = values.max()
    return float(peak + np.log(np.exp(values - peak).sum()))


def source_trust_from_grounding(
    database: FactDatabase, grounding: Grounding
) -> np.ndarray:
    """Source trustworthiness Pr(s) per Eq. 17.

    Pr(s) is the fraction of the source's claims the grounding deems
    credible.  Sources without claims get the neutral value 0.5.
    """
    trust = np.full(database.num_sources, 0.5)
    values = grounding.values
    for source_index in range(database.num_sources):
        claims = database.claims_of_source(source_index)
        if claims.size:
            trust[source_index] = float(values[claims].mean())
    return trust


def source_entropy(trust: np.ndarray) -> float:
    """``H_S(Q)`` — summed Bernoulli entropy of source trust (Eq. 18)."""
    return float(binary_entropy(trust).sum())


def unreliable_source_ratio(trust: np.ndarray) -> float:
    """``r_i = |{s | Pr(s) < 0.5}| / |S|`` (§4.4).

    Sources without claims carry the neutral trust 0.5 and therefore do
    not count as unreliable.
    """
    trust = np.asarray(trust, dtype=float)
    if trust.size == 0:
        return 0.0
    return float(np.count_nonzero(trust < 0.5) / trust.size)
