"""Uncertainty measures over probabilistic fact databases (§4.1).

Two estimators of the configuration entropy ``H_C(Q)`` are provided:

* :func:`approximate_entropy` — the linear-time approximation of Eq. 13,
  summing the Bernoulli entropies of the per-claim marginals.  This is the
  "scalable" variant of Fig. 2 and the default everywhere.
* :func:`exact_entropy` — exact computation by enumeration, done per CRF
  connected component (entropy is additive over independent components).
  The paper computes the partition function with Ising methods on its
  acyclic graphs; our coupled graphs are not acyclic in general, so we
  enumerate components up to a size cap and fall back to the approximation
  for larger ones.

Source-trustworthiness uncertainty ``H_S(Q)`` (Eq. 17–18) is estimated from
a grounding: the trust of a source is the fraction of its claims that the
grounding deems credible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.crf.model import CrfModel
from repro.data.database import FactDatabase
from repro.data.grounding import Grounding
from repro.errors import InferenceError
from repro.utils.arrays import concat_ranges

#: Components larger than this are never enumerated exactly.
MAX_EXACT_COMPONENT = 18


def binary_entropy(probabilities: np.ndarray) -> np.ndarray:
    """Elementwise Bernoulli entropy in nats, with ``0 log 0 = 0``."""
    p = np.clip(np.asarray(probabilities, dtype=float), 0.0, 1.0)
    out = np.zeros_like(p)
    interior = (p > 0.0) & (p < 1.0)
    pi = p[interior]
    out[interior] = -(pi * np.log(pi) + (1.0 - pi) * np.log1p(-pi))
    return out


def approximate_entropy(probabilities: np.ndarray) -> float:
    """``H_C(Q)`` by the linear approximation of Eq. 13 (nats)."""
    return float(binary_entropy(probabilities).sum())


def exact_entropy(
    model: CrfModel,
    max_component: int = MAX_EXACT_COMPONENT,
    probabilities: Optional[np.ndarray] = None,
) -> float:
    """``H_C(Q)`` with exact per-component enumeration (Eq. 11–12).

    Claims in components of size ≤ ``max_component`` contribute their exact
    joint entropy (labelled claims are clamped); larger components fall
    back to the marginal approximation of Eq. 13.

    Args:
        model: The CRF model whose energy defines the distribution.
        max_component: Enumeration size cap.
        probabilities: Marginals used for the fallback; defaults to the
            database's current ``P``.

    Returns:
        Entropy in nats.
    """
    if max_component < 1:
        raise InferenceError(
            f"max_component must be positive, got {max_component}"
        )
    max_component = min(max_component, MAX_EXACT_COMPONENT)
    database = model.database
    if probabilities is None:
        probabilities = np.asarray(database.probabilities, dtype=float)
    labelled = set(int(i) for i in database.labelled_indices)

    total = 0.0
    for component in database.connected_components():
        free = np.asarray(
            [int(c) for c in component if int(c) not in labelled], dtype=np.intp
        )
        if free.size == 0:
            continue
        if free.size > max_component:
            total += approximate_entropy(probabilities[free])
            continue
        total += component_entropy(model, free)
    return total


def component_entropy(
    model: CrfModel,
    free_claims: np.ndarray,
    probabilities: Optional[np.ndarray] = None,
) -> float:
    """Exact joint entropy of the free claims of one component (nats).

    Enumerates all ``2^k`` configurations of the free claims with every
    other claim held at its maximum-marginal value, normalises the joint
    potentials, and returns the Shannon entropy.  The enumeration is
    vectorised: only the free claims' contributions to the linear term and
    to the involved sources' consistency statistics vary across
    configurations, so the whole batch of log-potentials is computed with
    a handful of matrix operations instead of ``2^k`` joint evaluations.

    Args:
        model: The CRF model supplying fields, couplings, and labels.
        free_claims: Claims enumerated over (all others held fixed).
        probabilities: Marginals the fixed claims are thresholded from;
            defaults to the database's current probabilities.  Gain
            evaluation passes its hypothetical marginals here so the
            database never has to be mutated to measure an entropy.
    """
    free_claims = np.asarray(free_claims, dtype=np.intp)
    k = free_claims.size
    if k == 0:
        return 0.0
    if k > MAX_EXACT_COMPONENT:
        raise InferenceError(
            f"component of {k} claims exceeds the enumeration cap "
            f"{MAX_EXACT_COMPONENT}"
        )
    database = model.database
    if probabilities is None:
        probabilities = database.probabilities
    base = (np.asarray(probabilities) >= 0.5).astype(float)
    label_indices, label_values = database.label_arrays()
    if label_indices.size:
        base[label_indices] = label_values

    local_fields = model.local_fields
    base_free = base[free_claims]
    lf_free = local_fields[free_claims]
    linear_rest = float(local_fields @ base) - float(lf_free @ base_free)

    gamma = model.weights.coupling if model.coupling_enabled else 0.0
    stance_matrix = None
    if gamma != 0.0:
        spins_base = 2.0 * base - 1.0
        stats_base = model.source_statistics(spins_base)
        denom = np.maximum(model.source_clique_count, 1.0)
        quad_base = stats_base * stats_base / denom
        # Net-stance matrix of the free claims over the sources they touch.
        grouped = model.pair_order
        starts = model.pair_ptr[free_claims]
        counts = model.pair_ptr[free_claims + 1] - starts
        rows = grouped[concat_ranges(starts, counts)]
        if rows.size:
            touched = np.unique(model.pair_source[rows])
            stance_matrix = np.zeros((k, touched.size))
            local_claim = np.repeat(np.arange(k), counts)
            column = np.searchsorted(touched, model.pair_source[rows])
            stance_matrix[local_claim, column] = model.pair_stance[rows]
            stats_touched = stats_base[touched]
            denom_touched = denom[touched]
            quad_rest = float(quad_base.sum() - quad_base[touched].sum())
        else:
            quad_rest = float(quad_base.sum())

    # Enumerate in mask chunks to bound the size of the bit matrices; row
    # m holds the 0/1 values of the free claims under enumeration mask m
    # (bit b ↔ free claim b, matching the scalar enumeration order).
    total = 2**k
    chunk = min(total, 1 << 14)
    log_potentials = np.empty(total)
    bit_columns = np.arange(k)[None, :]
    for start in range(0, total, chunk):
        masks = np.arange(start, min(start + chunk, total))
        bits = ((masks[:, None] >> bit_columns) & 1).astype(float)
        values = linear_rest + bits @ lf_free
        if gamma != 0.0:
            if stance_matrix is not None:
                spin_delta = 2.0 * (bits - base_free[None, :])
                stats_sub = (
                    stats_touched[None, :] + spin_delta @ stance_matrix
                )
                quad = (
                    (stats_sub * stats_sub / denom_touched).sum(axis=1)
                    + quad_rest
                )
            else:
                quad = quad_rest
            values = values + 0.5 * gamma * quad
        log_potentials[start : start + masks.size] = values

    log_z = _log_sum_exp(log_potentials)
    log_probs = log_potentials - log_z
    probs = np.exp(log_probs)
    return float(-(probs * log_probs).sum())


def _log_sum_exp(values: np.ndarray) -> float:
    peak = values.max()
    return float(peak + np.log(np.exp(values - peak).sum()))


def source_trust_from_grounding(
    database: FactDatabase, grounding: Grounding
) -> np.ndarray:
    """Source trustworthiness Pr(s) per Eq. 17.

    Pr(s) is the fraction of the source's claims the grounding deems
    credible.  Sources without claims get the neutral value 0.5.
    """
    values = np.asarray(grounding.values, dtype=float)
    clique_claim, _, clique_source, _ = database.clique_arrays()
    if clique_claim.size == 0:
        return np.full(database.num_sources, 0.5)
    # Unique (source, claim) edges of the bipartite graph, then a per-
    # source mean of the grounding over the connected claims.
    num_claims = database.num_claims
    keys = np.unique(clique_source * num_claims + clique_claim)
    edge_source = keys // num_claims
    edge_claim = keys % num_claims
    counts = np.bincount(edge_source, minlength=database.num_sources)
    sums = np.bincount(
        edge_source, weights=values[edge_claim],
        minlength=database.num_sources,
    )
    trust = np.full(database.num_sources, 0.5)
    covered = counts > 0
    trust[covered] = sums[covered] / counts[covered]
    return trust


def source_entropy(trust: np.ndarray) -> float:
    """``H_S(Q)`` — summed Bernoulli entropy of source trust (Eq. 18)."""
    return float(binary_entropy(trust).sum())


def unreliable_source_ratio(trust: np.ndarray) -> float:
    """``r_i = |{s | Pr(s) < 0.5}| / |S|`` (§4.4).

    Sources without claims carry the neutral trust 0.5 and therefore do
    not count as unreliable.
    """
    trust = np.asarray(trust, dtype=float)
    if trust.size == 0:
        return 0.0
    return float(np.count_nonzero(trust < 0.5) / trust.size)
