"""CRF substrate (§3.1): potentials, energy model, sampling, entropy.

This package provides the probabilistic machinery the rest of the framework
builds on: clique featurisation (:class:`CliqueFeaturizer`), the tied-weight
energy model (:class:`CrfModel`), Gibbs sampling with pinned user labels
(:class:`GibbsSampler`), entropy estimators (§4.1) and the
connected-component index used for localisation (§5.1).
"""

from repro.crf.entropy import (
    MAX_EXACT_COMPONENT,
    approximate_entropy,
    binary_entropy,
    component_entropy,
    exact_entropy,
    source_entropy,
    source_trust_from_grounding,
    unreliable_source_ratio,
)
from repro.crf.gibbs import GibbsResult, GibbsSampler
from repro.crf.model import CrfModel
from repro.crf.partition import ComponentIndex
from repro.crf.potentials import (
    AGGREGATION_MODES,
    CliqueFeaturizer,
    clique_feature_names,
    log_sigmoid,
    sigmoid,
)
from repro.crf.weights import CrfWeights

__all__ = [
    "AGGREGATION_MODES",
    "MAX_EXACT_COMPONENT",
    "CliqueFeaturizer",
    "ComponentIndex",
    "CrfModel",
    "CrfWeights",
    "GibbsResult",
    "GibbsSampler",
    "approximate_entropy",
    "binary_entropy",
    "clique_feature_names",
    "component_entropy",
    "exact_entropy",
    "log_sigmoid",
    "sigmoid",
    "source_entropy",
    "source_trust_from_grounding",
    "unreliable_source_ratio",
]
