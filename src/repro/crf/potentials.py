"""Clique featurisation for the log-linear potentials (Eq. 2).

Each relation factor π = {c, d, s} contributes evidence about its claim's
credibility.  In the tied-weight model the evidence of a clique is the dot
product of the weight vector with the clique feature map ``[1, f^D(d),
f^S(s)]``, multiplied by the stance sign (the opposing-variable
construction of Eq. 3: a refuting document's evidence enters with a flipped
sign).

:class:`CliqueFeaturizer` precomputes the clique feature matrix and a
CSR-style index from claims to their cliques, and aggregates clique
evidence into per-claim *local fields*.  Aggregation modes:

* ``"sum"`` — the faithful product-of-potentials reading of Eq. 1; claims
  referenced by many documents accumulate unbounded evidence.
* ``"mean"`` — average evidence; coverage does not increase confidence.
* ``"sqrt"`` (default) — sum scaled by ``1/sqrt(n)``: confidence grows with
  coverage at the statistically natural rate and the Gibbs conditionals
  stay in a numerically benign range.  DESIGN.md lists this as an ablation
  knob (`benchmarks/test_ablation_aggregation.py`).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.analysis.contracts import derived_cache, mutates
from repro.data.database import DatabaseDelta, FactDatabase
from repro.errors import InferenceError
from repro.utils.arrays import concat_ranges

#: Supported claim-evidence aggregation modes.
AGGREGATION_MODES = ("sum", "mean", "sqrt")


class CliqueFeaturizer:
    """Precomputed clique features and claim-to-clique indexing.

    Args:
        database: The fact database whose structure is featurised.
        aggregation: One of :data:`AGGREGATION_MODES`.
    """

    def __init__(self, database: FactDatabase, aggregation: str = "sqrt") -> None:
        if aggregation not in AGGREGATION_MODES:
            raise InferenceError(
                f"aggregation must be one of {AGGREGATION_MODES}, "
                f"got {aggregation!r}"
            )
        self._database = database
        self._aggregation = aggregation
        self._build()

    @mutates("design_matrix")
    def _build(self) -> None:
        database = self._database
        num_cliques = database.num_cliques
        m_d = database.document_features.shape[1]
        m_s = database.source_features.shape[1]
        self._feature_dim = 1 + m_d + m_s

        clique_claim, clique_document, clique_source, stance_signs = (
            database.clique_arrays()
        )
        features = np.empty((num_cliques, self._feature_dim), dtype=float)
        features[:, 0] = 1.0
        features[:, 1 : 1 + m_d] = database.document_features[clique_document]
        features[:, 1 + m_d :] = database.source_features[clique_source]
        # The stance sign multiplies the whole evidence term (Eq. 3).
        # ``_signed_buffer`` over-allocates under streaming growth so the
        # common append-only arrival avoids an O(cliques) matrix copy;
        # ``_signed_features`` is always the exact-length view of it.
        self._signed_buffer = features * stance_signs[:, None]
        self._signed_features = self._signed_buffer
        self._clique_claim = clique_claim
        self._clique_source = clique_source
        self._stance_signs = stance_signs

        # CSR layout: cliques sorted by claim, with per-claim slices.
        order = np.argsort(clique_claim, kind="stable")
        self._clique_order = order
        counts = np.bincount(clique_claim, minlength=database.num_claims)
        self._claim_ptr = np.concatenate(([0], np.cumsum(counts)))
        self._claim_degree = counts.astype(float)
        self._design_matrix: Optional[np.ndarray] = None

    @mutates("design_matrix")
    def grow(self, delta: DatabaseDelta) -> None:
        """Patch the cached matrices after :meth:`FactDatabase.extend`.

        New signed-feature rows are inserted at the positions the grown
        clique arrays assign them, the claim-CSR index is re-derived from
        the (already exact) columnar arrays, and the cached design matrix
        is patched for the touched claims only — each cache ends up
        bit-for-bit identical to a from-scratch :meth:`_build`.
        """
        database = self._database
        m_d = database.document_features.shape[1]
        m_s = database.source_features.shape[1]
        if 1 + m_d + m_s != self._feature_dim:
            # Feature width was discovered by this growth step (the first
            # arrivals carried no evidence): fall back to a full rebuild.
            self._build()
            return
        if delta.num_new_cliques:
            rows = np.empty((delta.num_new_cliques, self._feature_dim), dtype=float)
            rows[:, 0] = 1.0
            rows[:, 1 : 1 + m_d] = database.document_features[
                delta.new_clique_document
            ]
            rows[:, 1 + m_d :] = database.source_features[delta.new_clique_source]
            rows *= delta.new_clique_sign[:, None]
            n_old = self._signed_features.shape[0]
            n_new = n_old + delta.num_new_cliques
            if np.all(delta.insert_at == n_old):
                # Append-only growth (new documents carry the largest
                # sort keys): amortised O(new rows) via the buffer.
                if self._signed_buffer.shape[0] < n_new:
                    capacity = max(n_new, 2 * self._signed_buffer.shape[0])
                    buffer = np.empty((capacity, self._feature_dim), dtype=float)
                    buffer[:n_old] = self._signed_features
                    self._signed_buffer = buffer
                self._signed_buffer[n_old:n_new] = rows
            else:
                # Mid-array insertion (a parked forward link
                # materialised): pay the full copy, it is rare.
                self._signed_buffer = np.insert(
                    self._signed_features, delta.insert_at, rows, axis=0
                )
            self._signed_features = self._signed_buffer[:n_new]
        clique_claim, _, clique_source, stance_signs = database.clique_arrays()
        self._clique_claim = clique_claim
        self._clique_source = clique_source
        self._stance_signs = stance_signs
        n_before = delta.num_cliques_before
        if delta.num_new_cliques and np.all(delta.insert_at == n_before):
            # Append-only: every new clique has a larger global index
            # than all existing ones, so it lands at the END of its
            # claim's CSR group — splice the order array instead of
            # re-running the stable argsort.  Cliques sharing a splice
            # position (same claim, a brand-new claim, or claims
            # separated only by zero-clique claims) must enter in
            # claim-then-index order, so sort the delta by claim first
            # (stable keeps ascending global index within a claim);
            # np.insert preserves that order at equal positions.
            old_ptr = self._claim_ptr
            by_claim = np.argsort(delta.new_clique_claim, kind="stable")
            positions = old_ptr[
                np.minimum(delta.new_clique_claim[by_claim] + 1, old_ptr.size - 1)
            ]
            self._clique_order = np.insert(
                self._clique_order,
                positions,
                (n_before + by_claim).astype(self._clique_order.dtype),
            )
        elif delta.num_new_cliques:
            self._clique_order = np.argsort(clique_claim, kind="stable")
        counts = np.bincount(clique_claim, minlength=database.num_claims)
        self._claim_ptr = np.concatenate(([0], np.cumsum(counts)))
        self._claim_degree = counts.astype(float)
        self._patch_design_matrix(delta)

    def _patch_design_matrix(self, delta: DatabaseDelta) -> None:
        if self._design_matrix is None:
            return  # built lazily from the grown arrays on first use
        num_claims = self._database.num_claims
        matrix = self._design_matrix
        if num_claims > matrix.shape[0]:
            matrix = np.vstack(
                [matrix, np.zeros((num_claims - matrix.shape[0], self._feature_dim))]
            )
        touched = delta.touched_claims
        if touched.size:
            starts = self._claim_ptr[touched]
            counts = self._claim_ptr[touched + 1] - starts
            gathered = self._clique_order[concat_ranges(starts, counts)]
            segments = np.repeat(np.arange(touched.size, dtype=np.intp), counts)
            sums = np.zeros((touched.size, self._feature_dim))
            # np.add.at accumulates in index order; ``gathered`` walks each
            # claim's cliques in ascending global order, the same order the
            # full-matrix build visits them — keeping the patched rows
            # bit-for-bit equal to a rebuild.
            np.add.at(sums, segments, self._signed_features[gathered])
            matrix[touched] = sums * self.aggregation_scale()[touched][:, None]
        self._design_matrix = matrix

    # ------------------------------------------------------------------

    @property
    def database(self) -> FactDatabase:
        """The featurised fact database."""
        return self._database

    @property
    def aggregation(self) -> str:
        """Active aggregation mode."""
        return self._aggregation

    @property
    def feature_dim(self) -> int:
        """Dimensionality of the clique feature map ``[1, f^D, f^S]``."""
        return self._feature_dim

    @property
    def clique_claim(self) -> np.ndarray:
        """Claim index of every clique."""
        return self._clique_claim

    @property
    def clique_source(self) -> np.ndarray:
        """Source index of every clique."""
        return self._clique_source

    @property
    def stance_signs(self) -> np.ndarray:
        """Stance sign (+1 support / -1 refute) of every clique."""
        return self._stance_signs

    @property
    def signed_features(self) -> np.ndarray:
        """Clique feature matrix with stance signs applied."""
        return self._signed_features

    @property
    def claim_degree(self) -> np.ndarray:
        """Number of cliques per claim."""
        return self._claim_degree

    def cliques_of_claim(self, claim_index: int) -> np.ndarray:
        """Clique indices of one claim (CSR slice)."""
        start, stop = self._claim_ptr[claim_index], self._claim_ptr[claim_index + 1]
        return self._clique_order[start:stop]

    def aggregation_scale(self) -> np.ndarray:
        """Per-claim scale factor implementing the aggregation mode.

        Multiplying a claim's summed clique evidence by this factor yields
        the aggregated evidence; claims with no cliques get scale 0.
        """
        degree = self._claim_degree
        scale = np.zeros_like(degree)
        covered = degree > 0
        if self._aggregation == "sum":
            scale[covered] = 1.0
        elif self._aggregation == "mean":
            scale[covered] = 1.0 / degree[covered]
        else:  # sqrt
            scale[covered] = 1.0 / np.sqrt(degree[covered])
        return scale

    @derived_cache(
        "design_matrix",
        backing=(
            "_signed_features",
            "_signed_buffer",
            "_clique_claim",
            "_clique_source",
            "_stance_signs",
            "_clique_order",
            "_claim_ptr",
            "_claim_degree",
        ),
        hook="_patch_design_matrix",
        storage="_design_matrix",
    )
    def claim_design_matrix(self) -> np.ndarray:
        """Aggregated clique features per claim (M-step design matrix).

        Row ``c`` is ``scale(c) * Σ_{π ∈ cliques(c)} sign_π [1, f^D, f^S]``,
        so the local field of claim ``c`` equals the dot product of this row
        with the feature weights.  Claims with no cliques get a zero row.

        The matrix depends only on the database structure, so it is built
        once and cached — every EM round reuses the same ``X``, and
        streaming growth patches only the touched rows via :meth:`grow`.
        """
        if self._design_matrix is None:
            sums = np.zeros((self._database.num_claims, self._feature_dim))
            np.add.at(sums, self._clique_claim, self._signed_features)
            self._design_matrix = sums * self.aggregation_scale()[:, None]
        view = self._design_matrix.view()
        view.flags.writeable = False
        return view

    def local_fields(self, feature_weights: np.ndarray) -> np.ndarray:
        """Per-claim aggregated evidence ``z_c · w`` (the direct relation).

        Args:
            feature_weights: Weight vector for ``[1, f^D, f^S]``.

        Returns:
            Vector of length ``num_claims``.
        """
        feature_weights = np.asarray(feature_weights, dtype=float)
        if feature_weights.shape != (self._feature_dim,):
            raise InferenceError(
                f"expected {self._feature_dim} feature weights, "
                f"got shape {feature_weights.shape}"
            )
        clique_evidence = self._signed_features @ feature_weights
        sums = np.zeros(self._database.num_claims)
        np.add.at(sums, self._clique_claim, clique_evidence)
        return sums * self.aggregation_scale()


def sigmoid(values: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    values = np.asarray(values, dtype=float)
    out = np.empty_like(values)
    positive = values >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-values[positive]))
    exp_vals = np.exp(values[~positive])
    out[~positive] = exp_vals / (1.0 + exp_vals)
    return out


def log_sigmoid(values: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(sigmoid(x))``."""
    values = np.asarray(values, dtype=float)
    return -np.logaddexp(0.0, -values)


def clique_feature_names(database: FactDatabase) -> Tuple[str, ...]:
    """Human-readable names of the clique feature map columns."""
    m_d = database.document_features.shape[1]
    m_s = database.source_features.shape[1]
    names = ["bias"]
    names += [f"doc_f{i}" for i in range(m_d)]
    names += [f"src_f{i}" for i in range(m_s)]
    return tuple(names)
