"""Deprecation plumbing for the pre-``repro.api`` constructor surface.

The kwarg-explosion constructors of :class:`~repro.validation.process.ValidationProcess`,
:class:`~repro.inference.icrf.ICrf`, and
:class:`~repro.streaming.process.StreamingFactChecker` remain functional but
are superseded by the declarative spec/session layer in :mod:`repro.api`.
Calling them directly emits a :class:`LegacyAPIWarning`; framework-internal
construction (the session façade, the experiment drivers, nested defaults)
wraps itself in :func:`suppress_legacy_warnings` so only *user* code is
nudged towards the new API.

This module must stay dependency-free within the package — it is imported
by the lowest layers and by :mod:`repro.api` alike.
"""

from __future__ import annotations

import threading
import warnings
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "LegacyAPIWarning",
    "suppress_legacy_warnings",
    "warn_legacy",
]


class LegacyAPIWarning(DeprecationWarning):
    """Warning category for deprecated pre-``repro.api`` entry points."""


_state = threading.local()


def _depth() -> int:
    return getattr(_state, "depth", 0)


@contextmanager
def suppress_legacy_warnings() -> Iterator[None]:
    """Mark the enclosed constructions as framework-internal (no warning)."""
    _state.depth = _depth() + 1
    try:
        yield
    finally:
        _state.depth = _depth() - 1


def warn_legacy(old: str, new: str) -> None:
    """Emit a :class:`LegacyAPIWarning` unless inside internal construction.

    Args:
        old: The legacy entry point being invoked (e.g. ``"ValidationProcess(...)"``).
        new: The replacement to steer users to (e.g. ``"repro.api.FactCheckSession"``).
    """
    if _depth() > 0:
        return
    warnings.warn(
        f"{old} is deprecated as a direct entry point; use {new} instead "
        f"(see docs/API.md for the migration table)",
        LegacyAPIWarning,
        stacklevel=3,
    )
