"""Credibility inference (§3): iCRF EM, TRON optimiser, grounding decisions."""

from repro.inference.decide import decide_grounding, threshold_grounding
from repro.inference.engine import (
    ENGINE_BACKENDS,
    EngineConfig,
    InferenceEngine,
    NumpyEngine,
    ReferenceEngine,
    create_engine,
)
from repro.inference.icrf import ICrf
from repro.inference.mstep import MStepConfig, build_design_matrix, run_m_step
from repro.inference.result import InferenceResult
from repro.inference.tron import (
    TronResult,
    WeightedLogisticLoss,
    tron_minimize,
)

__all__ = [
    "ENGINE_BACKENDS",
    "EngineConfig",
    "ICrf",
    "InferenceEngine",
    "InferenceResult",
    "MStepConfig",
    "NumpyEngine",
    "ReferenceEngine",
    "TronResult",
    "WeightedLogisticLoss",
    "build_design_matrix",
    "create_engine",
    "decide_grounding",
    "run_m_step",
    "threshold_grounding",
    "tron_minimize",
]
