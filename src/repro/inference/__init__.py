"""Credibility inference (§3): iCRF EM, TRON optimiser, grounding decisions."""

from repro.inference.decide import decide_grounding, threshold_grounding
from repro.inference.icrf import ICrf
from repro.inference.mstep import MStepConfig, build_design_matrix, run_m_step
from repro.inference.result import InferenceResult
from repro.inference.tron import (
    TronResult,
    WeightedLogisticLoss,
    tron_minimize,
)

__all__ = [
    "ICrf",
    "InferenceResult",
    "MStepConfig",
    "TronResult",
    "WeightedLogisticLoss",
    "build_design_matrix",
    "decide_grounding",
    "run_m_step",
    "threshold_grounding",
    "tron_minimize",
]
