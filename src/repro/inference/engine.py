"""Pluggable inference engine — the vectorised hot path of iCRF.

The interactivity claims of the paper (Fig. 2 response times, the
linear-time Hessian-vector products of Proposition 1) stand or fall with
the cost of the E-step/M-step inner loops.  This module concentrates that
hot path behind one small interface so backends can be swapped via
configuration:

* :class:`ReferenceEngine` (``backend="reference"``) — the original
  claim-at-a-time implementation, kept verbatim as the semantic ground
  truth.  Golden fixtures are recorded against it and the vectorised
  backend is tested for bit-for-bit agreement.
* :class:`NumpyEngine` (``backend="numpy"``, the default) — blocked
  vectorised sweeps over precomputed, cached per-claim evidence matrices,
  plus fully vectorised M-step design assembly.

**Exact speculative-batch Gibbs sweeps.**  A sequential-scan Gibbs sweep
draws its permutation and its uniform thresholds *before* the scan, so
the random stream is fixed regardless of how the updates are executed.
A claim's conditional depends on the rest of the configuration only
through the per-source consistency statistics ``A_s``, and ``A_s`` only
changes when a claim actually *flips*.  The vectorised sweep exploits
this: it computes every position's conditional in one batch against the
sweep-start statistics — exact for every position not preceded by a flip
touching one of its sources — and then walks the scan order with a
dirty-source set, committing batch decisions where they are still valid
and recomputing the (typically few) invalidated conditionals
incrementally over plain-Python evidence rows remapped to the free set.
Both the batch and the fixup evaluate the same formula as the scalar
reference; their summation order and exp implementation can round
differently by one ulp, which flips a decision only when a pre-drawn
threshold falls inside that ulp (~1e-16 per draw — never observed; the
golden fixtures and the hypothesis equivalence suite assert exact
chain equality).  The payoff: ~10 tiny NumPy calls per claim become one
batch per sweep plus O(degree) incremental work per flip, and a sweep
restricted to a claim subset costs O(|subset|·degree) rather than
O(num_claims).  With the coupling weight γ = 0 the conditionals
decouple entirely and the whole sweep is a single batch.

**Cached evidence matrices.**  All structure-derived arrays — the
claim-grouped (claim, source) pair table, the per-pair normalisers
``n_s``, and the per-claim aggregated clique features of the M-step design
matrix — are computed once per model and reused across sweeps, EM rounds
and validation iterations; pinning a user label or updating weights never
invalidates them.  Engines are memoised per model, so throwaway samplers
(hypothetical-gain evaluation, confirmation sweeps) reuse the caches too.
Streaming arrivals grow the model in place (:meth:`CrfModel.grow`), which
calls :meth:`InferenceEngine.refresh_structure` on every memoised engine —
the engine re-derives its gathered pair views from the grown model instead
of being rebuilt per arrival.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Type, Union

import numpy as np

from repro.analysis.contracts import derived_cache, mutates
from repro.crf.model import CrfModel
from repro.crf.potentials import sigmoid
from repro.errors import InferenceError
from repro.utils.arrays import concat_ranges

MStepData = Tuple[np.ndarray, np.ndarray, np.ndarray]


@dataclass(frozen=True)
class EngineConfig:
    """Backend selection for the inference hot path.

    Attributes:
        backend: Registered backend name; ``"numpy"`` (vectorised,
            default) or ``"reference"`` (scalar ground truth).  Future
            backends (numba, sharded) register themselves in
            :data:`ENGINE_BACKENDS`.
    """

    backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.backend not in ENGINE_BACKENDS:
            raise InferenceError(
                f"unknown engine backend {self.backend!r}; "
                f"available: {tuple(sorted(ENGINE_BACKENDS))}"
            )


class InferenceEngine:
    """Hot-path operations bound to one :class:`~repro.crf.model.CrfModel`.

    An engine is stateless with respect to the Gibbs chain — all chain
    state lives in the sampler — so one engine can safely serve several
    samplers over the same model.
    """

    #: Registry name of the backend; subclasses override.
    name = "abstract"

    def __init__(self, model: CrfModel) -> None:
        self._model = model

    @property
    def model(self) -> CrfModel:
        """The model whose structure is cached."""
        return self._model

    def refresh_structure(self) -> None:
        """Re-derive cached structure after the model grows in place.

        Called by :meth:`CrfModel.grow` on every memoised engine when a
        streaming arrival extends the database.  The base implementation
        is a no-op — backends that cache structure-derived arrays
        override it.
        """

    def sweep(
        self,
        free_claims: np.ndarray,
        spins: np.ndarray,
        stats: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """One random-order sequential scan over the free claims.

        Mutates ``spins`` and keeps ``stats`` (the per-source consistency
        statistics ``A_s``) consistent with them.  Every backend consumes
        the random stream identically: one permutation draw followed by
        one uniform draw per free claim.
        """
        raise NotImplementedError

    def assemble_mstep(
        self, marginals: np.ndarray, config
    ) -> Optional[MStepData]:
        """Expected-statistics design ``(X, targets, weights)`` for TRON.

        Labelled claims contribute one boosted row with their user label;
        unlabelled claims contribute two fractional rows (target 1 with
        weight ``q``, target 0 with weight ``1 - q``).  Returns ``None``
        when no claim meets the coverage threshold.
        """
        raise NotImplementedError


class ReferenceEngine(InferenceEngine):
    """Claim-at-a-time scalar implementation (the seed semantics)."""

    name = "reference"

    def sweep(
        self,
        free_claims: np.ndarray,
        spins: np.ndarray,
        stats: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        model = self._model
        order = rng.permutation(free_claims.size)
        thresholds = rng.random(free_claims.size)
        for position in order:
            claim_index = int(free_claims[position])
            logit = model.conditional_logit(claim_index, spins, stats)
            probability = float(sigmoid(np.asarray(logit)))
            new_spin = 1.0 if thresholds[position] < probability else -1.0
            old_spin = spins[claim_index]
            if new_spin == old_spin:
                continue
            delta = new_spin - old_spin
            rows = model.pairs_of_claim(claim_index)
            if rows.size:
                np.add.at(
                    stats,
                    model.pair_source[rows],
                    model.pair_stance[rows] * delta,
                )
            spins[claim_index] = new_spin

    def assemble_mstep(
        self, marginals: np.ndarray, config
    ) -> Optional[MStepData]:
        from repro.inference.mstep import build_design_matrix

        model = self._model
        database = model.database
        design_all = build_design_matrix(model, marginals)
        covered = model.featurizer.claim_degree >= config.min_coverage
        rows = []
        targets = []
        weights = []
        labels = database.labels
        for claim_index in range(database.num_claims):
            if not covered[claim_index]:
                continue
            row = design_all[claim_index]
            label = labels.get(claim_index)
            if label is not None:
                rows.append(row)
                targets.append(float(label))
                weights.append(config.labelled_weight)
            else:
                q = float(marginals[claim_index])
                rows.append(row)
                targets.append(1.0)
                weights.append(q)
                rows.append(row)
                targets.append(0.0)
                weights.append(1.0 - q)
        if not rows:
            return None
        return np.asarray(rows), np.asarray(targets), np.asarray(weights)


class NumpyEngine(InferenceEngine):
    """Blocked vectorised backend over cached evidence matrices."""

    name = "numpy"

    def __init__(self, model: CrfModel) -> None:
        super().__init__(model)
        self.refresh_structure()

    @mutates("free_set_gather")
    def refresh_structure(self) -> None:
        """(Re)build the claim-grouped pair views from the model.

        Runs at construction and again whenever a streaming arrival grows
        the model in place; the free-set gather cache is dropped because
        claim indices shift meaning when the structure changes.
        """
        model = self._model
        # Claim-grouped view of the (claim, source) pair table: claim c's
        # pair rows are the grouped slice ptr[c]:ptr[c + 1].
        grouped = model.pair_order
        self._ptr = model.pair_ptr
        self._g_source = model.pair_source[grouped]
        self._g_stance = model.pair_stance[grouped]
        self._g_denom = np.maximum(
            model.source_clique_count[self._g_source], 1.0
        )
        # Gathered-row cache keyed by the free-claim set: sample() runs
        # many sweeps over the same free claims, so the scatter/gather
        # index work is done once per set, not once per sweep.  Key and
        # data live in one tuple so the swap is a single (GIL-atomic)
        # attribute assignment — the engine is memoised per model and may
        # be shared by samplers on different threads.
        self._gather_state: Optional[Tuple[bytes, Tuple[np.ndarray, ...]]] = None

    # ------------------------------------------------------------------
    # Gibbs sweep
    # ------------------------------------------------------------------

    def sweep(
        self,
        free_claims: np.ndarray,
        spins: np.ndarray,
        stats: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        n = free_claims.size
        order = rng.permutation(n)
        thresholds = rng.random(n)
        scan = free_claims[order]
        scan_thresholds = thresholds[order]
        model = self._model
        local_fields = model.local_fields
        gamma = model.weights.coupling if model.coupling_enabled else 0.0

        if gamma == 0.0:
            # The conditionals decouple: the whole sweep is one batch.
            self._resample_block(
                scan, scan_thresholds, local_fields[scan], spins, stats
            )
            return

        # Speculative batch: every conditional against sweep-start stats.
        # A_s is position-independent, so the batch is computed in free-
        # claim order (whose gather indices are cached) and permuted.
        f_source, f_stance, f_denom, f_segment, f_counts = self._gathered(
            free_claims
        )
        own = f_stance * np.repeat(spins[free_claims], f_counts)
        contributions = f_stance * (stats[f_source] - own) / f_denom
        sums = np.bincount(f_segment, weights=contributions, minlength=n)
        logits = local_fields[free_claims] + (2.0 * gamma) * sums
        probabilities = sigmoid(logits[order])
        tentative = np.where(
            scan_thresholds < probabilities, 1.0, -1.0
        )
        flip = tentative != spins[scan]
        if not flip.any():
            return

        # Fixup walk: commit batch decisions while their sources are
        # clean; past the first flip, recompute invalidated conditionals
        # incrementally over plain-Python evidence rows remapped to the
        # free-claim set (sources get compact local ids, so only the
        # touched slices of ``spins``/``stats`` are converted — a sweep
        # over a small claim subset costs O(|free|·deg), never
        # O(num_claims + num_sources)).
        touched_sources, rows_local = self._local_rows(free_claims)
        order_l = order.tolist()
        thresholds_l = scan_thresholds.tolist()
        tentative_l = tentative.tolist()
        flip_l = flip.tolist()
        spins_l = spins[free_claims].tolist()
        stats_l = stats[touched_sources].tolist()
        lf_l = local_fields[free_claims].tolist()
        two_gamma = 2.0 * gamma
        dirty = bytearray(len(touched_sources))
        any_dirty = False
        for position in range(n):
            free_index = order_l[position]
            rows = rows_local[free_index]
            valid = True
            if any_dirty:
                for source, _, _ in rows:
                    if dirty[source]:
                        valid = False
                        break
            old_spin = spins_l[free_index]
            if valid:
                if not flip_l[position]:
                    continue
                new_spin = tentative_l[position]
            else:
                accumulated = 0.0
                for source, stance, denominator in rows:
                    accumulated += (
                        stance * (stats_l[source] - stance * old_spin)
                        / denominator
                    )
                logit = lf_l[free_index] + two_gamma * accumulated
                new_spin = (
                    1.0
                    if thresholds_l[position] < _sigmoid_scalar(logit)
                    else -1.0
                )
                if new_spin == old_spin:
                    continue
            delta = new_spin - old_spin
            for source, stance, _ in rows:
                stats_l[source] += stance * delta
                dirty[source] = 1
            if rows:
                any_dirty = True
            spins_l[free_index] = new_spin
        spins[free_claims] = spins_l
        stats[touched_sources] = stats_l

    def _gathered(
        self, free_claims: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Cached gathered pair rows of the free-claim set.

        Returns ``(source, stance, denom, segment, counts)`` where the
        first three are the concatenated evidence rows of the free claims
        in order, ``segment`` maps each row to its free-claim position,
        and ``counts`` is rows per free claim.
        """
        return self._free_set_cache(free_claims)["batch"]

    def _local_rows(self, free_claims: np.ndarray) -> Tuple[np.ndarray, list]:
        """Evidence rows of the free set with compact local source ids.

        Returns ``(touched_sources, rows_local)``: the sorted global ids
        of every source touched by the free claims, and — per free claim
        — a plain-Python list of ``(local_source, stance, normaliser)``
        tuples for the fixup walk.  Built lazily (batch-only sweeps never
        pay for it) and cached with the free set.
        """
        cache = self._free_set_cache(free_claims)
        local = cache.get("local")
        if local is None:
            f_source, f_stance, f_denom, _, f_counts = cache["batch"]
            touched, local_ids = np.unique(f_source, return_inverse=True)
            ids = local_ids.tolist()
            stances = f_stance.tolist()
            denoms = f_denom.tolist()
            rows_local = []
            cursor = 0
            for count in f_counts.tolist():
                rows_local.append(
                    list(zip(ids[cursor : cursor + count],
                             stances[cursor : cursor + count],
                             denoms[cursor : cursor + count]))
                )
                cursor += count
            local = (touched, rows_local)
            cache["local"] = local
        return local

    @derived_cache(
        "free_set_gather",
        backing=("_ptr", "_g_source", "_g_stance", "_g_denom"),
        storage="_gather_state",
    )
    def _free_set_cache(self, free_claims: np.ndarray) -> dict:
        """Cache entry of the free-claim set (atomic whole-dict swap)."""
        key = free_claims.tobytes()
        state = self._gather_state
        if state is None or state[0] != key:
            ptr = self._ptr
            starts = ptr[free_claims]
            counts = ptr[free_claims + 1] - starts
            gathered = concat_ranges(starts, counts)
            state = (
                key,
                {
                    "batch": (
                        self._g_source[gathered],
                        self._g_stance[gathered],
                        self._g_denom[gathered],
                        np.repeat(np.arange(free_claims.size), counts),
                        counts,
                    ),
                },
            )
            self._gather_state = state
        return state[1]

    def _resample_block(
        self,
        block: np.ndarray,
        thresholds: np.ndarray,
        logits: np.ndarray,
        spins: np.ndarray,
        stats: np.ndarray,
    ) -> None:
        """Resample a batch of claims from precomputed logits.

        Flips are applied to ``spins`` and ``A_s`` is patched to stay
        consistent with them.
        """
        probabilities = sigmoid(logits)
        new_spins = np.where(thresholds < probabilities, 1.0, -1.0)
        old_spins = spins[block]
        flipped = new_spins != old_spins
        if not flipped.any():
            return
        delta = new_spins[flipped] - old_spins[flipped]
        changed = block[flipped]
        ptr = self._ptr
        starts = ptr[changed]
        counts = ptr[changed + 1] - starts
        rows = concat_ranges(starts, counts)
        if rows.size:
            np.add.at(
                stats,
                self._g_source[rows],
                self._g_stance[rows] * np.repeat(delta, counts),
            )
        spins[changed] = new_spins[flipped]

    # ------------------------------------------------------------------
    # M-step design assembly
    # ------------------------------------------------------------------

    def assemble_mstep(
        self, marginals: np.ndarray, config
    ) -> Optional[MStepData]:
        from repro.inference.mstep import build_design_matrix

        model = self._model
        database = model.database
        num_claims = database.num_claims
        design_all = build_design_matrix(model, marginals)
        covered = np.flatnonzero(
            model.featurizer.claim_degree >= config.min_coverage
        )
        if covered.size == 0:
            return None
        label_indices, label_values = database.label_arrays()
        is_labelled = np.zeros(num_claims, dtype=bool)
        is_labelled[label_indices] = True
        label_of = np.zeros(num_claims)
        label_of[label_indices] = label_values

        # Row layout matches the scalar reference: claims in index order,
        # one row per labelled claim, a (target 1, target 0) pair per
        # unlabelled claim.
        repeats = np.where(is_labelled[covered], 1, 2)
        row_claims = np.repeat(covered, repeats)
        design = design_all[row_claims]
        ends = np.cumsum(repeats)
        second_rows = ends[repeats == 2] - 1
        targets = np.ones(row_claims.size)
        targets[second_rows] = 0.0
        weights = np.asarray(marginals, dtype=float)[row_claims].copy()
        weights[second_rows] = 1.0 - weights[second_rows]
        labelled_rows = is_labelled[row_claims]
        targets[labelled_rows] = label_of[row_claims][labelled_rows]
        weights[labelled_rows] = config.labelled_weight
        return design, targets, weights


#: Registered engine backends, keyed by :attr:`InferenceEngine.name`.
ENGINE_BACKENDS: Dict[str, Type[InferenceEngine]] = {
    ReferenceEngine.name: ReferenceEngine,
    NumpyEngine.name: NumpyEngine,
}


def create_engine(
    model: CrfModel,
    config: Union[None, str, EngineConfig, "InferenceEngine"] = None,
) -> InferenceEngine:
    """Engine for ``model`` per the configured backend, memoised per model.

    The memo lives on the model instance, so cached engines share the
    model's lifetime, and :meth:`CrfModel.grow` can refresh every engine
    of a streaming model in place when an arrival extends the structure.

    Args:
        model: The CRF model whose structure is cached.
        config: ``None`` (default backend), a backend name, a full
            :class:`EngineConfig`, or an already-built engine (returned
            as-is after checking it is bound to ``model``).
    """
    if isinstance(config, InferenceEngine):
        if config.model is not model:
            raise InferenceError("engine is bound to a different model")
        return config
    if config is None:
        config = EngineConfig()
    elif isinstance(config, str):
        config = EngineConfig(backend=config)
    per_model: Optional[Dict[str, InferenceEngine]] = getattr(
        model, "_engine_cache", None
    )
    if per_model is None:
        per_model = {}
        model._engine_cache = per_model  # type: ignore[attr-defined]
    engine = per_model.get(config.backend)
    if engine is None:
        engine = ENGINE_BACKENDS[config.backend](model)
        per_model[config.backend] = engine
    return engine





def _sigmoid_scalar(value: float) -> float:
    """Numerically stable scalar logistic, for the incremental fixups."""
    if value >= 0.0:
        return 1.0 / (1.0 + math.exp(-value))
    exp_value = math.exp(value)
    return exp_value / (1.0 + exp_value)
