"""L2-regularised Trust Region Newton Method (TRON) for logistic regression.

The paper's M-step "is realised by a L2-regularized Trust Region Newton
Method [45], suited for large-scale data" — reference [45] is Lin, Weng &
Keerthi, *Trust region Newton method for logistic regression*, JMLR 2008.
This module implements that algorithm from scratch for *weighted* logistic
regression, which the EM M-step needs: every unlabelled claim contributes
two examples weighted by its current credibility estimate (Eq. 8).

The objective is::

    f(w) = (λ/2) ||w||² + Σ_i α_i [ log(1 + exp(z_i)) - t_i z_i ],
    z = X w

with targets ``t_i ∈ {0, 1}`` and non-negative sample weights ``α_i``.
The trust-region subproblem ``min_s  g·s + ½ sᵀHs  s.t. ||s|| ≤ Δ`` is
solved by the Steihaug conjugate-gradient method; Hessian-vector products
use the standard ``Hv = λv + Xᵀ(α σ(1-σ) ⊙ (Xv))`` identity, so the Hessian
is never materialised and each iteration is linear in the data size — the
property Proposition 1 of the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.crf.potentials import sigmoid
from repro.errors import InferenceError

# Standard TRON constants (Lin et al. 2008, §3).
_ETA0, _ETA1, _ETA2 = 1e-4, 0.25, 0.75
_SIGMA1, _SIGMA2, _SIGMA3 = 0.25, 0.5, 4.0


@dataclass
class TronResult:
    """Outcome of a TRON optimisation.

    Attributes:
        weights: The final iterate.
        objective: Objective value at the final iterate.
        gradient_norm: Norm of the gradient at the final iterate.
        iterations: Newton iterations performed.
        converged: Whether the gradient tolerance was met.
    """

    weights: np.ndarray
    objective: float
    gradient_norm: float
    iterations: int
    converged: bool


class WeightedLogisticLoss:
    """Weighted L2-regularised logistic objective and its derivatives."""

    def __init__(
        self,
        design: np.ndarray,
        targets: np.ndarray,
        sample_weights: np.ndarray,
        regularization: float,
    ) -> None:
        design = np.asarray(design, dtype=float)
        targets = np.asarray(targets, dtype=float)
        sample_weights = np.asarray(sample_weights, dtype=float)
        if design.ndim != 2:
            raise InferenceError("design matrix must be two-dimensional")
        if targets.shape != (design.shape[0],):
            raise InferenceError("targets must align with design rows")
        if sample_weights.shape != (design.shape[0],):
            raise InferenceError("sample weights must align with design rows")
        if np.any(sample_weights < 0):
            raise InferenceError("sample weights must be non-negative")
        if np.any((targets < 0) | (targets > 1)):
            raise InferenceError("targets must lie in [0, 1]")
        if regularization <= 0:
            raise InferenceError(
                f"regularization must be positive, got {regularization}"
            )
        self._x = design
        self._t = targets
        self._alpha = sample_weights
        self._lambda = float(regularization)

    @property
    def dim(self) -> int:
        """Number of parameters."""
        return int(self._x.shape[1])

    def value(self, weights: np.ndarray) -> float:
        """Objective f(w)."""
        z = self._x @ weights
        # log(1 + e^z) - t z, computed stably via logaddexp.
        losses = np.logaddexp(0.0, z) - self._t * z
        return float(
            0.5 * self._lambda * weights @ weights + self._alpha @ losses
        )

    def gradient(self, weights: np.ndarray) -> np.ndarray:
        """Gradient ∇f(w) = λw + Xᵀ(α (σ(z) - t))."""
        z = self._x @ weights
        residual = self._alpha * (sigmoid(z) - self._t)
        return self._lambda * weights + self._x.T @ residual

    def hessian_diag(self, weights: np.ndarray) -> np.ndarray:
        """The per-example curvature α σ(z)(1 - σ(z))."""
        z = self._x @ weights
        s = sigmoid(z)
        return self._alpha * s * (1.0 - s)

    def hessian_vector(self, curvature: np.ndarray, vector: np.ndarray) -> np.ndarray:
        """Hessian-vector product λv + Xᵀ(D (X v)) at cached curvature."""
        return self._lambda * vector + self._x.T @ (curvature * (self._x @ vector))


def tron_minimize(
    loss: WeightedLogisticLoss,
    initial: Optional[np.ndarray] = None,
    max_iterations: int = 50,
    gradient_tolerance: float = 1e-3,
    cg_max_iterations: Optional[int] = None,
) -> TronResult:
    """Minimise a weighted logistic loss with the TRON algorithm.

    Args:
        loss: The objective.
        initial: Starting point; EM warm-starts from the previous weights.
        max_iterations: Newton iteration cap.
        gradient_tolerance: Relative tolerance — convergence when
            ``||g|| ≤ tol * ||g(w0)||`` (or absolutely below ``tol * 1e-3``).
        cg_max_iterations: Inner CG cap, default ``max(20, dim)``.

    Returns:
        A :class:`TronResult`; ``converged`` is ``False`` when the budget
        ran out, in which case the best iterate found is still returned.
    """
    weights = (
        np.zeros(loss.dim) if initial is None else np.asarray(initial, dtype=float).copy()
    )
    if weights.shape != (loss.dim,):
        raise InferenceError(
            f"initial weights must have {loss.dim} entries, got {weights.shape}"
        )
    if cg_max_iterations is None:
        cg_max_iterations = max(20, loss.dim)

    objective = loss.value(weights)
    gradient = loss.gradient(weights)
    gradient_norm = float(np.linalg.norm(gradient))
    initial_norm = gradient_norm
    delta = max(gradient_norm, 1.0)

    iteration = 0
    while iteration < max_iterations:
        if _converged(gradient_norm, initial_norm, gradient_tolerance):
            return TronResult(weights, objective, gradient_norm, iteration, True)
        curvature = loss.hessian_diag(weights)
        step, predicted = _steihaug_cg(
            loss, curvature, gradient, delta, cg_max_iterations
        )
        if predicted >= 0.0:
            # No descent possible within the region — shrink and retry.
            delta *= _SIGMA1
            iteration += 1
            continue
        candidate = weights + step
        candidate_objective = loss.value(candidate)
        actual = candidate_objective - objective
        ratio = actual / predicted

        step_norm = float(np.linalg.norm(step))
        if ratio < _ETA1:
            delta = max(_SIGMA1 * delta, _SIGMA2 * step_norm) * 0.5
        elif ratio > _ETA2 and step_norm >= 0.99 * delta:
            delta = min(_SIGMA3 * delta, 1e10)

        if ratio > _ETA0:
            weights = candidate
            objective = candidate_objective
            gradient = loss.gradient(weights)
            gradient_norm = float(np.linalg.norm(gradient))
        iteration += 1

    converged = _converged(gradient_norm, initial_norm, gradient_tolerance)
    return TronResult(weights, objective, gradient_norm, iteration, converged)


def _converged(gradient_norm: float, initial_norm: float, tolerance: float) -> bool:
    if initial_norm == 0.0:
        return True
    return gradient_norm <= tolerance * initial_norm or gradient_norm <= 1e-9


def _steihaug_cg(
    loss: WeightedLogisticLoss,
    curvature: np.ndarray,
    gradient: np.ndarray,
    delta: float,
    max_iterations: int,
) -> tuple:
    """Steihaug CG for the trust-region subproblem.

    Returns the step and the predicted objective reduction
    ``g·s + ½ sᵀHs`` (negative for a descent step).
    """
    dim = gradient.size
    step = np.zeros(dim)
    residual = -gradient.copy()
    direction = residual.copy()
    residual_sq = float(residual @ residual)
    tolerance = 0.1 * np.sqrt(residual_sq)

    for _ in range(max_iterations):
        if np.sqrt(residual_sq) <= tolerance:
            break
        h_dir = loss.hessian_vector(curvature, direction)
        curvature_along = float(direction @ h_dir)
        if curvature_along <= 0:
            step = step + _boundary_step(step, direction, delta) * direction
            break
        alpha = residual_sq / curvature_along
        next_step = step + alpha * direction
        if np.linalg.norm(next_step) >= delta:
            step = step + _boundary_step(step, direction, delta) * direction
            break
        step = next_step
        residual = residual - alpha * h_dir
        next_residual_sq = float(residual @ residual)
        direction = residual + (next_residual_sq / residual_sq) * direction
        residual_sq = next_residual_sq

    predicted = float(
        gradient @ step + 0.5 * step @ loss.hessian_vector(curvature, step)
    )
    return step, predicted


def _boundary_step(step: np.ndarray, direction: np.ndarray, delta: float) -> float:
    """Positive τ with ``||step + τ·direction|| = delta``."""
    a = float(direction @ direction)
    b = 2.0 * float(step @ direction)
    c = float(step @ step) - delta * delta
    if a <= 0:
        return 0.0
    discriminant = max(b * b - 4 * a * c, 0.0)
    return (-b + np.sqrt(discriminant)) / (2.0 * a)
