"""Shared speculative-batch sweep core for the vectorised backends.

**Exact speculative-batch Gibbs sweeps.**  A sequential-scan Gibbs sweep
draws its permutation and its uniform thresholds *before* the scan, so
the random stream is fixed regardless of how the updates are executed.
A claim's conditional depends on the rest of the configuration only
through the per-source consistency statistics ``A_s``, and ``A_s`` only
changes when a claim actually *flips*.  The speculative sweep exploits
this: it computes every position's conditional in one batch against the
sweep-start statistics — exact for every position not preceded by a flip
touching one of its sources — and then walks the scan order with a
per-source *delta* accumulator ``dA_s`` (how far each statistic has
drifted from its sweep-start value).  A position whose correction term
``Σ (stance/n_s)·dA_s`` is exactly zero commits the batch decision; a
non-zero correction recomputes the conditional incrementally as
``batch_logit + 2γ·correction``.

The delta decomposition is *exact*, not approximate: stances and spins
are ±1/0, so every ``A_s``, every flip delta and every ``dA_s`` is an
integer-valued float far below 2⁵³ — ``A_s = A_s⁰ + dA_s`` holds
bitwise, and the correction is zero exactly when the claim's statistics
are untouched.  The recomputed logit and the scalar reference evaluate
the same real number; their summation order and exp implementation can
round differently by one ulp, which flips a decision only when a
pre-drawn threshold falls inside that ulp (~1e-16 per draw — never
observed; the golden fixtures and the hypothesis equivalence suite
assert exact chain equality).

The walk state is three flat CSR arrays per free-claim set (row
pointers, compact local source ids, ``stance/n_s`` coefficients) — a
vectorised gather over the cached pair CSR, built once per free set and
shared by the pure-Python walk (:class:`NumpyEngine`) and the compiled
kernel (:class:`ShardedEngine`, see :mod:`.ckernel`).

**Cached evidence matrices.**  All structure-derived arrays — the
claim-grouped (claim, source) pair table, the per-pair normalisers
``n_s``, and the walk CSR — are computed once per model and reused
across sweeps, EM rounds and validation iterations; pinning a user
label or updating weights never invalidates them.  Streaming arrivals
grow the model in place (:meth:`CrfModel.grow`), which calls
:meth:`InferenceEngine.refresh_structure` on every memoised engine.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.analysis.contracts import derived_cache, mutates
from repro.crf.model import CrfModel
from repro.crf.potentials import sigmoid
from repro.inference.engine.base import EngineConfig, InferenceEngine, MStepData
from repro.utils.arrays import concat_ranges


def sigmoid_scalar(value: float) -> float:
    """Numerically stable scalar logistic, for the incremental fixups."""
    if value >= 0.0:
        return 1.0 / (1.0 + math.exp(-value))
    exp_value = math.exp(value)
    return exp_value / (1.0 + exp_value)


class SpeculativeEngine(InferenceEngine):
    """Speculative-batch sweeps + vectorised M-step over cached gathers.

    Subclasses plug into three extension points: :meth:`_speculate`
    (where the batch conditionals are computed — in-process here,
    scattered over a worker pool in the sharded backend),
    :meth:`_scan_kernel` (an optional compiled scan-merge routine) and
    :meth:`_on_structure_refresh` (structure-change notification).
    """

    def __init__(
        self, model: CrfModel, config: Optional[EngineConfig] = None
    ) -> None:
        super().__init__(model, config)
        self.refresh_structure()

    @mutates("free_set_gather")
    def refresh_structure(self) -> None:
        """(Re)build the claim-grouped pair views from the model.

        Runs at construction and again whenever a streaming arrival grows
        the model in place; the free-set gather cache is dropped because
        claim indices shift meaning when the structure changes.
        """
        model = self._model
        # Claim-grouped view of the (claim, source) pair table: claim c's
        # pair rows are the grouped slice ptr[c]:ptr[c + 1].
        grouped = model.pair_order
        self._ptr = model.pair_ptr
        self._g_source = model.pair_source[grouped]
        self._g_stance = model.pair_stance[grouped]
        self._g_denom = np.maximum(
            model.source_clique_count[self._g_source], 1.0
        )
        # Gathered-row cache keyed by the free-claim set: sample() runs
        # many sweeps over the same free claims, so the scatter/gather
        # index work is done once per set, not once per sweep.  Key and
        # data live in one tuple so the swap is a single (GIL-atomic)
        # attribute assignment — the engine is memoised per model and may
        # be shared by samplers on different threads.
        self._gather_state: Optional[Tuple[bytes, dict]] = None
        self._on_structure_refresh()

    def _on_structure_refresh(self) -> None:
        """Hook for subclasses holding structure-bound resources."""

    # ------------------------------------------------------------------
    # Gibbs sweep
    # ------------------------------------------------------------------

    def sweep(
        self,
        free_claims: np.ndarray,
        spins: np.ndarray,
        stats: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        n = free_claims.size
        order = rng.permutation(n)
        thresholds = rng.random(n)
        model = self._model
        local_fields = model.local_fields
        gamma = model.weights.coupling if model.coupling_enabled else 0.0

        if gamma == 0.0:
            # The conditionals decouple: the whole sweep is one batch.
            scan = free_claims[order]
            self._resample_block(
                scan, thresholds[order], local_fields[scan], spins, stats
            )
            return

        # Speculative batch: every conditional against sweep-start stats,
        # in free-claim order (whose gather indices are cached).
        logits, tentative, flip = self._speculate(
            free_claims, spins, stats, thresholds, local_fields, gamma
        )
        if not flip.any():
            return
        self._merge_scan(
            free_claims, order, thresholds, logits, tentative, flip,
            2.0 * gamma, spins, stats,
        )

    def _speculate(
        self,
        free_claims: np.ndarray,
        spins: np.ndarray,
        stats: np.ndarray,
        thresholds: np.ndarray,
        local_fields: np.ndarray,
        gamma: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batch conditionals against sweep-start stats, free-claim order.

        Returns ``(logits, tentative, flip)`` indexed by free position:
        the speculative logit, the spin the pre-drawn threshold selects
        from it, and whether that spin differs from the current one.
        """
        n = free_claims.size
        f_source, f_stance, f_denom, f_segment, f_counts = self._gathered(
            free_claims
        )
        own = f_stance * np.repeat(spins[free_claims], f_counts)
        contributions = f_stance * (stats[f_source] - own) / f_denom
        sums = np.bincount(f_segment, weights=contributions, minlength=n)
        logits = local_fields[free_claims] + (2.0 * gamma) * sums
        probabilities = sigmoid(logits)
        tentative = np.where(thresholds < probabilities, 1.0, -1.0)
        flip = tentative != spins[free_claims]
        return logits, tentative, flip

    def _scan_kernel(self):
        """Compiled scan-merge routine, or ``None`` for the Python walk."""
        return None

    def _merge_scan(
        self,
        free_claims: np.ndarray,
        order: np.ndarray,
        thresholds: np.ndarray,
        logits: np.ndarray,
        tentative: np.ndarray,
        flip: np.ndarray,
        two_gamma: float,
        spins: np.ndarray,
        stats: np.ndarray,
    ) -> None:
        """Scan-order merge of the speculative decisions.

        Walks ``order`` with the per-source delta accumulator described
        in the module docstring, committing batch decisions whose
        correction is exactly zero and recomputing the rest from
        ``batch_logit + 2γ·correction``.  Flips are applied to ``spins``
        and ``A_s`` is patched exactly (integer-valued delta adds).
        """
        walk = self._walk_arrays(free_claims)
        touched = walk["touched"]
        kernel = self._scan_kernel()
        if kernel is not None:
            from repro.inference.engine.ckernel import run_scan_merge

            spins_free = np.ascontiguousarray(
                spins[free_claims], dtype=np.float64
            )
            dstats = np.zeros(touched.size)
            changed = run_scan_merge(
                kernel,
                np.ascontiguousarray(order, dtype=np.int64),
                np.ascontiguousarray(thresholds, dtype=np.float64),
                np.ascontiguousarray(logits, dtype=np.float64),
                np.ascontiguousarray(tentative, dtype=np.float64),
                np.ascontiguousarray(flip, dtype=np.uint8),
                two_gamma,
                walk["row_ptr"],
                walk["col"],
                walk["coef"],
                walk["stance"],
                spins_free,
                dstats,
            )
            if changed:
                spins[free_claims] = spins_free
                stats[touched] += dstats
            return

        lists = walk.get("lists")
        if lists is None:
            lists = (
                walk["row_ptr"].tolist(),
                walk["col"].tolist(),
                walk["coef"].tolist(),
                walk["stance"].tolist(),
            )
            walk["lists"] = lists
        row_ptr_l, col_l, coef_l, stance_l = lists
        order_l = order.tolist()
        thresholds_l = thresholds.tolist()
        logits_l = logits.tolist()
        tentative_l = tentative.tolist()
        flip_l = flip.tolist()
        spins_l = spins[free_claims].tolist()
        dstats = [0.0] * touched.size
        changed = False
        for position in range(len(order_l)):
            free_index = order_l[position]
            row_start = row_ptr_l[free_index]
            row_end = row_ptr_l[free_index + 1]
            correction = 0.0
            for row in range(row_start, row_end):
                correction += coef_l[row] * dstats[col_l[row]]
            old_spin = spins_l[free_index]
            if correction == 0.0:
                if not flip_l[free_index]:
                    continue
                new_spin = tentative_l[free_index]
            else:
                probability = sigmoid_scalar(
                    logits_l[free_index] + two_gamma * correction
                )
                new_spin = (
                    1.0 if thresholds_l[free_index] < probability else -1.0
                )
                if new_spin == old_spin:
                    continue
            delta = new_spin - old_spin
            for row in range(row_start, row_end):
                dstats[col_l[row]] += stance_l[row] * delta
            spins_l[free_index] = new_spin
            changed = True
        if changed:
            spins[free_claims] = spins_l
            stats[touched] += np.asarray(dstats)

    def _gathered(
        self, free_claims: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Cached gathered pair rows of the free-claim set.

        Returns ``(source, stance, denom, segment, counts)`` where the
        first three are the concatenated evidence rows of the free claims
        in order, ``segment`` maps each row to its free-claim position,
        and ``counts`` is rows per free claim.
        """
        return self._free_set_cache(free_claims)["batch"]

    def _walk_arrays(self, free_claims: np.ndarray) -> dict:
        """Flat CSR walk state of the free set (vectorised gather).

        ``touched`` holds the sorted global ids of every source the free
        claims can dirty; ``row_ptr``/``col``/``coef``/``stance`` are the
        evidence rows remapped to compact local source ids, with
        ``coef = stance / n_s`` prefolded so the walk's correction term
        is one multiply-add per row.  Built lazily (batch-only sweeps
        never pay for it) and cached with the free set.
        """
        cache = self._free_set_cache(free_claims)
        walk = cache.get("walk")
        if walk is None:
            f_source, f_stance, f_denom, _, f_counts = cache["batch"]
            touched, local_ids = np.unique(f_source, return_inverse=True)
            row_ptr = np.concatenate(
                ([0], np.cumsum(f_counts, dtype=np.int64))
            )
            walk = {
                "touched": touched,
                "row_ptr": np.ascontiguousarray(row_ptr, dtype=np.int64),
                "col": np.ascontiguousarray(local_ids, dtype=np.int64),
                "coef": np.ascontiguousarray(
                    f_stance / f_denom, dtype=np.float64
                ),
                "stance": np.ascontiguousarray(f_stance, dtype=np.float64),
            }
            cache["walk"] = walk
        return walk

    @derived_cache(
        "free_set_gather",
        backing=("_ptr", "_g_source", "_g_stance", "_g_denom"),
        storage="_gather_state",
    )
    def _free_set_cache(self, free_claims: np.ndarray) -> dict:
        """Cache entry of the free-claim set (atomic whole-dict swap)."""
        key = free_claims.tobytes()
        state = self._gather_state
        if state is None or state[0] != key:
            ptr = self._ptr
            starts = ptr[free_claims]
            counts = ptr[free_claims + 1] - starts
            gathered = concat_ranges(starts, counts)
            state = (
                key,
                {
                    "batch": (
                        self._g_source[gathered],
                        self._g_stance[gathered],
                        self._g_denom[gathered],
                        np.repeat(np.arange(free_claims.size), counts),
                        counts,
                    ),
                },
            )
            self._gather_state = state
        return state[1]

    def _resample_block(
        self,
        block: np.ndarray,
        thresholds: np.ndarray,
        logits: np.ndarray,
        spins: np.ndarray,
        stats: np.ndarray,
    ) -> None:
        """Resample a batch of claims from precomputed logits.

        Flips are applied to ``spins`` and ``A_s`` is patched to stay
        consistent with them.
        """
        probabilities = sigmoid(logits)
        new_spins = np.where(thresholds < probabilities, 1.0, -1.0)
        old_spins = spins[block]
        flipped = new_spins != old_spins
        if not flipped.any():
            return
        delta = new_spins[flipped] - old_spins[flipped]
        changed = block[flipped]
        ptr = self._ptr
        starts = ptr[changed]
        counts = ptr[changed + 1] - starts
        rows = concat_ranges(starts, counts)
        if rows.size:
            np.add.at(
                stats,
                self._g_source[rows],
                self._g_stance[rows] * np.repeat(delta, counts),
            )
        spins[changed] = new_spins[flipped]

    # ------------------------------------------------------------------
    # M-step design assembly
    # ------------------------------------------------------------------

    def assemble_mstep(
        self, marginals: np.ndarray, config
    ) -> Optional[MStepData]:
        from repro.inference.mstep import build_design_matrix

        model = self._model
        design_all = build_design_matrix(model, marginals)
        label_indices, label_values = model.database.label_arrays()
        assembled = assemble_design_range(
            model, design_all, marginals, 0, model.database.num_claims,
            label_indices, label_values,
            config.min_coverage, config.labelled_weight,
        )
        if assembled[0].shape[0] == 0:
            return None
        return assembled


def assemble_design_range(
    model: CrfModel,
    design_rows: np.ndarray,
    marginals: np.ndarray,
    lo: int,
    hi: int,
    label_indices: np.ndarray,
    label_values: np.ndarray,
    min_coverage: int,
    labelled_weight: float,
) -> MStepData:
    """Design/target/weight rows of claims ``[lo, hi)``, reference layout.

    ``design_rows`` holds the per-claim design rows of exactly that
    range.  The row layout matches the scalar reference restricted to
    the range — claims in index order, one row per labelled claim, a
    (target 1, target 0) pair per unlabelled claim — so concatenating
    contiguous ranges in order reproduces the full assembly bitwise.
    Returns empty arrays (never ``None``) when no claim is covered.
    """
    num_claims = model.database.num_claims
    covered = lo + np.flatnonzero(
        model.featurizer.claim_degree[lo:hi] >= min_coverage
    )
    is_labelled = np.zeros(num_claims, dtype=bool)
    is_labelled[label_indices] = True
    label_of = np.zeros(num_claims)
    label_of[label_indices] = label_values

    repeats = np.where(is_labelled[covered], 1, 2)
    row_claims = np.repeat(covered, repeats)
    design = design_rows[row_claims - lo]
    ends = np.cumsum(repeats)
    second_rows = ends[repeats == 2] - 1
    targets = np.ones(row_claims.size)
    targets[second_rows] = 0.0
    weights = np.asarray(marginals, dtype=float)[row_claims].copy()
    weights[second_rows] = 1.0 - weights[second_rows]
    labelled_rows = is_labelled[row_claims]
    targets[labelled_rows] = label_of[row_claims][labelled_rows]
    weights[labelled_rows] = labelled_weight
    return design, targets, weights


def trust_signal_range(
    model: CrfModel,
    marginals: np.ndarray,
    stats: np.ndarray,
    lo: int,
    hi: int,
) -> np.ndarray:
    """Trust signals of claims ``[lo, hi)`` from precomputed global stats.

    Mirrors :meth:`CrfModel.trust_signals` with the expected-spin source
    statistics (a global reduction) supplied by the caller, so shards
    can evaluate their claim ranges independently yet bitwise-identically
    to the unsharded computation: ``pair_claim`` is sorted, making each
    range a contiguous row slice whose per-claim accumulation order
    matches the global ``np.add.at``.
    """
    spins = 2.0 * np.asarray(marginals, dtype=float) - 1.0
    row_lo, row_hi = np.searchsorted(model.pair_claim, [lo, hi])
    claim = model.pair_claim[row_lo:row_hi]
    stance = model.pair_stance[row_lo:row_hi]
    source = model.pair_source[row_lo:row_hi]
    own = stance * spins[claim]
    excluded = stats[source] - own
    denominators = np.maximum(model.source_clique_count[source], 1.0)
    contributions = 2.0 * stance * excluded / denominators
    signals = np.zeros(hi - lo)
    np.add.at(signals, claim - lo, contributions)
    if not model.coupling_enabled:
        signals[:] = 0.0
    return signals
