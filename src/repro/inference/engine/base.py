"""Engine interface, backend registry and per-model memoisation.

The concrete backends live in sibling modules (:mod:`.reference`,
:mod:`.numpy_backend`, :mod:`.sharded`) and register themselves in
:data:`ENGINE_BACKENDS` at import time; :mod:`repro.inference.engine`
(the package ``__init__``) imports them all, so the registry is always
fully populated before user code can construct an :class:`EngineConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Type, Union

import numpy as np

from repro.crf.model import CrfModel
from repro.errors import InferenceError

MStepData = Tuple[np.ndarray, np.ndarray, np.ndarray]


@dataclass(frozen=True)
class EngineConfig:
    """Backend selection for the inference hot path.

    Attributes:
        backend: Registered backend name; ``"numpy"`` (vectorised,
            default), ``"reference"`` (scalar ground truth) or
            ``"sharded"`` (multi-process partitioned sweeps).  Backends
            register themselves in :data:`ENGINE_BACKENDS`.
        num_shards: Worker-process count for the ``sharded`` backend.
            ``None`` picks an automatic count from the host CPUs; ``1``
            forces the in-process fast path (no worker pool).  Rejected
            for any other backend.
    """

    backend: str = "numpy"
    num_shards: Optional[int] = None

    def __post_init__(self) -> None:
        if self.backend not in ENGINE_BACKENDS:
            raise InferenceError(
                f"unknown engine backend {self.backend!r}; "
                f"available: {tuple(sorted(ENGINE_BACKENDS))}"
            )
        if self.num_shards is not None:
            if self.backend != "sharded":
                raise InferenceError(
                    "num_shards only applies to the 'sharded' backend, "
                    f"not {self.backend!r}"
                )
            if self.num_shards < 1:
                raise InferenceError(
                    f"num_shards must be >= 1, got {self.num_shards}"
                )

    @property
    def cache_key(self) -> str:
        """Memoisation key: distinct shard counts get distinct engines."""
        if self.backend == "sharded" and self.num_shards is not None:
            return f"sharded[{self.num_shards}]"
        return self.backend


class InferenceEngine:
    """Hot-path operations bound to one :class:`~repro.crf.model.CrfModel`.

    An engine is stateless with respect to the Gibbs chain — all chain
    state lives in the sampler — so one engine can safely serve several
    samplers over the same model.
    """

    #: Registry name of the backend; subclasses override.
    name = "abstract"

    def __init__(
        self, model: CrfModel, config: Optional[EngineConfig] = None
    ) -> None:
        self._model = model

    @property
    def model(self) -> CrfModel:
        """The model whose structure is cached."""
        return self._model

    def refresh_structure(self) -> None:
        """Re-derive cached structure after the model grows in place.

        Called by :meth:`CrfModel.grow` on every memoised engine when a
        streaming arrival extends the database.  The base implementation
        is a no-op — backends that cache structure-derived arrays
        override it.
        """

    def close(self) -> None:
        """Release process-level resources (worker pools, handles).

        Safe to call repeatedly; a closed engine stays usable — backends
        that own pools rebuild them lazily on the next call.  The base
        implementation is a no-op.
        """

    def sweep(
        self,
        free_claims: np.ndarray,
        spins: np.ndarray,
        stats: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """One random-order sequential scan over the free claims.

        Mutates ``spins`` and keeps ``stats`` (the per-source consistency
        statistics ``A_s``) consistent with them.  Every backend consumes
        the random stream identically: one permutation draw followed by
        one uniform draw per free claim.
        """
        raise NotImplementedError

    def assemble_mstep(
        self, marginals: np.ndarray, config
    ) -> Optional[MStepData]:
        """Expected-statistics design ``(X, targets, weights)`` for TRON.

        Labelled claims contribute one boosted row with their user label;
        unlabelled claims contribute two fractional rows (target 1 with
        weight ``q``, target 0 with weight ``1 - q``).  Returns ``None``
        when no claim meets the coverage threshold.
        """
        raise NotImplementedError


#: Registered engine backends, keyed by :attr:`InferenceEngine.name`.
#: Populated by the backend modules at import time.
ENGINE_BACKENDS: Dict[str, Type[InferenceEngine]] = {}


def create_engine(
    model: CrfModel,
    config: Union[None, str, EngineConfig, "InferenceEngine"] = None,
) -> InferenceEngine:
    """Engine for ``model`` per the configured backend, memoised per model.

    The memo lives on the model instance, so cached engines share the
    model's lifetime, and :meth:`CrfModel.grow` can refresh every engine
    of a streaming model in place when an arrival extends the structure.

    Args:
        model: The CRF model whose structure is cached.
        config: ``None`` (default backend), a backend name, a full
            :class:`EngineConfig`, or an already-built engine (returned
            as-is after checking it is bound to ``model``).
    """
    if isinstance(config, InferenceEngine):
        if config.model is not model:
            raise InferenceError("engine is bound to a different model")
        return config
    if config is None:
        config = EngineConfig()
    elif isinstance(config, str):
        config = EngineConfig(backend=config)
    per_model: Optional[Dict[str, InferenceEngine]] = getattr(
        model, "_engine_cache", None
    )
    if per_model is None:
        per_model = {}
        model._engine_cache = per_model  # type: ignore[attr-defined]
    engine = per_model.get(config.cache_key)
    if engine is None:
        engine = ENGINE_BACKENDS[config.backend](model, config)
        per_model[config.cache_key] = engine
    return engine


def release_model_engines(model: CrfModel) -> None:
    """Close every engine memoised on ``model``.

    Worker pools (the ``sharded`` backend) hold OS processes; sessions
    and the service layer call this on close/eviction so pools never
    outlive the session that spawned them.  Engines stay usable — a
    closed engine rebuilds its pool lazily if swept again.
    """
    for engine in getattr(model, "_engine_cache", {}).values():
        engine.close()
