"""Claim-at-a-time scalar backend — the semantic ground truth."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.crf.potentials import sigmoid
from repro.inference.engine.base import (
    ENGINE_BACKENDS,
    InferenceEngine,
    MStepData,
)


class ReferenceEngine(InferenceEngine):
    """Claim-at-a-time scalar implementation (the seed semantics)."""

    name = "reference"

    def sweep(
        self,
        free_claims: np.ndarray,
        spins: np.ndarray,
        stats: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        model = self._model
        order = rng.permutation(free_claims.size)
        thresholds = rng.random(free_claims.size)
        for position in order:
            claim_index = int(free_claims[position])
            logit = model.conditional_logit(claim_index, spins, stats)
            probability = float(sigmoid(np.asarray(logit)))
            new_spin = 1.0 if thresholds[position] < probability else -1.0
            old_spin = spins[claim_index]
            if new_spin == old_spin:
                continue
            delta = new_spin - old_spin
            rows = model.pairs_of_claim(claim_index)
            if rows.size:
                np.add.at(
                    stats,
                    model.pair_source[rows],
                    model.pair_stance[rows] * delta,
                )
            spins[claim_index] = new_spin

    def assemble_mstep(
        self, marginals: np.ndarray, config
    ) -> Optional[MStepData]:
        from repro.inference.mstep import build_design_matrix

        model = self._model
        database = model.database
        design_all = build_design_matrix(model, marginals)
        covered = model.featurizer.claim_degree >= config.min_coverage
        rows = []
        targets = []
        weights = []
        labels = database.labels
        for claim_index in range(database.num_claims):
            if not covered[claim_index]:
                continue
            row = design_all[claim_index]
            label = labels.get(claim_index)
            if label is not None:
                rows.append(row)
                targets.append(float(label))
                weights.append(config.labelled_weight)
            else:
                q = float(marginals[claim_index])
                rows.append(row)
                targets.append(1.0)
                weights.append(q)
                rows.append(row)
                targets.append(0.0)
                weights.append(1.0 - q)
        if not rows:
            return None
        return np.asarray(rows), np.asarray(targets), np.asarray(weights)


ENGINE_BACKENDS[ReferenceEngine.name] = ReferenceEngine
