"""Pluggable inference engine — the vectorised hot path of iCRF.

The interactivity claims of the paper (Fig. 2 response times, the
linear-time Hessian-vector products of Proposition 1) stand or fall with
the cost of the E-step/M-step inner loops.  This package concentrates
that hot path behind one small interface so backends can be swapped via
configuration:

* :class:`ReferenceEngine` (``backend="reference"``) — the original
  claim-at-a-time implementation, kept verbatim as the semantic ground
  truth.  Golden fixtures are recorded against it and the other
  backends are tested for bit-for-bit agreement.
* :class:`NumpyEngine` (``backend="numpy"``, the default) — blocked
  vectorised sweeps over precomputed, cached per-claim evidence
  matrices, plus fully vectorised M-step design assembly.  See
  :mod:`.speculative` for the exact speculative-batch sweep the
  vectorised backends share.
* :class:`ShardedEngine` (``backend="sharded"``) — the paper's
  ``parallel+partition`` variant: claims partitioned across a
  persistent pool of forked workers, shard results merged in scan
  order by a compiled delta-walk kernel.  See :mod:`.sharded`.

All backends consume the random stream identically and reproduce the
same Gibbs chain bit-for-bit, so backend choice is purely a deployment
decision (``docs/API.md`` has the selection table).
"""

from repro.inference.engine.base import (
    ENGINE_BACKENDS,
    EngineConfig,
    InferenceEngine,
    MStepData,
    create_engine,
    release_model_engines,
)
from repro.inference.engine.numpy_backend import NumpyEngine
from repro.inference.engine.reference import ReferenceEngine
from repro.inference.engine.sharded import ShardedEngine
from repro.inference.engine.speculative import (
    SpeculativeEngine,
    sigmoid_scalar,
)

#: Backwards-compatible alias of :func:`sigmoid_scalar` (pre-split name).
_sigmoid_scalar = sigmoid_scalar

__all__ = [
    "ENGINE_BACKENDS",
    "EngineConfig",
    "InferenceEngine",
    "MStepData",
    "NumpyEngine",
    "ReferenceEngine",
    "ShardedEngine",
    "SpeculativeEngine",
    "create_engine",
    "release_model_engines",
    "sigmoid_scalar",
]
