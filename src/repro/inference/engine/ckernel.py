"""Optional compiled scan-merge kernel for the sharded backend.

The scan-order merge walk (see :mod:`.speculative`) is a tight
data-dependent loop — per position a handful of multiply-adds over the
claim's evidence rows — that the interpreter dominates on dense corpora.
This module compiles the identical loop to native code with whatever C
compiler the host already has (``cc``/``gcc``/``clang``), loads it via
:mod:`ctypes`, and removes the build directory immediately (the mapping
survives on POSIX).  No third-party dependency is introduced.

Bit-for-bit contract: the kernel performs the same float64 operations in
the same order as the Python walk — the correction accumulates row by
row, the recomputed logistic uses the two-branch stable form backed by
libm's ``exp`` (the same function CPython's ``math.exp`` wraps), and the
build passes ``-ffp-contract=off`` so the compiler cannot fuse the
multiply-adds into differently-rounded FMAs.  The 1-shard==numpy
property test asserts the equivalence empirically.

Set ``REPRO_NO_CKERNEL=1`` to skip compilation; any build failure
degrades silently to the Python walk.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile

import numpy as np

_SOURCE = r"""
#include <math.h>
#include <stdint.h>

static double sigmoid_stable(double value)
{
    if (value >= 0.0)
        return 1.0 / (1.0 + exp(-value));
    double exp_value = exp(value);
    return exp_value / (1.0 + exp_value);
}

int64_t scan_merge(
    int64_t n,
    const int64_t *order,
    const double *thresholds,
    const double *logits,
    const double *tentative,
    const uint8_t *flip,
    double two_gamma,
    const int64_t *row_ptr,
    const int64_t *col,
    const double *coef,
    const double *stance,
    double *spins,
    double *dstats)
{
    int64_t changed = 0;
    for (int64_t position = 0; position < n; position++) {
        int64_t j = order[position];
        int64_t row_start = row_ptr[j], row_end = row_ptr[j + 1];
        double correction = 0.0;
        for (int64_t row = row_start; row < row_end; row++)
            correction += coef[row] * dstats[col[row]];
        double old_spin = spins[j];
        double new_spin;
        if (correction == 0.0) {
            if (!flip[j])
                continue;
            new_spin = tentative[j];
        } else {
            double probability =
                sigmoid_stable(logits[j] + two_gamma * correction);
            new_spin = thresholds[j] < probability ? 1.0 : -1.0;
            if (new_spin == old_spin)
                continue;
        }
        double delta = new_spin - old_spin;
        for (int64_t row = row_start; row < row_end; row++)
            dstats[col[row]] += stance[row] * delta;
        spins[j] = new_spin;
        changed++;
    }
    return changed;
}
"""

_UNSET = object()
_KERNEL = _UNSET


def load_kernel():
    """The compiled ``scan_merge`` entry point, or ``None``.

    Compiled at most once per process; every failure mode (no compiler,
    compile error, unloadable library, ``REPRO_NO_CKERNEL`` set) caches
    ``None`` so callers fall back to the Python walk.
    """
    global _KERNEL
    if _KERNEL is _UNSET:
        _KERNEL = _build()
    return _KERNEL


def kernel_available() -> bool:
    """Whether the compiled merge kernel is usable on this host."""
    return load_kernel() is not None


def _build():
    if os.environ.get("REPRO_NO_CKERNEL"):
        return None
    compiler = (
        os.environ.get("CC")
        or shutil.which("cc")
        or shutil.which("gcc")
        or shutil.which("clang")
    )
    if compiler is None:
        return None
    build_dir = tempfile.mkdtemp(prefix="repro-scan-merge-")
    try:
        source_path = os.path.join(build_dir, "scan_merge.c")
        library_path = os.path.join(build_dir, "scan_merge.so")
        with open(source_path, "w") as handle:
            handle.write(_SOURCE)
        subprocess.run(
            [
                compiler, "-O2", "-fPIC", "-shared", "-ffp-contract=off",
                "-o", library_path, source_path, "-lm",
            ],
            check=True,
            capture_output=True,
        )
        library = ctypes.CDLL(library_path)
        kernel = library.scan_merge
        kernel.restype = ctypes.c_longlong
        kernel.argtypes = (
            [ctypes.c_longlong]
            + [ctypes.c_void_p] * 5
            + [ctypes.c_double]
            + [ctypes.c_void_p] * 6
        )
        return kernel
    except Exception:
        return None
    finally:
        shutil.rmtree(build_dir, ignore_errors=True)


def run_scan_merge(
    kernel,
    order: np.ndarray,
    thresholds: np.ndarray,
    logits: np.ndarray,
    tentative: np.ndarray,
    flip: np.ndarray,
    two_gamma: float,
    row_ptr: np.ndarray,
    col: np.ndarray,
    coef: np.ndarray,
    stance: np.ndarray,
    spins_free: np.ndarray,
    dstats: np.ndarray,
) -> int:
    """Invoke the kernel; mutates ``spins_free``/``dstats`` in place.

    Callers guarantee C-contiguous arrays of the declared dtypes
    (int64 index arrays, float64 value arrays, uint8 flags).
    """
    return int(
        kernel(
            order.size,
            order.ctypes.data,
            thresholds.ctypes.data,
            logits.ctypes.data,
            tentative.ctypes.data,
            flip.ctypes.data,
            two_gamma,
            row_ptr.ctypes.data,
            col.ctypes.data,
            coef.ctypes.data,
            stance.ctypes.data,
            spins_free.ctypes.data,
            dstats.ctypes.data,
        )
    )
