"""Single-process vectorised backend (the default)."""

from __future__ import annotations

from repro.inference.engine.base import ENGINE_BACKENDS
from repro.inference.engine.speculative import SpeculativeEngine


class NumpyEngine(SpeculativeEngine):
    """Blocked vectorised backend over cached evidence matrices.

    Pure NumPy + the Python scan-merge walk — no compiler, no worker
    processes.  The sharded backend layers a compiled merge kernel and a
    process pool on the same :class:`SpeculativeEngine` core.
    """

    name = "numpy"


ENGINE_BACKENDS[NumpyEngine.name] = NumpyEngine
