"""Sharded multi-core backend: partitioned sweeps + per-shard M-step.

The paper's ``parallel+partition`` variant (Fig. 2) splits the corpus
across cores.  This backend reproduces that design without giving up
bit-for-bit reproducibility:

* **Partitioned speculative batch.**  Claims are range-partitioned by
  evidence-row count across a persistent pool of forked worker
  processes.  Each worker holds (copy-on-write) its shard's slice of
  the cached clique/pair CSR arrays and computes the speculative-batch
  conditionals of its claims against the sweep-start source statistics,
  writing the logits into a shared anonymous ``mmap``.  Because the
  per-claim logit is an elementwise expression over a per-claim segment
  reduction, shard-local evaluation is *bitwise identical* to the
  single-process batch — there is no cross-shard reduction to reorder.
* **Coordinator merge.**  The coordinator applies the logistic to the
  assembled logits, then resolves cross-shard dirty-source conflicts
  with the same exact delta-walk the numpy backend uses (see
  :mod:`.speculative`), accelerated by the compiled kernel of
  :mod:`.ckernel` when a C compiler is available.  Shard results are
  merged in scan order, so the claim-at-a-time reference chain is
  reproduced bit-for-bit.
* **Per-shard M-step assembly.**  Workers assemble the design/target/
  weight rows of their claim ranges (trust signals evaluated against
  coordinator-supplied global statistics — the one true reduction stays
  unsharded so IEEE summation order never regroups); the coordinator
  reduces by concatenating the per-claim contributions in claim order.

**Determinism and checkpointing.**  Workers consume *no* randomness:
the coordinator draws the permutation and thresholds from the session's
generator exactly like every other backend, and workers are pure
functions of the shared buffers.  Worker state is therefore fully
derived from the session stream — save/resume reproduces the chain
exactly with any shard count, and a checkpoint taken under one backend
resumes bit-identically under another.

**Lifecycle.**  The pool is spawned lazily on first dispatch, dropped
whenever the model structure grows (:meth:`refresh_structure`), and
shut down by :meth:`close` — sessions and the service layer release
engines on close/eviction via
:func:`repro.inference.engine.release_model_engines`.  A worker death
mid-call raises a structured :class:`~repro.errors.InferenceError`
*before* any chain state is touched; the pool is rebuilt on the next
call.  Hosts without ``fork`` (or single-CPU hosts, where the automatic
shard count is 1) run everything in-process — still faster than the
numpy backend thanks to the compiled merge kernel.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
import weakref
from typing import List, Optional, Tuple

import mmap

import numpy as np

from repro.analysis.contracts import derived_cache, mutates
from repro.crf.model import CrfModel
from repro.crf.potentials import sigmoid
from repro.errors import InferenceError
from repro.inference.engine.base import ENGINE_BACKENDS, EngineConfig, MStepData
from repro.inference.engine.ckernel import load_kernel
from repro.inference.engine.speculative import (
    SpeculativeEngine,
    assemble_design_range,
    trust_signal_range,
)

_FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()


def _resolve_num_shards(config: Optional[EngineConfig]) -> int:
    """Shard count: explicit config > ``REPRO_NUM_SHARDS`` > host CPUs."""
    if config is not None and config.num_shards is not None:
        return int(config.num_shards)
    env = os.environ.get("REPRO_NUM_SHARDS")
    if env:
        return max(1, int(env))
    return min(4, os.cpu_count() or 1)


class ShardedEngine(SpeculativeEngine):
    """Partitioned multi-process backend with a compiled merge kernel."""

    name = "sharded"

    #: Process-local runtime resources — never chain state, never part of
    #: any checkpoint (engines are excluded from session state wholesale;
    #: listed here for the same auditability as stateful classes).
    _STATE_EXCLUDED = ("_num_shards", "_kernel", "_pool")

    def __init__(
        self, model: CrfModel, config: Optional[EngineConfig] = None
    ) -> None:
        self._num_shards = _resolve_num_shards(config)
        self._kernel = load_kernel()
        self._pool: Optional[_WorkerPool] = None
        super().__init__(model, config)

    @mutates("worker_pool")
    def _on_structure_refresh(self) -> None:
        """Drop the pool when the model grows — workers hold the old CSR."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def close(self) -> None:
        """Shut the worker pool down; the engine stays usable (lazy pool)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    @derived_cache("worker_pool", backing=("_num_shards",), storage="_pool")
    def _ensure_pool(self) -> "_WorkerPool":
        pool = self._pool
        if pool is None:
            pool = _WorkerPool(self, self._num_shards)
            # Backstop for engines dropped without close() (throwaway
            # models): shut the processes down when the engine is
            # collected.  shutdown() is idempotent.
            weakref.finalize(self, pool.shutdown)
            self._pool = pool
        return pool

    def _scan_kernel(self):
        return self._kernel

    def _can_dispatch(self, free_claims: np.ndarray) -> bool:
        """Worker dispatch needs >1 shard, fork, and a sorted free set.

        ``sample(claim_subset=...)`` may pass an unsorted subset; range
        partitioning relies on sorted claim ids, so those sweeps (and
        every sweep on 1-shard or fork-less configurations) run
        in-process — same results, same random stream.
        """
        return (
            self._num_shards > 1
            and _FORK_AVAILABLE
            and free_claims.size > 1
            and bool(np.all(np.diff(free_claims) > 0))
        )

    def _speculate(
        self,
        free_claims: np.ndarray,
        spins: np.ndarray,
        stats: np.ndarray,
        thresholds: np.ndarray,
        local_fields: np.ndarray,
        gamma: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if not self._can_dispatch(free_claims):
            return super()._speculate(
                free_claims, spins, stats, thresholds, local_fields, gamma
            )
        pool = self._ensure_pool()
        try:
            logits = pool.batch_logits(
                free_claims, spins, stats, local_fields, gamma
            )
        except InferenceError:
            self._pool = None
            raise
        # The logistic and the threshold decisions run on the assembled
        # full array — the identical call the in-process path makes — so
        # shard boundaries cannot perturb even the SIMD evaluation order.
        probabilities = sigmoid(logits)
        tentative = np.where(thresholds < probabilities, 1.0, -1.0)
        flip = tentative != spins[free_claims]
        return logits, tentative, flip

    def assemble_mstep(
        self, marginals: np.ndarray, config
    ) -> Optional[MStepData]:
        model = self._model
        if (
            self._num_shards <= 1
            or not _FORK_AVAILABLE
            or model.database.num_claims < 2
        ):
            return super().assemble_mstep(marginals, config)
        marginals = np.asarray(marginals, dtype=float)
        # The expected-spin source statistics are the one global
        # reduction of the assembly; computing them here — with the very
        # calls trust_signals() makes — keeps the IEEE summation order
        # independent of the shard layout.
        spins = 2.0 * marginals - 1.0
        stats = model.source_statistics(spins)
        label_indices, label_values = model.database.label_arrays()
        pool = self._ensure_pool()
        try:
            parts = pool.assemble(
                marginals, stats, label_indices, label_values,
                config.min_coverage, config.labelled_weight,
            )
        except InferenceError:
            self._pool = None
            raise
        if sum(part[0].shape[0] for part in parts) == 0:
            return None
        return (
            np.concatenate([part[0] for part in parts]),
            np.concatenate([part[1] for part in parts]),
            np.concatenate([part[2] for part in parts]),
        )


ENGINE_BACKENDS[ShardedEngine.name] = ShardedEngine


# ----------------------------------------------------------------------
# Worker pool
# ----------------------------------------------------------------------


class _SharedBuffers:
    """Anonymous shared-memory exchange area (coordinator <-> workers).

    ``mmap.mmap(-1, ...)`` maps anonymous **shared** pages, so views
    created before the fork stay coherent across it — unlike ordinary
    numpy arrays, whose pages go copy-on-write and silently stop
    reflecting parent writes.  All 8-byte fields precede the byte field,
    keeping every view naturally aligned.
    """

    def __init__(self, num_claims: int, num_sources: int) -> None:
        claims = max(1, int(num_claims))
        sources = max(1, int(num_sources))
        layout = [
            ("header_i", np.int64, 2),      # [n_free, unused]
            ("header_f", np.float64, 1),    # [gamma]
            ("free", np.int64, claims),     # in: free-claim ids (sorted)
            ("spins", np.float64, claims),  # in: current spins
            ("local_fields", np.float64, claims),
            ("stats", np.float64, sources),  # in: sweep-start A_s / E[A_s]
            ("marginals", np.float64, claims),  # in (M-step)
            ("logits", np.float64, claims),  # out: batch logits, free order
        ]
        total = sum(np.dtype(dtype).itemsize * count for _, dtype, count in layout)
        self._map = mmap.mmap(-1, total)
        offset = 0
        for field_name, dtype, count in layout:
            view = np.frombuffer(
                self._map, dtype=dtype, count=count, offset=offset
            )
            setattr(self, field_name, view)
            offset += np.dtype(dtype).itemsize * count


class _WorkerHandle:
    __slots__ = ("process", "connection", "lo", "hi")

    def __init__(self, process, connection, lo: int, hi: int) -> None:
        self.process = process
        self.connection = connection
        self.lo = lo
        self.hi = hi


def _partition_claims(ptr: np.ndarray, num_shards: int) -> List[Tuple[int, int]]:
    """Contiguous claim ranges balanced by evidence-row count (+1/claim)."""
    num_claims = int(ptr.size - 1)
    shards = max(1, min(int(num_shards), num_claims))
    weights = np.diff(ptr).astype(np.float64) + 1.0
    cumulative = np.cumsum(weights)
    total = float(cumulative[-1])
    cuts = np.searchsorted(
        cumulative, [total * k / shards for k in range(1, shards)]
    )
    bounds = [0] + [int(cut) for cut in cuts] + [num_claims]
    return [
        (lo, hi) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
    ]


class _WorkerPool:
    """A fixed set of forked workers over one model structure snapshot."""

    def __init__(self, engine: ShardedEngine, num_shards: int) -> None:
        model = engine.model
        # Materialise the structure caches the workers read before
        # forking so children share the parent's pages.
        model.featurizer.claim_design_matrix()
        self._num_claims = model.database.num_claims
        self._buffers = _SharedBuffers(
            self._num_claims, model.database.num_sources
        )
        context = multiprocessing.get_context("fork")
        self._workers: List[_WorkerHandle] = []
        for lo, hi in _partition_claims(engine._ptr, num_shards):
            parent_end, child_end = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(engine, lo, hi, self._buffers, child_end),
                daemon=True,
                name=f"repro-shard-{lo}-{hi}",
            )
            process.start()
            child_end.close()
            self._workers.append(_WorkerHandle(process, parent_end, lo, hi))

    def batch_logits(
        self,
        free_claims: np.ndarray,
        spins: np.ndarray,
        stats: np.ndarray,
        local_fields: np.ndarray,
        gamma: float,
    ) -> np.ndarray:
        """Speculative batch logits of the free set, scattered by shard."""
        buffers = self._buffers
        n = free_claims.size
        buffers.header_i[0] = n
        buffers.header_f[0] = float(gamma)
        buffers.free[:n] = free_claims
        buffers.spins[:] = spins
        buffers.local_fields[:] = local_fields
        buffers.stats[:] = stats
        self._request(("sweep",))
        return buffers.logits[:n].copy()

    def assemble(
        self,
        marginals: np.ndarray,
        stats: np.ndarray,
        label_indices: np.ndarray,
        label_values: np.ndarray,
        min_coverage: int,
        labelled_weight: float,
    ) -> List[MStepData]:
        """Per-shard (design, targets, weights) parts, in claim order."""
        buffers = self._buffers
        buffers.marginals[:] = marginals
        buffers.stats[:] = stats
        replies = self._request(
            (
                "mstep", label_indices, label_values,
                int(min_coverage), float(labelled_weight),
            )
        )
        return [reply[1] for reply in replies]

    def _request(self, message: tuple) -> list:
        for worker in self._workers:
            try:
                worker.connection.send(message)
            except (OSError, ValueError) as exc:
                self._fail(worker, exc)
        replies = []
        for worker in self._workers:
            try:
                reply = worker.connection.recv()
            except (EOFError, OSError) as exc:
                self._fail(worker, exc)
            if reply[0] == "err":
                self.shutdown()
                raise InferenceError(
                    f"sharded inference worker for claims "
                    f"[{worker.lo}, {worker.hi}) failed; chain state is "
                    f"unchanged and the pool will be rebuilt on the next "
                    f"call.\n{reply[1]}"
                )
            replies.append(reply)
        return replies

    def _fail(self, worker: _WorkerHandle, exc: Exception) -> None:
        self.shutdown()
        raise InferenceError(
            f"sharded inference worker for claims [{worker.lo}, "
            f"{worker.hi}) died mid-call ({type(exc).__name__}); chain "
            f"state is unchanged and the pool will be rebuilt on the "
            f"next call"
        ) from exc

    def shutdown(self) -> None:
        """Stop and reap every worker; idempotent."""
        workers, self._workers = self._workers, []
        for worker in workers:
            try:
                worker.connection.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in workers:
            try:
                worker.connection.close()
            except OSError:
                pass
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


def _worker_main(
    engine: ShardedEngine,
    lo: int,
    hi: int,
    buffers: _SharedBuffers,
    connection,
) -> None:
    """Serve sweep/M-step requests for the claim range ``[lo, hi)``.

    Pure function of the shared buffers and the forked structure
    snapshot: no randomness, no chain state, no writes outside this
    shard's slice of the output buffer.
    """
    model = engine.model
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "stop":
            break
        try:
            if kind == "sweep":
                _worker_sweep(engine, lo, hi, buffers)
                reply = ("ok", None)
            elif kind == "mstep":
                reply = ("ok", _worker_mstep(model, lo, hi, buffers, *message[1:]))
            else:
                reply = ("err", f"unknown message kind {kind!r}")
        except BaseException:
            reply = ("err", traceback.format_exc())
        try:
            connection.send(reply)
        except (BrokenPipeError, OSError):
            break
    try:
        connection.close()
    except OSError:
        pass


def _worker_sweep(
    engine: ShardedEngine, lo: int, hi: int, buffers: _SharedBuffers
) -> None:
    n = int(buffers.header_i[0])
    gamma = float(buffers.header_f[0])
    free = buffers.free[:n]
    start = int(np.searchsorted(free, lo, side="left"))
    stop = int(np.searchsorted(free, hi, side="left"))
    if start == stop:
        return
    free_slice = np.array(free[start:stop], dtype=np.intp)
    spins = np.asarray(buffers.spins)
    stats = np.asarray(buffers.stats)
    local_fields = np.asarray(buffers.local_fields)
    f_source, f_stance, f_denom, f_segment, f_counts = engine._gathered(
        free_slice
    )
    own = f_stance * np.repeat(spins[free_slice], f_counts)
    contributions = f_stance * (stats[f_source] - own) / f_denom
    sums = np.bincount(
        f_segment, weights=contributions, minlength=free_slice.size
    )
    buffers.logits[start:stop] = (
        local_fields[free_slice] + (2.0 * gamma) * sums
    )


def _worker_mstep(
    model: CrfModel,
    lo: int,
    hi: int,
    buffers: _SharedBuffers,
    label_indices: np.ndarray,
    label_values: np.ndarray,
    min_coverage: int,
    labelled_weight: float,
) -> MStepData:
    marginals = np.asarray(buffers.marginals)
    stats = np.asarray(buffers.stats)
    signals = trust_signal_range(model, marginals, stats, lo, hi)
    features = model.featurizer.claim_design_matrix()[lo:hi]
    design_rows = np.column_stack([features, signals])
    return assemble_design_range(
        model, design_rows, marginals, lo, hi,
        label_indices, label_values, min_coverage, labelled_weight,
    )
