"""Result containers for credibility inference."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.crf.weights import CrfWeights
from repro.data.grounding import Grounding


@dataclass
class InferenceResult:
    """Outcome of one iCRF invocation (one validation-process iteration).

    Attributes:
        marginals: Credibility probabilities after inference (Eq. 7);
            labelled claims carry their user label.
        grounding: The instantiated grounding g_z (Eq. 10).
        weights: Model parameters W after the final M-step.
        em_iterations: EM iterations actually performed.
        converged: Whether the EM loop met its marginal-change tolerance
            before exhausting its iteration budget.
        marginal_deltas: Mean absolute marginal change per EM iteration —
            a diagnostic of EM convergence speed.
    """

    marginals: np.ndarray
    grounding: Grounding
    weights: CrfWeights
    em_iterations: int
    converged: bool
    marginal_deltas: List[float] = field(default_factory=list)
