"""Grounding instantiation from Gibbs samples (§3.3, Eq. 10).

``decide`` labels a claim credible when the user confirmed it, or when the
claim is credible in the most frequent configuration of the last Gibbs
sample sequence — the sample-based surrogate for the maximum-joint-
probability configuration of Eq. 9, whose exact computation would be a
Boolean-satisfiability-like problem.
"""

from __future__ import annotations

import numpy as np

from repro.crf.gibbs import GibbsResult
from repro.data.database import FactDatabase
from repro.data.grounding import Grounding
from repro.errors import InferenceError


def decide_grounding(database: FactDatabase, result: GibbsResult) -> Grounding:
    """Instantiate the grounding g_z from the last sampling result.

    Args:
        database: Fact database holding the user labels C^L.
        result: Gibbs output whose mode configuration decides unlabelled
            claims.

    Returns:
        The grounding: labelled claims keep their user value, unlabelled
        claims take their value in the most frequent sampled configuration.
    """
    mode = np.asarray(result.mode_configuration)
    if mode.shape != (database.num_claims,):
        raise InferenceError(
            "mode configuration does not cover the database's claims"
        )
    values = mode.astype(np.int8).copy()
    label_indices, label_values = database.label_arrays()
    if label_indices.size:
        values[label_indices] = label_values.astype(np.int8)
    return Grounding(values)


def threshold_grounding(database: FactDatabase, threshold: float = 0.5) -> Grounding:
    """The naive instantiation of §2.3: threshold the marginals.

    Used as a baseline and by light-weight re-inference paths that do not
    run a full Gibbs pass.
    """
    values = (np.asarray(database.probabilities) >= threshold).astype(np.int8)
    label_indices, label_values = database.label_arrays()
    if label_indices.size:
        values[label_indices] = label_values.astype(np.int8)
    return Grounding(values)
