"""iCRF — incremental EM inference with user input (§3.2).

Each invocation of :meth:`ICrf.infer` corresponds to the inference step of
one validation-process iteration (Alg. 1, line 15).  It alternates:

* **E-step** — Gibbs sampling of the unlabelled claims under the current
  parameters (Eq. 6) and estimation of credibility probabilities as sample
  fractions (Eq. 7); user labels are pinned throughout.
* **M-step** — weighted logistic regression on the expected statistics,
  solved by the Trust-Region Newton Method (Eq. 8).

The *incremental* character ("view maintenance", §3.2) comes from three
warm starts that persist across invocations: the Gibbs chain state, the
model weights ``W_z^0 = W_{z-1}^{l_{z-1}}``, and the credibility
probabilities stored in the fact database.  After a single new user label
only a few EM iterations are needed, which is what keeps per-iteration
response times interactive (Fig. 2).

An unsupervised cold start is supported: with no labels at all, the initial
bias weight breaks the symmetry towards "supporting documents indicate
credibility", and self-training EM refines the feature weights from there —
this produces the non-trivial initial precision visible at 0% effort in the
paper's Fig. 6.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro._legacy import warn_legacy
from repro.crf.gibbs import GibbsResult, GibbsSampler
from repro.crf.model import CrfModel
from repro.crf.weights import CrfWeights
from repro.data.database import FactDatabase
from repro.errors import InferenceError
from repro.inference.decide import decide_grounding
from repro.inference.engine import EngineConfig, InferenceEngine, create_engine
from repro.inference.mstep import MStepConfig, run_m_step
from repro.inference.result import InferenceResult
from repro.utils.rng import RandomState, derive_rng, ensure_rng


class ICrf:
    """Incremental CRF inference engine bound to one fact database.

    Args:
        database: The probabilistic fact database Q.
        aggregation: Claim-evidence aggregation mode (see
            :class:`~repro.crf.potentials.CliqueFeaturizer`).
        coupling_enabled: Whether the indirect (source-consistency)
            relation participates; ablation knob.
        em_iterations: EM iterations per :meth:`infer` call.
        em_tolerance: Mean-absolute marginal change below which EM stops.
        burn_in / num_samples: Gibbs sampling schedule.
        initial_bias: Cold-start bias weight (symmetry breaking for the
            unsupervised first inference).
        mstep: M-step hyper-parameters.
        estep_mode: ``"gibbs"`` (default, the paper's sampling E-step) or
            ``"meanfield"`` — a deterministic damped fixed-point E-step.
            Mean-field trades the sample-based grounding of Eq. 10 for
            exact reproducibility and speed; experiments that compare
            validation *orders* across runs (Table 2) use it to remove
            sampling noise from the comparison.
        engine: Hot-path backend selection — an
            :class:`~repro.inference.engine.EngineConfig`, a backend name,
            or ``None`` for the default (``"numpy"``).  The engine's
            cached evidence matrices are shared between the E-step sweeps
            and the M-step design assembly.
        seed: Seed or generator.
    """

    #: Supported E-step modes.
    ESTEP_MODES = ("gibbs", "meanfield")

    #: Not checkpointed (lint rule STATE001): the database is serialised
    #: by the owning process/session, the engine and EM configuration are
    #: rebuilt from the spec, and ``_last_gibbs`` is derived diagnostics
    #: recomputed by the next :meth:`infer`.  ``state_dict`` carries the
    #: learned model weights and the sampler chain.
    _STATE_EXCLUDED = (
        "_estep_mode",
        "_database",
        "_engine",
        "_em_iterations",
        "_em_tolerance",
        "_mstep_config",
        "_last_gibbs",
    )

    def __init__(
        self,
        database: FactDatabase,
        aggregation: str = "sqrt",
        coupling_enabled: bool = True,
        em_iterations: int = 3,
        em_tolerance: float = 5e-3,
        burn_in: int = 4,
        num_samples: int = 16,
        initial_bias: float = 1.0,
        mstep: Optional[MStepConfig] = None,
        estep_mode: str = "gibbs",
        engine: Union[None, str, EngineConfig] = None,
        seed: RandomState = None,
    ) -> None:
        warn_legacy(
            "ICrf(...) with keyword arguments",
            "ICrf.from_spec(database, InferenceSpec(...)) or "
            "repro.api.FactCheckSession",
        )
        if em_iterations <= 0:
            raise InferenceError("em_iterations must be positive")
        if em_tolerance < 0:
            raise InferenceError("em_tolerance must be non-negative")
        if estep_mode not in self.ESTEP_MODES:
            raise InferenceError(
                f"estep_mode must be one of {self.ESTEP_MODES}, "
                f"got {estep_mode!r}"
            )
        self._estep_mode = estep_mode
        rng = ensure_rng(seed)
        self._database = database
        weights = CrfWeights.zeros(
            database.document_features.shape[1],
            database.source_features.shape[1],
        )
        weights.values[0] = float(initial_bias)
        self._model = CrfModel(
            database,
            weights=weights,
            aggregation=aggregation,
            coupling_enabled=coupling_enabled,
        )
        self._engine = create_engine(self._model, engine)
        self._sampler = GibbsSampler(
            self._model,
            burn_in=burn_in,
            num_samples=num_samples,
            seed=derive_rng(rng, 0),
            engine=self._engine,
        )
        self._em_iterations = em_iterations
        self._em_tolerance = em_tolerance
        self._mstep_config = mstep if mstep is not None else MStepConfig()
        self._last_gibbs: Optional[GibbsResult] = None

    # ------------------------------------------------------------------

    @classmethod
    def from_spec(cls, database: FactDatabase, spec=None, seed: RandomState = None):
        """Construct from a declarative :class:`repro.api.InferenceSpec`.

        This is the non-deprecated constructor path; ``spec=None`` uses
        the spec defaults.
        """
        from repro.api.build import build_icrf

        return build_icrf(database, spec, seed=seed)

    def state_dict(self) -> dict:
        """Serialise weights and Gibbs-chain state for session checkpoints."""
        return {
            "weights": self._model.weights.values.tolist(),
            "sampler": self._sampler.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot bit-for-bit."""
        self._model.set_weights(
            CrfWeights(np.asarray(state["weights"], dtype=float))
        )
        self._sampler.load_state_dict(state["sampler"])

    @property
    def database(self) -> FactDatabase:
        """The bound fact database."""
        return self._database

    @property
    def model(self) -> CrfModel:
        """The CRF energy model (weights update in place)."""
        return self._model

    @property
    def sampler(self) -> GibbsSampler:
        """The persistent Gibbs sampler."""
        return self._sampler

    @property
    def engine(self) -> InferenceEngine:
        """The hot-path engine shared by E-step and M-step."""
        return self._engine

    @property
    def weights(self) -> CrfWeights:
        """Current model parameters W."""
        return self._model.weights

    def set_weights(self, weights: CrfWeights) -> None:
        """Install externally produced parameters.

        The streaming algorithm (Alg. 2, line 10) feeds its online-EM
        parameters back into the validation process through this hook.
        """
        self._model.set_weights(weights)

    @property
    def last_gibbs(self) -> Optional[GibbsResult]:
        """The Ω*_z sample set of the most recent inference, if any."""
        return self._last_gibbs

    # ------------------------------------------------------------------

    def infer(
        self,
        em_iterations: Optional[int] = None,
        claim_subset: Optional[np.ndarray] = None,
        update_weights: bool = True,
    ) -> InferenceResult:
        """Run EM and update the database's probabilities in place.

        Args:
            em_iterations: Override of the EM iteration budget.
            claim_subset: Restrict the E-step to these claims (§5.1 graph
                partitioning); marginals of other claims are unchanged.
            update_weights: When ``False`` the M-step is skipped — used by
                the light hypothetical inference of user guidance, where
                the model must not drift while evaluating candidates.

        Returns:
            An :class:`InferenceResult`; the database's ``P`` reflects the
            returned marginals.
        """
        budget = self._em_iterations if em_iterations is None else em_iterations
        if budget <= 0:
            raise InferenceError("em_iterations must be positive")

        previous = np.asarray(self._database.probabilities, dtype=float).copy()
        deltas = []
        converged = False
        gibbs_result: Optional[GibbsResult] = None
        performed = 0
        for _ in range(budget):
            if self._estep_mode == "meanfield":
                gibbs_result = self._mean_field_estep(claim_subset)
            else:
                gibbs_result = self._sampler.sample(claim_subset=claim_subset)
            marginals = gibbs_result.marginals
            self._database.set_probabilities(marginals)
            if update_weights:
                run_m_step(
                    self._model, marginals, self._mstep_config,
                    engine=self._engine,
                )
            delta = float(np.mean(np.abs(marginals - previous)))
            deltas.append(delta)
            previous = marginals.copy()
            performed += 1
            if delta <= self._em_tolerance:
                converged = True
                break

        assert gibbs_result is not None
        self._last_gibbs = gibbs_result
        grounding = decide_grounding(self._database, gibbs_result)
        return InferenceResult(
            marginals=np.asarray(self._database.probabilities).copy(),
            grounding=grounding,
            weights=self._model.weights.copy(),
            em_iterations=performed,
            converged=converged,
            marginal_deltas=deltas,
        )

    def reset_chain(self) -> None:
        """Drop the persistent Gibbs state (cold-start ablation)."""
        self._sampler.reset()

    def _mean_field_estep(
        self, claim_subset: Optional[np.ndarray], steps: int = 6,
        damping: float = 0.3,
    ) -> GibbsResult:
        """Deterministic damped fixed-point E-step.

        Produces the same result container as the Gibbs E-step; the mode
        configuration degenerates to thresholded marginals (the naive
        instantiation of §2.3).
        """
        from repro.crf.potentials import sigmoid

        database = self._database
        marginals = np.asarray(database.probabilities, dtype=float).copy()
        label_indices, label_values = database.label_arrays()
        if label_indices.size:
            marginals[label_indices] = label_values
        if claim_subset is None:
            free = database.unlabelled_indices
        else:
            labelled = database.labels
            free = np.asarray(
                [int(c) for c in claim_subset if int(c) not in labelled],
                dtype=np.intp,
            )
        if free.size:
            for _ in range(steps):
                logits = self._model.marginal_logits(marginals)
                updated = sigmoid(logits[free])
                marginals[free] = (
                    damping * marginals[free] + (1.0 - damping) * updated
                )
        configuration = (marginals >= 0.5).astype(np.int8)
        if label_indices.size:
            configuration[label_indices] = label_values.astype(np.int8)
        return GibbsResult(
            marginals=marginals,
            mode_configuration=configuration,
            num_samples=1,
            configuration_counts={configuration.tobytes(): 1},
        )
