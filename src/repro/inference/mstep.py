"""M-step of iCRF: fitting W by expected log-likelihood maximisation (Eq. 8).

With the expected sufficient statistics from the E-step (the per-claim
credibility estimates ``q``), maximising the expected log-likelihood of the
tied-weight log-linear model reduces to a *weighted* logistic regression:

* every labelled claim contributes one example with its user label and a
  boosted weight (user input is a first-class citizen, §3.2);
* every unlabelled claim contributes two fractional examples, target 1 with
  weight ``q(c)`` and target 0 with weight ``1 - q(c)``.

Feature rows are the aggregated clique features of each claim plus the
trust-signal column (the indirect relation), so the coupling weight γ is
learned jointly with the feature weights.  The optimiser is the TRON method
of :mod:`repro.inference.tron`, warm-started from the previous weights —
this is the incremental aspect: after one additional user label, the
previous optimum is an excellent starting point and TRON re-converges in a
couple of Newton steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.crf.model import CrfModel
from repro.crf.weights import CrfWeights
from repro.errors import InferenceError
from repro.inference.tron import TronResult, WeightedLogisticLoss, tron_minimize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.inference.engine import InferenceEngine


@dataclass
class MStepConfig:
    """Hyper-parameters of the M-step.

    Attributes:
        regularization: L2 strength λ of the TRON objective.
        labelled_weight: Sample-weight boost of user-labelled claims.
        max_iterations: Newton iteration cap per M-step.
        gradient_tolerance: Relative gradient stopping tolerance.
        min_coverage: Claims with fewer cliques than this are excluded from
            the design matrix (their aggregated features are all zero and
            only dilute the fit).
    """

    regularization: float = 1.0
    labelled_weight: float = 10.0
    max_iterations: int = 25
    gradient_tolerance: float = 1e-2
    min_coverage: int = 1

    def __post_init__(self) -> None:
        if self.regularization <= 0:
            raise InferenceError("regularization must be positive")
        if self.labelled_weight <= 0:
            raise InferenceError("labelled_weight must be positive")
        if self.max_iterations <= 0:
            raise InferenceError("max_iterations must be positive")


def build_design_matrix(model: CrfModel, marginals: np.ndarray) -> np.ndarray:
    """Per-claim design matrix ``[aggregated clique features, trust signal]``.

    The dot product of row ``c`` with the full weight vector equals the
    claim's mean-field conditional logit, which ties the regression
    directly to the Gibbs conditionals it parameterises.
    """
    features = model.featurizer.claim_design_matrix()
    trust = model.trust_signals(marginals)
    return np.column_stack([features, trust])


def run_m_step(
    model: CrfModel,
    marginals: np.ndarray,
    config: MStepConfig = MStepConfig(),
    engine: Optional["InferenceEngine"] = None,
) -> TronResult:
    """Fit new weights from the current credibility estimates.

    Args:
        model: CRF model; its weights are the warm start and are *updated
            in place* on success.
        marginals: Per-claim credibility estimates from the E-step; entries
            of labelled claims must already equal their labels.
        config: Hyper-parameters.
        engine: Hot-path engine assembling the expected-statistics design;
            defaults to the configured default backend for ``model``,
            whose cached feature matrix is reused across EM rounds.

    Returns:
        The :class:`~repro.inference.tron.TronResult` of the fit.
    """
    database = model.database
    marginals = np.asarray(marginals, dtype=float)
    if marginals.shape != (database.num_claims,):
        raise InferenceError("marginals must cover every claim")

    from repro.inference.engine import create_engine

    engine = create_engine(model, engine)
    assembled = engine.assemble_mstep(marginals, config)
    if assembled is None:
        # Nothing to fit (e.g. no claim has any clique); keep weights.
        current = model.weights.values
        return TronResult(
            weights=current.copy(),
            objective=0.0,
            gradient_norm=0.0,
            iterations=0,
            converged=True,
        )

    design, targets, sample_weights = assembled
    loss = WeightedLogisticLoss(
        design=design,
        targets=targets,
        sample_weights=sample_weights,
        regularization=config.regularization,
    )
    result = tron_minimize(
        loss,
        initial=model.weights.values,
        max_iterations=config.max_iterations,
        gradient_tolerance=config.gradient_tolerance,
    )
    model.set_weights(CrfWeights(result.weights))
    return result
