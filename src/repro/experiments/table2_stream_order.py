"""Table 2 — preservation of the validation sequence under streaming (§8.8).

The offline validation sequence (Alg. 1 over the complete corpus) is
compared against the sequence produced when validation interleaves with
the stream: the streaming model (Alg. 2) ingests arrivals, and after every
*validation period* (5–30% of the claims) the validation process runs on
the current snapshot — selecting among the claims that exist so far —
with model parameters exchanged between the two algorithms.  Similarity is
quantified with Kendall's τ_b.  Expected shape: τ_b grows with the period
(validating later ≈ the offline setting).

Protocol note: the comparison uses the deterministic mean-field E-step and
the information-driven strategy so that both sequences are pure functions
of the data available at selection time — with the sampling E-step and the
hybrid roulette wheel, even two *offline* runs agree only weakly
(τ_b ≈ 0.3), which would drown the structural effect the table measures.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import ExperimentConfig, build_database
from repro.inference.icrf import ICrf
from repro.metrics.correlation import sequence_rank_correlation
from repro.streaming.process import StreamingFactChecker
from repro.streaming.stream import stream_from_database
from repro.utils.rng import derive_rng, ensure_rng
from repro.validation.oracle import SimulatedUser

#: Validation periods of the table's columns (fractions of |C|).
DEFAULT_PERIODS = (0.05, 0.10, 0.20, 0.30)


def run(
    config: Optional[ExperimentConfig] = None,
    periods: Sequence[float] = DEFAULT_PERIODS,
) -> ExperimentResult:
    """Kendall's τ_b between offline and streaming validation sequences."""
    config = config if config is not None else ExperimentConfig()
    result = ExperimentResult(
        name="table2_stream_order",
        title="Table 2 — Preservation of validation sequence (Kendall's tau_b)",
        headers=["dataset"] + [f"period={int(p * 100)}%" for p in periods],
        notes="expected shape: tau_b increases with the validation period",
    )
    for dataset in config.datasets:
        taus = {period: [] for period in periods}
        for run in range(config.runs):
            data_seed = config.seed + 31 * run
            database = build_database(dataset, config, ensure_rng(data_seed))
            # Common random numbers: the offline run and every streaming
            # validation batch share one validator seed, so tau_b reflects
            # the structural effect of partial claim availability, not RNG
            # noise.
            validator_seed = data_seed + 1009
            # The offline sequence is produced by the same machinery with
            # the validation deferred past the end of the stream
            # (period > 1): all selections then happen on the complete
            # database, which is exactly the offline setting of Alg. 1.
            offline = _streaming_sequence(database, 2.0, config,
                                          validator_seed)
            for period in periods:
                fresh = build_database(dataset, config, ensure_rng(data_seed))
                streaming = _streaming_sequence(
                    fresh, period, config, validator_seed
                )
                taus[period].append(
                    sequence_rank_correlation(offline, streaming)
                )
        result.add_row(
            dataset, *[float(np.mean(taus[period])) for period in periods]
        )
    return result


def _offline_sequence(database, config: ExperimentConfig, seed) -> List[str]:
    """Full offline validation order (claim identifiers)."""
    process = _make_process(database, config, seed)
    trace = process.run()
    return [database.claim_id(index) for index in trace.validated_claims()]


def _make_process(snapshot, config: ExperimentConfig, seed, weights=None):
    """Deterministic validation process over one database snapshot."""
    from repro.guidance.strategies import make_strategy
    from repro.validation.process import ValidationProcess

    from repro._legacy import suppress_legacy_warnings

    rng = ensure_rng(seed)
    with suppress_legacy_warnings():
        icrf = ICrf(
            snapshot,
            em_iterations=config.em_iterations,
            estep_mode="meanfield",
            seed=derive_rng(rng, 0),
        )
        if weights is not None:
            icrf.set_weights(weights)
        return ValidationProcess(
            snapshot,
            strategy=make_strategy("info"),
            user=SimulatedUser(seed=derive_rng(rng, 2)),
            icrf=icrf,
            candidate_limit=config.candidate_limit,
            deterministic_ties=True,
            seed=derive_rng(rng, 1),
        )


def _streaming_sequence(
    database, period: float, config: ExperimentConfig, validator_seed: int
) -> List[str]:
    """Validation order with arrivals interleaved every ``period``.

    Following §8.8, *one* claim is validated per period boundary while the
    stream runs ("the validation process, where a claim is selected from
    the existing claims"); once the stream is exhausted, validation
    continues on the complete snapshot until every claim is validated, so
    the sequences compared by τ_b have equal support.  Larger periods mean
    fewer selections constrained by partial claim availability — the
    mechanism behind the increasing trend of Table 2.
    """
    from repro._legacy import suppress_legacy_warnings

    with suppress_legacy_warnings():
        checker = StreamingFactChecker(seed=validator_seed)
    arrivals = list(stream_from_database(database))
    claim_arrivals = sum(1 for a in arrivals if a.claim is not None)
    period_length = max(1, int(round(period * claim_arrivals)))
    sequence: List[str] = []
    pending = 0
    for arrival in arrivals:
        checker.observe(arrival)
        if arrival.claim is not None:
            pending += 1
        if pending >= period_length:
            sequence.extend(
                _validate_batch(checker, 1, config, validator_seed)
            )
            pending = 0
    # Stream exhausted: validate the remaining claims on the full snapshot.
    snapshot = checker.database
    remaining = int(snapshot.unlabelled_indices.size)
    if remaining:
        sequence.extend(
            _validate_batch(checker, remaining, config, validator_seed)
        )
    return sequence


def _validate_batch(
    checker: StreamingFactChecker, count: int, config: ExperimentConfig, seed
) -> List[str]:
    """Run ``count`` validation iterations on the current stream snapshot.

    Parameters flow both ways (Alg. 2 lines 7 and 10): the snapshot's
    inference engine starts from the streaming parameters, and the
    parameters it learns are fed back to the streaming model.
    """
    snapshot = checker.database
    process = _make_process(snapshot, config, seed, weights=checker.weights)
    validated: List[str] = []
    for _ in range(count):
        if snapshot.unlabelled_indices.size == 0:
            break
        record = process.step()
        for claim_index, value in zip(record.claim_indices, record.user_values):
            claim_id = snapshot.claim_id(claim_index)
            checker.record_label(claim_id, value)
            validated.append(claim_id)
    checker.receive_weights(process.icrf.weights)
    return validated
