"""Fig. 5 — correlation between uncertainty and precision (§8.4).

Information-driven guidance is run until full precision on every dataset;
per iteration the pair (normalised uncertainty, precision) is recorded.
The paper reports a strongly negative Pearson coefficient (−0.8523),
confirming that the model's uncertainty is a truthful indicator of the
correctness of its credibility assignments — the premise of using
uncertainty reduction as the guidance signal.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import ExperimentConfig, run_to_precision
from repro.metrics.correlation import pearson_correlation
from repro.utils.rng import spawn_rngs


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Collect uncertainty/precision pairs and their Pearson correlation."""
    config = config if config is not None else ExperimentConfig()
    pairs: List[Tuple[float, float]] = []
    for dataset in config.datasets:
        for rng in spawn_rngs(config.seed, config.runs):
            trace, _ = run_to_precision(
                dataset, "info", config, rng, precision=1.0
            )
            entropies = np.concatenate(
                ([trace.initial_entropy], trace.entropies())
            )
            peak = entropies.max()
            if peak <= 0:
                continue
            normalised = entropies / peak
            precisions = np.concatenate(
                (
                    [trace.initial_precision if trace.initial_precision is not None else np.nan],
                    trace.precisions(),
                )
            )
            for uncertainty, precision in zip(normalised, precisions):
                if not np.isnan(precision):
                    pairs.append((float(uncertainty), float(precision)))

    uncertainties = [p[0] for p in pairs]
    precisions = [p[1] for p in pairs]
    correlation = pearson_correlation(uncertainties, precisions)

    result = ExperimentResult(
        name="fig5_uncertainty_precision",
        title="Fig. 5 — Uncertainty vs. precision",
        headers=["statistic", "value"],
        notes=(
            "paper reports Pearson = -0.8523; expected shape: strong "
            "negative correlation"
        ),
    )
    result.add_row("pairs", len(pairs))
    result.add_row("pearson", correlation)
    result.add_row("mean_uncertainty", float(np.mean(uncertainties)))
    result.add_row("mean_precision", float(np.mean(precisions)))
    return result
