"""Fig. 10 — effects of a static batch size (§8.7).

For batch sizes k ∈ {1, 2, 5, 10, 20} the validation process runs with
greedy top-k batching to a fixed effort budget.  Reported per k: the cost
saving ``CS(k) = 1 - 1/k^α`` for α ∈ {¼, ½, 1} and the *precision
degradation* relative to the unbatched (k = 1) process at equal label
effort.  Expected shape: larger batches save more set-up cost but degrade
precision, with medium k (5–10) the sweet spot.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.effort.cost import cost_saving, precision_degradation
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import (
    ExperimentConfig,
    build_database,
    build_process,
)
from repro.utils.rng import ensure_rng, spawn_rngs

DEFAULT_BATCH_SIZES = (1, 2, 5, 10, 20)
DEFAULT_ALPHAS = (0.25, 0.5, 1.0)


def run(
    config: Optional[ExperimentConfig] = None,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    effort_fraction: float = 0.5,
) -> ExperimentResult:
    """Precision degradation and cost savings per batch size and dataset."""
    config = config if config is not None else ExperimentConfig()
    result = ExperimentResult(
        name="fig10_static_batch",
        title="Fig. 10 — Precision degradation vs. cost saving (static k)",
        headers=["dataset", "k", "precision", "degradation_%"]
        + [f"CS(alpha={a})_%" for a in alphas],
        notes=(
            "expected shape: larger k -> larger cost saving, larger "
            "precision degradation; medium k is the sweet spot"
        ),
    )
    for dataset in config.datasets:
        precisions = {}
        for k in batch_sizes:
            values = []
            for seed in spawn_rngs(config.seed, config.runs):
                values.append(
                    _precision_at_effort(dataset, k, effort_fraction, config, seed)
                )
            precisions[k] = float(np.mean(values))
        unbatched = max(precisions[batch_sizes[0]], 1e-9)
        for k in batch_sizes:
            degradation = 100.0 * precision_degradation(unbatched, precisions[k])
            savings = [100.0 * cost_saving(k, alpha) for alpha in alphas]
            result.add_row(dataset, k, precisions[k], degradation, *savings)
    return result


def _precision_at_effort(
    dataset: str,
    batch_size: int,
    effort_fraction: float,
    config: ExperimentConfig,
    seed,
) -> float:
    """Run with batches of size k to the effort budget; return precision."""
    rng = ensure_rng(seed)
    database = build_database(dataset, config, rng)
    process = build_process(
        database, "info", config, rng, batch_size=batch_size
    )
    process.initialize()
    budget = int(round(effort_fraction * database.num_claims))
    while (
        database.num_labelled < budget and database.unlabelled_indices.size > 0
    ):
        process.step()
    precision = process.current_precision()
    return precision if precision is not None else 0.0
