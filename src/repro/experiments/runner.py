"""Shared infrastructure of the experiment drivers (§8).

The drivers replay the paper's protocols on the synthetic corpus replicas.
Entity counts are shrunk through per-dataset ``scale`` factors so a full
experiment sweep completes in minutes on a laptop while preserving each
corpus's *shape* (documents-per-claim and claims-per-source ratios are
scale-invariant in the generator); pass ``scale_factor > 1`` to approach
the published sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence

from repro._legacy import suppress_legacy_warnings
from repro.data.database import FactDatabase
from repro.datasets import generate_dataset, get_profile
from repro.guidance.gain import GainConfig
from repro.guidance.strategies import make_strategy
from repro.inference.mstep import MStepConfig
from repro.utils.rng import RandomState, ensure_rng
from repro.validation.goals import TruePrecisionGoal, ValidationGoal
from repro.validation.oracle import SimulatedUser
from repro.validation.process import ValidationProcess
from repro.validation.robustness import ConfirmationChecker

#: Default corpus scales: chosen so each replica has 25–50 claims and a few
#: hundred to ~1.5k documents — large enough for the guidance dynamics to
#: show, small enough for full sweeps in CI.
DEFAULT_SCALES: Dict[str, float] = {
    "wiki": 0.20,
    "health": 0.05,
    "snopes": 0.008,
}

#: All dataset keys, in the paper's presentation order.
DATASETS = ("wiki", "health", "snopes")


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiment drivers.

    Attributes:
        seed: Root seed; every run derives deterministic children.
        scale_factor: Multiplier on :data:`DEFAULT_SCALES` (1.0 = default
            replica sizes; larger values approach the published corpora).
        datasets: Which corpora to run.
        runs: Independent repetitions to average over.
        em_iterations: EM budget per validation iteration.
        gibbs_samples: Gibbs samples per E-step.
        candidate_limit: Candidate-pool cap for gain-based strategies
            (``None`` scans all unlabelled claims).
    """

    seed: int = 7
    scale_factor: float = 1.0
    datasets: Sequence[str] = DATASETS
    runs: int = 2
    em_iterations: int = 2
    gibbs_samples: int = 12
    candidate_limit: Optional[int] = 20
    scales: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_SCALES))

    def scale_of(self, dataset: str) -> float:
        """Effective generation scale of one dataset."""
        return self.scales[dataset] * self.scale_factor

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Copy with selected fields replaced."""
        return replace(self, **kwargs)


def build_database(
    dataset: str, config: ExperimentConfig, seed: RandomState
) -> FactDatabase:
    """Generate the synthetic replica of one corpus."""
    profile = get_profile(dataset)
    return generate_dataset(profile, seed=seed, scale=config.scale_of(dataset))


def build_process(
    database: FactDatabase,
    strategy_name: str,
    config: ExperimentConfig,
    seed: RandomState,
    goal: Optional[ValidationGoal] = None,
    user: Optional[SimulatedUser] = None,
    gain_config: Optional[GainConfig] = None,
    robustness: Optional[ConfirmationChecker] = None,
    batch_size: int = 1,
) -> ValidationProcess:
    """Assemble a validation process with the experiment defaults.

    Construction goes through the declarative :class:`repro.api.InferenceSpec`
    path so experiment inference settings stay serialisable alongside
    session specs.
    """
    from repro.api.build import build_icrf
    from repro.api.specs import InferenceSpec

    rng = ensure_rng(seed)
    icrf = build_icrf(
        database,
        InferenceSpec(
            em_iterations=config.em_iterations,
            num_samples=config.gibbs_samples,
            mstep=MStepConfig(max_iterations=15),
        ),
        seed=rng,
    )
    if user is None:
        user = SimulatedUser(seed=rng)
    with suppress_legacy_warnings():
        return ValidationProcess(
            database,
            strategy=make_strategy(strategy_name),
            user=user,
            goal=goal,
            icrf=icrf,
            gain_config=gain_config,
            candidate_limit=config.candidate_limit,
            robustness=robustness,
            batch_size=batch_size,
            seed=rng,
        )


def run_to_precision(
    dataset: str,
    strategy_name: str,
    config: ExperimentConfig,
    seed: RandomState,
    precision: float = 1.0,
    user: Optional[SimulatedUser] = None,
    gain_config: Optional[GainConfig] = None,
    robustness: Optional[ConfirmationChecker] = None,
):
    """Run one validation process until a precision target (or exhaustion).

    Returns:
        ``(trace, process)``.
    """
    rng = ensure_rng(seed)
    database = build_database(dataset, config, rng)
    process = build_process(
        database,
        strategy_name,
        config,
        rng,
        goal=TruePrecisionGoal(precision),
        user=user,
        gain_config=gain_config,
        robustness=robustness,
    )
    trace = process.run()
    return trace, process
