"""Table 1 — detection of erroneous user input (§8.5).

User mistakes are injected by flipping correct input with probability p;
the confirmation check of §5.2 runs periodically.  Reported per dataset
and p: the percentage of injected mistakes that were detected.  Expected
shape (paper): detection stays high (≈ 80–100%) and degrades gently as p
grows — with more simultaneous mistakes the redundancy the check exploits
weakens.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import ExperimentConfig, build_database, build_process
from repro.utils.rng import derive_rng, ensure_rng, spawn_rngs
from repro.validation.oracle import SimulatedUser
from repro.validation.robustness import ConfirmationChecker

#: Mistake probabilities of the table's columns.
DEFAULT_PROBABILITIES = (0.15, 0.20, 0.25, 0.30)


def run(
    config: Optional[ExperimentConfig] = None,
    probabilities: Sequence[float] = DEFAULT_PROBABILITIES,
    effort_fraction: float = 0.6,
) -> ExperimentResult:
    """Detection rate of injected mistakes per dataset and p.

    Args:
        config: Experiment configuration.
        probabilities: Mistake probabilities p to sweep.
        effort_fraction: Fraction of claims validated per run.
    """
    config = config if config is not None else ExperimentConfig()
    result = ExperimentResult(
        name="table1_mistake_detection",
        title="Table 1 — Detected mistakes (%)",
        headers=["dataset"] + [f"p={p}" for p in probabilities],
        notes="expected shape: high detection, decreasing with p",
    )
    for dataset in config.datasets:
        row = [dataset]
        for probability in probabilities:
            rates = []
            for rng in spawn_rngs(config.seed, config.runs):
                rates.append(
                    _detection_rate(dataset, probability, effort_fraction,
                                    config, rng)
                )
            row.append(100.0 * float(np.mean(rates)))
        result.add_row(*row)
    return result


def _detection_rate(
    dataset: str,
    probability: float,
    effort_fraction: float,
    config: ExperimentConfig,
    seed,
) -> float:
    """One run: detected / (detected + undetected) injected mistakes."""
    rng = ensure_rng(seed)
    database = build_database(dataset, config, rng)
    truth = database.truth_vector()
    # The paper triggers the check after each 1% of total validations;
    # with the scaled corpora that is at least every claim.
    interval = max(1, database.num_claims // 100)
    user = SimulatedUser(error_probability=probability, seed=derive_rng(rng, 1))
    process = build_process(
        database,
        "hybrid",
        config,
        derive_rng(rng, 2),
        user=user,
        robustness=ConfirmationChecker(interval=interval),
    )
    process.initialize()
    budget = int(round(effort_fraction * database.num_claims))
    for _ in range(budget):
        if database.unlabelled_indices.size == 0:
            break
        process.step()
    detected = process.robustness_stats.true_detections
    # Mistakes still standing at the end were never detected.
    undetected = sum(
        1
        for claim_index, label in database.labels.items()
        if label != int(truth[claim_index])
    )
    total = detected + undetected
    if total == 0:
        return 1.0
    return detected / total
