"""Result containers and plain-text table rendering for experiments.

Every experiment driver returns an :class:`ExperimentResult` whose rows
mirror the corresponding table or figure series of the paper; benchmarks
print them with :meth:`ExperimentResult.format_table` so the reproduction
output can be compared with the publication side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class ExperimentResult:
    """Tabular outcome of one experiment driver.

    Attributes:
        name: Experiment identifier (e.g. ``"fig6_guidance"``).
        title: Human-readable title referencing the paper artifact.
        headers: Column names.
        rows: Data rows; cells may be numbers or strings.
        notes: Free-form commentary (expected shape, caveats).
    """

    name: str
    title: str
    headers: List[str]
    rows: List[List] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *cells) -> None:
        """Append one row."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append(list(cells))

    def column(self, header: str) -> List:
        """All values of one column."""
        try:
            index = self.headers.index(header)
        except ValueError:
            raise KeyError(f"no column {header!r}; have {self.headers}") from None
        return [row[index] for row in self.rows]

    def format_table(self, float_digits: int = 3) -> str:
        """Render as an aligned plain-text table."""
        rendered = [[_render(cell, float_digits) for cell in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in rendered:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)))
        for row in rendered:
            lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
        if self.notes:
            lines.append("")
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


def _render(cell, float_digits: int) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.{float_digits}f}"
    return str(cell)


def series_at_grid(
    efforts: Sequence[float], values: Sequence[float], grid: Sequence[float]
) -> List[float]:
    """Sample a (monotone-effort) series at fixed effort grid points.

    For each grid point, the value at the last observation with effort ≤
    the point is taken (step interpolation); grid points before the first
    observation take the first value.
    """
    if len(efforts) != len(values):
        raise ValueError("efforts and values must align")
    if not efforts:
        raise ValueError("series is empty")
    sampled: List[float] = []
    for point in grid:
        best = values[0]
        for effort, value in zip(efforts, values):
            if effort <= point:
                best = value
            else:
                break
        sampled.append(float(best))
    return sampled
