"""Fig. 6 — effectiveness of the guidance strategies (§8.4).

The headline experiment: for each dataset and each selection strategy
(random, uncertainty, info, source, hybrid), the validation process runs
until perfect precision while the precision-vs-effort curve is recorded.
The paper's headline numbers: on snopes, ``hybrid`` reaches precision
> 0.9 with input on only 31% of the claims while every baseline needs at
least 67% — i.e. roughly *half the effort* of the baselines.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.experiments.reporting import ExperimentResult, series_at_grid
from repro.experiments.runner import ExperimentConfig, run_to_precision
from repro.utils.rng import spawn_rngs

#: Strategies of the figure, in legend order.
STRATEGY_NAMES = ("random", "uncertainty", "info", "source", "hybrid")
#: Effort grid (fractions of |C|) for the reported curves.
DEFAULT_GRID = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def run(
    config: Optional[ExperimentConfig] = None,
    strategies: Sequence[str] = STRATEGY_NAMES,
    grid: Sequence[float] = DEFAULT_GRID,
    target_precision: float = 0.9,
) -> ExperimentResult:
    """Precision-vs-effort curves plus effort-to-target summaries.

    Args:
        config: Experiment configuration.
        strategies: Strategies to compare.
        grid: Effort grid for the sampled curves.
        target_precision: The summary target (paper: 0.9).
    """
    config = config if config is not None else ExperimentConfig()
    result = ExperimentResult(
        name="fig6_guidance",
        title="Fig. 6 — Precision vs. label effort per guidance strategy",
        headers=["dataset", "strategy"]
        + [f"P@{int(g * 100)}%" for g in grid]
        + [f"effort_to_{target_precision}"],
        notes=(
            "expected shape: hybrid dominates; it reaches the target "
            "precision with roughly half the effort of random selection"
        ),
    )
    for dataset in config.datasets:
        for strategy in strategies:
            curves = []
            efforts_to_target = []
            for rng in spawn_rngs(config.seed, config.runs):
                trace, _ = run_to_precision(
                    dataset, strategy, config, rng, precision=1.0
                )
                efforts = np.concatenate(([0.0], trace.efforts()))
                precisions = np.concatenate(
                    (
                        [trace.initial_precision or 0.0],
                        np.nan_to_num(trace.precisions(), nan=0.0),
                    )
                )
                curves.append(
                    series_at_grid(list(efforts), list(precisions), grid)
                )
                reached = trace.effort_to_reach(target_precision)
                efforts_to_target.append(reached if reached is not None else 1.0)
            mean_curve = np.mean(np.asarray(curves), axis=0)
            result.add_row(
                dataset,
                strategy,
                *[float(v) for v in mean_curve],
                float(np.mean(efforts_to_target)),
            )
    return result


def effort_summary(result: ExperimentResult) -> Dict[str, Dict[str, float]]:
    """Per-dataset mapping of strategy -> mean effort to the target."""
    summary: Dict[str, Dict[str, float]] = {}
    target_column = result.headers[-1]
    for row in result.rows:
        dataset, strategy = row[0], row[1]
        summary.setdefault(dataset, {})[strategy] = row[
            result.headers.index(target_column)
        ]
    return summary
