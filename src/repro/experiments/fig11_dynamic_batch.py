"""Fig. 11 — effects of a dynamic batch size (§8.7).

For each static batch size k the process runs until a precision threshold
(0.8 / 0.9) and the consumed label effort is recorded against the cost
saving ``CS(k)`` with α = 2/3 — the trade-off from which the paper derives
its dynamic schedule (start small, grow k once enough claims are
validated).  The dynamic schedule itself
(:func:`repro.effort.cost.dynamic_batch_size`) is measured as an extra row.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.effort.cost import cost_saving, dynamic_batch_size
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import (
    ExperimentConfig,
    build_database,
    build_process,
)
from repro.utils.rng import ensure_rng, spawn_rngs

DEFAULT_BATCH_SIZES = (1, 2, 5, 10, 20)
DEFAULT_THRESHOLDS = (0.8, 0.9)
DEFAULT_ALPHA = 2.0 / 3.0


def run(
    config: Optional[ExperimentConfig] = None,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    alpha: float = DEFAULT_ALPHA,
) -> ExperimentResult:
    """Label effort vs. cost saving per batch size and precision target."""
    config = config if config is not None else ExperimentConfig()
    result = ExperimentResult(
        name="fig11_dynamic_batch",
        title=f"Fig. 11 — Label effort vs. cost saving (alpha={alpha:.2f})",
        headers=["dataset", "k", "cost_saving_%"]
        + [f"effort@prec={t}" for t in thresholds],
        notes=(
            "expected shape: larger k -> more cost saving but more label "
            "effort to reach a precision level; 'dynamic' approaches small-k "
            "effort with large-k savings"
        ),
    )
    for dataset in config.datasets:
        for k in batch_sizes:
            efforts = _efforts_to_thresholds(
                dataset, k, thresholds, config, dynamic=False
            )
            result.add_row(
                dataset,
                k,
                100.0 * cost_saving(k, alpha),
                *[efforts[t] for t in thresholds],
            )
        efforts = _efforts_to_thresholds(
            dataset, 0, thresholds, config, dynamic=True
        )
        # The dynamic schedule's saving is computed from its mean batch size.
        mean_k = max(int(round(efforts.pop("mean_k"))), 1)
        result.add_row(
            dataset,
            "dynamic",
            100.0 * cost_saving(mean_k, alpha),
            *[efforts[t] for t in thresholds],
        )
    return result


def _efforts_to_thresholds(
    dataset: str,
    batch_size: int,
    thresholds: Sequence[float],
    config: ExperimentConfig,
    dynamic: bool,
):
    """Mean label effort needed for each threshold; optionally dynamic k."""
    sums = {t: [] for t in thresholds}
    batch_sizes_used = []
    for seed in spawn_rngs(config.seed, config.runs):
        rng = ensure_rng(seed)
        database = build_database(dataset, config, rng)
        process = build_process(
            database,
            "info",
            config,
            rng,
            batch_size=batch_size if not dynamic else 1,
        )
        process.initialize()
        reached = {t: None for t in thresholds}
        while database.unlabelled_indices.size > 0:
            if dynamic:
                fraction = database.num_labelled / database.num_claims
                process.batch_size = dynamic_batch_size(fraction)
            batch_sizes_used.append(process.batch_size)
            process.step()
            effort = database.num_labelled / database.num_claims
            precision = process.current_precision() or 0.0
            for t in thresholds:
                if reached[t] is None and precision >= t:
                    reached[t] = effort
            if all(v is not None for v in reached.values()):
                break
        for t in thresholds:
            sums[t].append(reached[t] if reached[t] is not None else 1.0)
    out = {t: float(np.mean(v)) for t, v in sums.items()}
    if dynamic:
        out["mean_k"] = float(np.mean(batch_sizes_used)) if batch_sizes_used else 1.0
    return out
