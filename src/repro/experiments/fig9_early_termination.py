"""Fig. 9 — effectiveness of the early-termination indicators (§8.6).

One validation run to exhaustion on the snopes replica; per effort grid
point the precision improvement (%) is reported next to each convergence
indicator of §6.1: URR (uncertainty reduction rate), CNG (grounding
changes), PRE (validated predictions), and PIR (cross-validated precision
improvement rate).  Expected shape: the indicators decay (PRE rises) as
precision improvement saturates — stopping when, e.g., URR falls below
20% already captures > 80% of the achievable improvement at roughly 40%
effort.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.effort.crossval import estimate_precision
from repro.effort.termination import cng_series, pre_series, urr_series
from repro.experiments.reporting import ExperimentResult, series_at_grid
from repro.experiments.runner import ExperimentConfig, build_database, build_process
from repro.utils.rng import ensure_rng

DEFAULT_GRID = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0)


def run(
    config: Optional[ExperimentConfig] = None,
    dataset: str = "snopes",
    grid: Sequence[float] = DEFAULT_GRID,
    pir_folds: int = 4,
) -> ExperimentResult:
    """All four indicators next to precision improvement, on one run."""
    config = config if config is not None else ExperimentConfig()
    rng = ensure_rng(config.seed)
    database = build_database(dataset, config, rng)
    process = build_process(database, "hybrid", config, rng)
    process.initialize()

    precision_estimates = []
    while database.unlabelled_indices.size > 0:
        process.step()
        if database.num_labelled >= max(pir_folds, 4):
            precision_estimates.append(
                estimate_precision(process, folds=pir_folds)
            )
        else:
            precision_estimates.append(np.nan)
    trace = process.trace

    efforts = list(trace.efforts())
    improvements = 100.0 * np.nan_to_num(trace.precision_improvements(), nan=0.0)
    urr = 100.0 * urr_series(trace)
    cng = 100.0 * cng_series(trace)
    pre = 100.0 * pre_series(trace)
    estimates = np.asarray(precision_estimates, dtype=float)
    pir = np.zeros_like(estimates)
    for index in range(1, estimates.size):
        previous, current = estimates[index - 1], estimates[index]
        if np.isnan(previous) or np.isnan(current) or previous <= 0:
            pir[index] = 0.0
        else:
            pir[index] = 100.0 * (current - previous) / previous

    result = ExperimentResult(
        name="fig9_early_termination",
        title=f"Fig. 9 — Early-termination indicators ({dataset})",
        headers=["effort", "prec_improv_%", "URR_%", "CNG_%", "PRE_%", "PIR_%"],
        notes=(
            "expected shape: URR/CNG/PIR decay and PRE rises while the "
            "precision improvement saturates"
        ),
    )
    for point in grid:
        result.add_row(
            f"{int(point * 100)}%",
            series_at_grid(efforts, list(improvements), [point])[0],
            series_at_grid(efforts, list(urr), [point])[0],
            series_at_grid(efforts, list(cng), [point])[0],
            series_at_grid(efforts, list(pre), [point])[0],
            series_at_grid(efforts, list(pir), [point])[0],
        )
    return result
