"""Fig. 4 — histogram of the probabilities of correct assignments (§8.3).

For every claim the probability assigned to its *correct* credibility
value is tracked (``P(c=1)`` for true claims, ``P(c=0)`` for false ones)
at 0%, 20% and 40% user effort.  The paper's reading: with growing user
effort the mass shifts from low to high probability bins — user input
sharpens the model's beliefs in the right direction.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import ExperimentConfig, build_database, build_process
from repro.utils.rng import spawn_rngs

#: Effort checkpoints of the figure.
DEFAULT_CHECKPOINTS = (0.0, 0.2, 0.4)
#: Probability bins of the histogram (upper edges).
DEFAULT_BIN_EDGES = tuple(np.round(np.arange(0.1, 1.01, 0.1), 2))


def run(
    config: Optional[ExperimentConfig] = None,
    checkpoints: Sequence[float] = DEFAULT_CHECKPOINTS,
    bin_edges: Sequence[float] = DEFAULT_BIN_EDGES,
) -> ExperimentResult:
    """Histogram of correct-value probabilities at effort checkpoints.

    Aggregated over all configured datasets, as in the paper.
    """
    config = config if config is not None else ExperimentConfig()
    collected = {round(cp, 2): [] for cp in checkpoints}
    for dataset in config.datasets:
        for rng in spawn_rngs(config.seed, config.runs):
            database = build_database(dataset, config, rng)
            truth = database.truth_vector()
            process = build_process(database, "info", config, rng)
            process.initialize()
            _collect(collected, 0.0, database, truth)
            total = database.num_claims
            remaining = sorted(cp for cp in checkpoints if cp > 0)
            for checkpoint in remaining:
                target_labels = int(round(checkpoint * total))
                while (
                    database.num_labelled < target_labels
                    and database.unlabelled_indices.size > 0
                ):
                    process.step()
                _collect(collected, checkpoint, database, truth)

    result = ExperimentResult(
        name="fig4_probability_histogram",
        title="Fig. 4 — Probabilities of correct credibility values",
        headers=["probability_bin"]
        + [f"effort_{int(cp * 100)}%" for cp in checkpoints],
        notes=(
            "cells are frequencies (%); expected shape: mass shifts to "
            "higher bins as effort grows"
        ),
    )
    histograms = {}
    for checkpoint, values in collected.items():
        values = np.asarray(values)
        counts = np.zeros(len(bin_edges))
        for value in values:
            for index, edge in enumerate(bin_edges):
                if value <= edge + 1e-9:
                    counts[index] += 1
                    break
        total = counts.sum()
        histograms[checkpoint] = 100.0 * counts / total if total else counts
    lower = 0.0
    for index, edge in enumerate(bin_edges):
        row = [f"({lower:.1f},{edge:.1f}]"]
        for checkpoint in checkpoints:
            row.append(float(histograms[round(checkpoint, 2)][index]))
        result.add_row(*row)
        lower = edge
    return result


def _collect(collected, checkpoint, database, truth) -> None:
    """Record P(correct value) of every claim at a checkpoint."""
    probabilities = np.asarray(database.probabilities)
    correct = np.where(truth == 1, probabilities, 1.0 - probabilities)
    collected[round(checkpoint, 2)].extend(float(v) for v in correct)
