"""Experiment drivers — one per table/figure of the paper's §8.

Every driver exposes ``run(config: ExperimentConfig | None = None, ...)``
returning an :class:`~repro.experiments.reporting.ExperimentResult` whose
rows mirror the corresponding paper artifact; the benchmark suite under
``benchmarks/`` executes and prints them.
"""

from repro.experiments import (
    fig2_runtime,
    fig3_time_vs_effort,
    fig4_probability_histogram,
    fig5_uncertainty_precision,
    fig6_guidance,
    fig7_erroneous_input,
    fig8_skipping,
    fig9_early_termination,
    fig10_static_batch,
    fig11_dynamic_batch,
    stream_update_time,
    table1_mistake_detection,
    table2_stream_order,
    table3_deployment,
)
from repro.experiments.reporting import ExperimentResult, series_at_grid
from repro.experiments.runner import (
    DATASETS,
    DEFAULT_SCALES,
    ExperimentConfig,
    build_database,
    build_process,
    run_to_precision,
)

#: All experiment modules keyed by their paper artifact.
EXPERIMENTS = {
    "fig2": fig2_runtime,
    "fig3": fig3_time_vs_effort,
    "fig4": fig4_probability_histogram,
    "fig5": fig5_uncertainty_precision,
    "fig6": fig6_guidance,
    "fig7": fig7_erroneous_input,
    "fig8": fig8_skipping,
    "fig9": fig9_early_termination,
    "fig10": fig10_static_batch,
    "fig11": fig11_dynamic_batch,
    "stream_time": stream_update_time,
    "table1": table1_mistake_detection,
    "table2": table2_stream_order,
    "table3": table3_deployment,
}

__all__ = [
    "DATASETS",
    "DEFAULT_SCALES",
    "EXPERIMENTS",
    "ExperimentConfig",
    "ExperimentResult",
    "build_database",
    "build_process",
    "run_to_precision",
    "series_at_grid",
]
