"""Ablation studies of the design choices called out in DESIGN.md.

Four ablations isolate the contribution of individual mechanisms:

* **coupling** — the indirect (source-consistency) relation of the CRF
  on/off: without it the model degenerates to independent per-claim
  logistic regression and user input stops propagating.
* **aggregation** — the claim-evidence aggregation mode (sum / mean /
  sqrt) of the clique featuriser.
* **warm start** — persistence of the Gibbs chain and weights across
  validation iterations (the "view maintenance" of iCRF, §3.2) versus
  cold restarts.
* **batch selection** — greedy submodular top-k versus the exhaustive
  optimum of Eq. 28 (utility ratio and wall-clock cost).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro._legacy import suppress_legacy_warnings
from repro.crf.partition import ComponentIndex
from repro.effort.batching import (
    exhaustive_topk_selection,
    greedy_topk_selection,
)
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import ExperimentConfig, build_database
from repro.guidance.gain import GainConfig, GainEstimator
from repro.guidance.strategies import make_strategy
from repro.inference.icrf import ICrf
from repro.utils.rng import derive_rng, ensure_rng, spawn_rngs
from repro.validation.oracle import SimulatedUser
from repro.validation.process import ValidationProcess


def coupling_ablation(
    config: Optional[ExperimentConfig] = None,
    dataset: str = "snopes",
    effort_fraction: float = 0.3,
) -> ExperimentResult:
    """Precision at fixed effort with the indirect relation on and off."""
    config = config if config is not None else ExperimentConfig()
    result = ExperimentResult(
        name="ablation_coupling",
        title="Ablation — source-consistency coupling on/off",
        headers=["dataset", "coupling", "initial_precision", "precision",
                 "propagation"],
        notes=(
            "expected shape: coupling propagates user input (the "
            "'propagation' column: mean |dP| of unlabelled claims per "
            "validation) and improves precision at equal effort"
        ),
    )
    for enabled in (True, False):
        initials, finals, propagations = [], [], []
        for seed in spawn_rngs(config.seed, config.runs):
            rng = ensure_rng(seed)
            database = build_database(dataset, config, rng)
            with suppress_legacy_warnings():
                icrf = ICrf(
                    database,
                    coupling_enabled=enabled,
                    em_iterations=config.em_iterations,
                    num_samples=config.gibbs_samples,
                    seed=derive_rng(rng, 0),
                )
                process = ValidationProcess(
                    database,
                    strategy=make_strategy("hybrid"),
                    user=SimulatedUser(seed=derive_rng(rng, 1)),
                    icrf=icrf,
                    candidate_limit=config.candidate_limit,
                    seed=derive_rng(rng, 2),
                )
            process.initialize()
            initials.append(process.current_precision() or 0.0)
            budget = int(round(effort_fraction * database.num_claims))
            for _ in range(budget):
                if database.unlabelled_indices.size == 0:
                    break
                unlabelled = database.unlabelled_indices
                before = np.asarray(database.probabilities)[unlabelled].copy()
                record = process.step()
                still = np.asarray(
                    [c for c in unlabelled if c not in record.claim_indices],
                    dtype=np.intp,
                )
                if still.size:
                    keep = np.isin(unlabelled, still)
                    after = np.asarray(database.probabilities)[still]
                    propagations.append(
                        float(np.mean(np.abs(after - before[keep])))
                    )
            finals.append(process.current_precision() or 0.0)
        result.add_row(
            dataset,
            "on" if enabled else "off",
            float(np.mean(initials)),
            float(np.mean(finals)),
            float(np.mean(propagations)) if propagations else 0.0,
        )
    return result


def aggregation_ablation(
    config: Optional[ExperimentConfig] = None,
    dataset: str = "snopes",
    effort_fraction: float = 0.3,
) -> ExperimentResult:
    """Precision at fixed effort per claim-evidence aggregation mode."""
    config = config if config is not None else ExperimentConfig()
    result = ExperimentResult(
        name="ablation_aggregation",
        title="Ablation — claim-evidence aggregation mode",
        headers=["dataset", "aggregation", "precision"],
        notes="sum saturates on well-covered claims; sqrt is the default",
    )
    for mode in ("sum", "mean", "sqrt"):
        finals = []
        for seed in spawn_rngs(config.seed, config.runs):
            rng = ensure_rng(seed)
            database = build_database(dataset, config, rng)
            with suppress_legacy_warnings():
                icrf = ICrf(
                    database,
                    aggregation=mode,
                    em_iterations=config.em_iterations,
                    num_samples=config.gibbs_samples,
                    seed=derive_rng(rng, 0),
                )
                process = ValidationProcess(
                    database,
                    strategy=make_strategy("info"),
                    user=SimulatedUser(seed=derive_rng(rng, 1)),
                    icrf=icrf,
                    candidate_limit=config.candidate_limit,
                    seed=derive_rng(rng, 2),
                )
            process.initialize()
            budget = int(round(effort_fraction * database.num_claims))
            for _ in range(budget):
                if database.unlabelled_indices.size == 0:
                    break
                process.step()
            finals.append(process.current_precision() or 0.0)
        result.add_row(dataset, mode, float(np.mean(finals)))
    return result


def warm_start_ablation(
    config: Optional[ExperimentConfig] = None,
    dataset: str = "wiki",
    iterations: int = 10,
) -> ExperimentResult:
    """Per-iteration inference time and marginal churn warm vs. cold.

    The cold variant resets the Gibbs chain before every inference call,
    discarding the view-maintenance state of iCRF.
    """
    config = config if config is not None else ExperimentConfig()
    result = ExperimentResult(
        name="ablation_warm_start",
        title="Ablation — warm vs. cold Gibbs chains (iCRF view maintenance)",
        headers=["dataset", "chain", "avg_infer_seconds", "avg_marginal_delta"],
        notes="warm chains re-converge faster after a single new label",
    )
    for warm in (True, False):
        times, deltas = [], []
        for seed in spawn_rngs(config.seed, config.runs):
            rng = ensure_rng(seed)
            database = build_database(dataset, config, rng)
            truth = database.truth_vector()
            with suppress_legacy_warnings():
                icrf = ICrf(
                    database,
                    em_iterations=config.em_iterations,
                    num_samples=config.gibbs_samples,
                    seed=derive_rng(rng, 0),
                )
            icrf.infer()
            order = derive_rng(rng, 1).permutation(database.num_claims)
            for claim in order[:iterations]:
                database.label(int(claim), int(truth[claim]))
                if not warm:
                    icrf.reset_chain()
                started = time.perf_counter()
                inference = icrf.infer()
                times.append(time.perf_counter() - started)
                deltas.append(inference.marginal_deltas[-1])
        result.add_row(
            dataset,
            "warm" if warm else "cold",
            float(np.mean(times)),
            float(np.mean(deltas)),
        )
    return result


def batch_selection_ablation(
    config: Optional[ExperimentConfig] = None,
    dataset: str = "wiki",
    k: int = 3,
    candidate_limit: int = 10,
) -> ExperimentResult:
    """Greedy top-k versus the exhaustive optimum of Eq. 28."""
    config = config if config is not None else ExperimentConfig()
    result = ExperimentResult(
        name="ablation_batch_selection",
        title="Ablation — greedy vs. exhaustive batch selection",
        headers=["dataset", "selector", "utility", "seconds"],
        notes=(
            "greedy carries a (1 - 1/e) guarantee; in practice it is "
            "near-optimal at a fraction of the cost"
        ),
    )
    rng = ensure_rng(config.seed)
    database = build_database(dataset, config, rng)
    with suppress_legacy_warnings():
        icrf = ICrf(
            database,
            em_iterations=config.em_iterations,
            num_samples=config.gibbs_samples,
            seed=derive_rng(rng, 0),
        )
    # A single E-step without weight updates: claims stay genuinely
    # uncertain, so the information gains the selectors trade off are
    # non-degenerate (after full EM convergence most gains vanish and
    # every selector ties at zero utility).
    icrf.infer(em_iterations=1, update_weights=False)
    gains = GainEstimator(
        icrf.model,
        ComponentIndex(database),
        config=GainConfig(),
        seed=derive_rng(rng, 1),
    )
    started = time.perf_counter()
    greedy = greedy_topk_selection(
        database, gains, k=k, candidate_limit=candidate_limit
    )
    greedy_seconds = time.perf_counter() - started
    started = time.perf_counter()
    optimum = exhaustive_topk_selection(
        database, gains, k=k, candidate_limit=candidate_limit
    )
    optimum_seconds = time.perf_counter() - started
    result.add_row(dataset, "greedy", greedy.utility, greedy_seconds)
    result.add_row(dataset, "exhaustive", optimum.utility, optimum_seconds)
    return result
