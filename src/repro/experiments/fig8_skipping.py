"""Fig. 8 — effects of missing user input (§8.5).

A user may skip a claim with probability ``p_m``, in which case the
process validates the next-best candidate.  The figure reports *saved
effort*: how much effort guided validation saves relative to the random
baseline when reaching a precision target, under skipping.  Expected
shape: savings of up to ~30% that shrink when skipping strikes early
(low precision targets) because the second-best candidate yields worse
inference.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import (
    ExperimentConfig,
    build_database,
    build_process,
)
from repro.utils.rng import derive_rng, ensure_rng, spawn_rngs
from repro.validation.goals import TruePrecisionGoal
from repro.validation.oracle import SimulatedUser

#: Skip probabilities of the figure's x-axis.
DEFAULT_SKIP_PROBABILITIES = (0.1, 0.25, 0.5)
#: Precision targets of the figure's series.
DEFAULT_TARGETS = (0.7, 0.8, 0.9)


def run(
    config: Optional[ExperimentConfig] = None,
    skip_probabilities: Sequence[float] = DEFAULT_SKIP_PROBABILITIES,
    targets: Sequence[float] = DEFAULT_TARGETS,
) -> ExperimentResult:
    """Saved effort (%) vs. skipping probability, per precision target."""
    config = config if config is not None else ExperimentConfig()
    result = ExperimentResult(
        name="fig8_skipping",
        title="Fig. 8 — Saved effort (%) under skipping",
        headers=["dataset", "skip_pm"]
        + [f"saved@prec={t}" for t in targets],
        notes=(
            "saved effort of hybrid guidance relative to random selection; "
            "expected shape: positive savings, reduced at low precision "
            "targets when skipping strikes early"
        ),
    )
    for dataset in config.datasets:
        baseline = _mean_efforts(dataset, "random", 0.0, targets, config)
        for pm in skip_probabilities:
            guided = _mean_efforts(dataset, "hybrid", pm, targets, config)
            row = [dataset, pm]
            for target in targets:
                base = baseline[target]
                ours = guided[target]
                saved = 100.0 * (base - ours) / base if base > 0 else 0.0
                row.append(float(saved))
            result.add_row(*row)
    return result


def _mean_efforts(
    dataset: str,
    strategy: str,
    skip_probability: float,
    targets: Sequence[float],
    config: ExperimentConfig,
):
    """Mean effort fraction needed to reach each precision target."""
    sums = {t: [] for t in targets}
    for seed in spawn_rngs(config.seed, config.runs):
        rng = ensure_rng(seed)
        database = build_database(dataset, config, rng)
        user = SimulatedUser(
            skip_probability=skip_probability, seed=derive_rng(rng, 1)
        )
        process = build_process(
            database,
            strategy,
            config,
            derive_rng(rng, 2),
            goal=TruePrecisionGoal(max(targets)),
            user=user,
        )
        trace = process.run()
        for target in targets:
            reached = trace.effort_to_reach(target)
            sums[target].append(reached if reached is not None else 1.0)
    return {t: float(np.mean(v)) for t, v in sums.items()}
