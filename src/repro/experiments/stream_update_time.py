"""§8.8 — model update time per streaming arrival.

The paper reports average per-arrival update times of Alg. 2 (0.34s /
0.61s / 1.22s for wiki / health / snopes on its hardware).  We replay each
corpus replica as a stream and measure the wall-clock cost of
:meth:`~repro.streaming.process.StreamingFactChecker.observe`.  Expected
shape: update time grows with corpus size and stays in the same order of
magnitude as the validation-iteration response time (Prop. 2 vs. Prop. 3).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._legacy import suppress_legacy_warnings
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import ExperimentConfig, build_database
from repro.streaming.process import StreamingFactChecker
from repro.streaming.stream import stream_from_database
from repro.utils.rng import ensure_rng


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Average streaming update time per dataset."""
    config = config if config is not None else ExperimentConfig()
    result = ExperimentResult(
        name="stream_update_time",
        title="§8.8 — Streaming update time per arrival",
        headers=[
            "dataset",
            "arrivals",
            "avg_seconds",
            "avg_ingest",
            "avg_update",
            "max_seconds",
        ],
        notes="expected shape: update time grows with dataset size; "
        "avg_seconds = avg_ingest (structure growth) + avg_update "
        "(online EM)",
    )
    for dataset in config.datasets:
        rng = ensure_rng(config.seed)
        database = build_database(dataset, config, rng)
        with suppress_legacy_warnings():
            checker = StreamingFactChecker(seed=rng)
        times, ingests, updates = [], [], []
        for arrival in stream_from_database(database):
            update = checker.observe(arrival)
            times.append(update.elapsed_seconds)
            ingests.append(update.ingest_seconds)
            updates.append(update.update_seconds)
        result.add_row(
            dataset,
            len(times),
            float(np.mean(times)) if times else 0.0,
            float(np.mean(ingests)) if ingests else 0.0,
            float(np.mean(updates)) if updates else 0.0,
            float(np.max(times)) if times else 0.0,
        )
    return result
