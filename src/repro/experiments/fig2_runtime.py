"""Fig. 2 — per-iteration response time across datasets and variants (§8.2).

Three implementation variants of claim selection + inference are compared:

* ``origin`` — Gibbs-based hypothetical inference over the whole graph
  with exact (enumeration-based) entropy where feasible;
* ``scalable`` — the linear-time entropy approximation of §4.1 (Eq. 13);
* ``parallel+partition`` — additionally the optimisations of §5.1:
  component-restricted inference and parallel candidate evaluation.

Expected shape (paper): response time grows with dataset size and drops
sharply across the variants, with ``parallel+partition`` staying below
half a second.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import ExperimentConfig, build_database, build_process
from repro.guidance.gain import GainConfig
from repro.utils.rng import spawn_rngs

#: The three measured variants and their gain configurations.
VARIANTS = {
    "origin": GainConfig(
        inference_mode="gibbs", entropy_method="exact", localize=False
    ),
    "scalable": GainConfig(
        inference_mode="gibbs", entropy_method="approx", localize=False
    ),
    "parallel+partition": GainConfig(
        inference_mode="meanfield",
        entropy_method="approx",
        localize=True,
        parallel=True,
    ),
}


def run(
    config: Optional[ExperimentConfig] = None, iterations: int = 8
) -> ExperimentResult:
    """Measure mean response time per variant and dataset.

    Args:
        config: Experiment configuration (defaults apply when omitted).
        iterations: Validation iterations measured per run.
    """
    config = config if config is not None else ExperimentConfig()
    result = ExperimentResult(
        name="fig2_runtime",
        title="Fig. 2 — Avg. response time (s) per validation iteration",
        headers=["dataset", "variant", "avg_seconds", "iterations"],
        notes=(
            "expected shape: times increase with dataset size and decrease "
            "origin -> scalable -> parallel+partition"
        ),
    )
    for dataset in config.datasets:
        for variant, gain_config in VARIANTS.items():
            times = []
            for rng in spawn_rngs(config.seed, config.runs):
                database = build_database(dataset, config, rng)
                process = build_process(
                    database,
                    "hybrid",
                    config,
                    rng,
                    gain_config=gain_config,
                )
                process.initialize()
                steps = min(iterations, database.num_claims - 1)
                for _ in range(steps):
                    record = process.step()
                    times.append(record.response_seconds)
            result.add_row(dataset, variant, float(np.mean(times)), len(times))
    return result
