"""Table 3 — real-world deployment: experts vs. crowd workers (§8.9).

50 claims per dataset are validated by a simulated expert panel and by
crowd workers with redundant HITs whose answers are aggregated with the
reliability-aware Dawid–Skene consensus.  Expected shape (paper): experts
are more accurate but slower; both populations profit from supporting
information; the healthcare domain costs experts the most time.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.crowd.deployment import run_deployment
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import ExperimentConfig, build_database
from repro.utils.rng import derive_rng, ensure_rng, spawn_rngs


def run(
    config: Optional[ExperimentConfig] = None,
    num_claims: int = 50,
    aggregator: str = "dawid_skene",
) -> ExperimentResult:
    """Mean validation time and accuracy per dataset and population."""
    config = config if config is not None else ExperimentConfig()
    result = ExperimentResult(
        name="table3_deployment",
        title="Table 3 — Avg. time and accuracy of experts and crowd workers",
        headers=[
            "dataset",
            "expert_time_s",
            "crowd_time_s",
            "expert_acc",
            "crowd_acc",
        ],
        notes=(
            "expected shape: experts slower but more accurate; healthcare "
            "claims cost experts the most time"
        ),
    )
    for dataset in config.datasets:
        expert_times, crowd_times, expert_accs, crowd_accs = [], [], [], []
        for seed in spawn_rngs(config.seed, config.runs):
            rng = ensure_rng(seed)
            database = build_database(dataset, config, rng)
            outcome = run_deployment(
                database,
                dataset,
                num_claims=num_claims,
                aggregator=aggregator,
                seed=derive_rng(rng, 1),
            )
            expert_times.append(outcome["expert"].mean_seconds)
            crowd_times.append(outcome["crowd"].mean_seconds)
            expert_accs.append(outcome["expert"].accuracy)
            crowd_accs.append(outcome["crowd"].accuracy)
        result.add_row(
            dataset,
            float(np.mean(expert_times)),
            float(np.mean(crowd_times)),
            float(np.mean(expert_accs)),
            float(np.mean(crowd_accs)),
        )
    return result
