"""Fig. 7 — guidance effectiveness under erroneous user input (§8.5).

Identical protocol to Fig. 6, but the simulated user flips its input with
probability p and the confirmation check (§5.2) repairs detected mistakes;
every repair adds to the invested effort ("label+repair effort").
Expected shape: all curves need more effort than in Fig. 6, but the
guided strategies — hybrid in particular — retain their advantage over
the baselines.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.experiments.reporting import ExperimentResult, series_at_grid
from repro.experiments.runner import (
    ExperimentConfig,
    build_database,
    build_process,
)
from repro.utils.rng import derive_rng, ensure_rng, spawn_rngs
from repro.validation.goals import TruePrecisionGoal
from repro.validation.oracle import SimulatedUser
from repro.validation.robustness import ConfirmationChecker

STRATEGY_NAMES = ("random", "uncertainty", "info", "source", "hybrid")
DEFAULT_GRID = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def run(
    config: Optional[ExperimentConfig] = None,
    strategies: Sequence[str] = STRATEGY_NAMES,
    error_probability: float = 0.2,
    grid: Sequence[float] = DEFAULT_GRID,
    target_precision: float = 0.9,
) -> ExperimentResult:
    """Precision vs. label+repair effort with an error-prone user."""
    config = config if config is not None else ExperimentConfig()
    result = ExperimentResult(
        name="fig7_erroneous_input",
        title=(
            "Fig. 7 — Precision vs. label+repair effort "
            f"(user error p={error_probability})"
        ),
        headers=["dataset", "strategy"]
        + [f"P@{int(g * 100)}%" for g in grid]
        + [f"effort_to_{target_precision}"],
        notes=(
            "expected shape: more effort than Fig. 6 overall, guided "
            "strategies still dominate the baselines"
        ),
    )
    for dataset in config.datasets:
        for strategy in strategies:
            curves = []
            efforts_to_target = []
            for seed in spawn_rngs(config.seed, config.runs):
                rng = ensure_rng(seed)
                database = build_database(dataset, config, rng)
                interval = max(1, database.num_claims // 100)
                user = SimulatedUser(
                    error_probability=error_probability,
                    seed=derive_rng(rng, 1),
                )
                process = build_process(
                    database,
                    strategy,
                    config,
                    derive_rng(rng, 2),
                    goal=TruePrecisionGoal(1.0),
                    user=user,
                    robustness=ConfirmationChecker(interval=interval),
                )
                trace = process.run()
                efforts = np.concatenate(
                    ([0.0], trace.efforts(include_repairs=True))
                )
                precisions = np.concatenate(
                    (
                        [trace.initial_precision or 0.0],
                        np.nan_to_num(trace.precisions(), nan=0.0),
                    )
                )
                curves.append(series_at_grid(list(efforts), list(precisions), grid))
                reached = trace.effort_to_reach(
                    target_precision, include_repairs=True
                )
                efforts_to_target.append(reached if reached is not None else 1.5)
            mean_curve = np.mean(np.asarray(curves), axis=0)
            result.add_row(
                dataset,
                strategy,
                *[float(v) for v in mean_curve],
                float(np.mean(efforts_to_target)),
            )
    return result
