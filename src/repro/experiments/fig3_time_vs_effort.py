"""Fig. 3 — response time as validation progresses (§8.2).

The paper bins per-iteration response times of the largest dataset
(snopes) by relative user effort and observes a peak between 40% and 60%:
at those effort levels user input "enables the most conclusions", i.e.
inference moves the most probability mass.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import ExperimentConfig, build_database, build_process
from repro.utils.rng import spawn_rngs

#: Effort bins of the figure's x-axis (fractions of |C|).
DEFAULT_BINS = (0.2, 0.4, 0.6, 0.8, 1.0)


def run(
    config: Optional[ExperimentConfig] = None,
    dataset: str = "snopes",
    bins: Sequence[float] = DEFAULT_BINS,
) -> ExperimentResult:
    """Average response time per effort bin on one dataset.

    Args:
        config: Experiment configuration.
        dataset: Corpus to run (the paper uses its largest, snopes).
        bins: Upper edges of the effort bins.
    """
    config = config if config is not None else ExperimentConfig()
    binned = [[] for _ in bins]
    for rng in spawn_rngs(config.seed, config.runs):
        database = build_database(dataset, config, rng)
        process = build_process(database, "hybrid", config, rng)
        process.initialize()
        total = database.num_claims
        while database.unlabelled_indices.size > 0:
            record = process.step()
            effort = database.num_labelled / total
            for index, edge in enumerate(bins):
                if effort <= edge + 1e-9:
                    binned[index].append(record.response_seconds)
                    break

    result = ExperimentResult(
        name="fig3_time_vs_effort",
        title=f"Fig. 3 — Response time vs. label effort ({dataset})",
        headers=["effort_bin", "avg_seconds", "samples"],
        notes="expected shape: response time peaks at mid-range effort",
    )
    for edge, samples in zip(bins, binned):
        mean = float(np.mean(samples)) if samples else 0.0
        result.add_row(f"<={int(edge * 100)}%", mean, len(samples))
    return result
