"""Simulated human validators for the deployment study (§8.9).

The paper deploys validation tasks to three senior computer scientists
(experts) and FigureEight crowd workers, reporting per-dataset validation
time and accuracy (Table 3).  We simulate both populations: a validator
has a per-claim *accuracy* (probability of answering with the ground
truth) and a log-normal *response-time* distribution, calibrated per
dataset so that experts are slower but more accurate than crowd workers —
the trade-off Table 3 demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.entities import Claim
from repro.errors import ValidationProcessError
from repro.utils.checks import check_positive, check_probability
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class ValidatorProfile:
    """Behavioural parameters of one validator population.

    Attributes:
        name: Population label (``"expert"`` / ``"crowd"``).
        accuracy: Probability of answering with the ground truth.
        median_seconds: Median per-claim validation time.
        time_sigma: Log-normal shape of the time distribution.
    """

    name: str
    accuracy: float
    median_seconds: float
    time_sigma: float = 0.5

    def __post_init__(self) -> None:
        check_probability(self.accuracy, "accuracy")
        check_positive(self.median_seconds, "median_seconds")
        check_positive(self.time_sigma, "time_sigma")


class SimulatedValidator:
    """A single validator drawn from a :class:`ValidatorProfile`.

    Individual accuracy and speed vary around the profile values so that a
    crowd is heterogeneous — a property the Dawid–Skene aggregation of
    :mod:`repro.crowd.aggregation` exploits.
    """

    def __init__(
        self,
        profile: ValidatorProfile,
        worker_id: str,
        seed: RandomState = None,
    ) -> None:
        if not worker_id:
            raise ValidationProcessError("worker_id must be non-empty")
        self._rng = ensure_rng(seed)
        self.profile = profile
        self.worker_id = worker_id
        jitter = float(np.clip(self._rng.normal(0.0, 0.04), -0.12, 0.12))
        self.accuracy = float(np.clip(profile.accuracy + jitter, 0.5, 1.0))
        self.speed_factor = float(self._rng.lognormal(0.0, 0.25))

    def answer(self, claim: Claim) -> int:
        """Validate one claim; correct with this worker's accuracy."""
        if claim.truth is None:
            raise ValidationProcessError(
                f"claim {claim.claim_id!r} has no ground truth to answer from"
            )
        correct = 1 if claim.truth else 0
        if self._rng.random() < self.accuracy:
            return correct
        return 1 - correct

    def response_seconds(self) -> float:
        """Draw a per-claim validation time."""
        mu = np.log(self.profile.median_seconds * self.speed_factor)
        return float(self._rng.lognormal(mu, self.profile.time_sigma))


#: Per-dataset expert profiles, calibrated to the magnitudes of Table 3
#: (healthcare claims take experts much longer than Wikipedia hoaxes).
EXPERT_PROFILES = {
    "wiki": ValidatorProfile("expert", accuracy=0.99, median_seconds=268.0),
    "health": ValidatorProfile("expert", accuracy=0.94, median_seconds=1579.0),
    "snopes": ValidatorProfile("expert", accuracy=0.96, median_seconds=559.0),
}

#: Per-dataset crowd profiles (faster, less accurate).
CROWD_PROFILES = {
    "wiki": ValidatorProfile("crowd", accuracy=0.80, median_seconds=186.0),
    "health": ValidatorProfile("crowd", accuracy=0.75, median_seconds=561.0),
    "snopes": ValidatorProfile("crowd", accuracy=0.77, median_seconds=336.0),
}
