"""Answer aggregation for crowdsourced validation (§8.9).

The paper computes "the consensus of the answers among crowd workers using
existing algorithms that include an evaluation of worker reliability
[33]".  Two aggregators are provided:

* :func:`majority_vote` — the baseline, ties broken towards non-credible.
* :class:`DawidSkeneBinary` — EM estimation of per-worker reliability
  jointly with the consensus labels (Dawid & Skene, 1979, specialised to
  binary tasks), the standard representative of reliability-aware
  aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.errors import ValidationProcessError

#: Answer matrix type: ``{task_id: {worker_id: 0/1}}``.
AnswerMatrix = Mapping[str, Mapping[str, int]]


def majority_vote(answers: AnswerMatrix) -> Dict[str, int]:
    """Per-task majority consensus; ties resolve to 0 (non-credible)."""
    consensus: Dict[str, int] = {}
    for task_id, votes in answers.items():
        if not votes:
            raise ValidationProcessError(f"task {task_id!r} has no answers")
        positive = sum(1 for v in votes.values() if v == 1)
        consensus[task_id] = 1 if positive * 2 > len(votes) else 0
    return consensus


@dataclass
class DawidSkeneResult:
    """Outcome of Dawid–Skene aggregation.

    Attributes:
        consensus: Hard consensus label per task.
        posteriors: P(task label = 1) per task.
        worker_accuracy: Estimated reliability per worker.
        iterations: EM iterations performed.
    """

    consensus: Dict[str, int]
    posteriors: Dict[str, float]
    worker_accuracy: Dict[str, float]
    iterations: int


class DawidSkeneBinary:
    """Binary Dawid–Skene EM with symmetric worker confusion.

    Each worker ``w`` has one reliability parameter ``a_w`` (probability
    of reporting the true label); the class prior is learned.  EM
    alternates posterior inference over task labels with reliability
    re-estimation until the posteriors stabilise.

    Args:
        max_iterations: EM iteration cap.
        tolerance: Mean absolute posterior change for convergence.
        reliability_floor: Lower clip for estimated reliabilities,
            preventing degenerate "always wrong" workers from flipping
            labels with certainty.
    """

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        reliability_floor: float = 0.05,
    ) -> None:
        if max_iterations < 1:
            raise ValidationProcessError("max_iterations must be at least 1")
        if not 0.0 <= reliability_floor < 0.5:
            raise ValidationProcessError(
                "reliability_floor must lie in [0, 0.5)"
            )
        self._max_iterations = max_iterations
        self._tolerance = tolerance
        self._floor = reliability_floor

    def aggregate(self, answers: AnswerMatrix) -> DawidSkeneResult:
        """Run EM over the answer matrix."""
        tasks, workers, matrix, mask = _dense_answers(answers)
        num_tasks, num_workers = matrix.shape

        # Initialise posteriors from majority vote fractions.
        with np.errstate(invalid="ignore"):
            posteriors = np.where(
                mask.sum(axis=1) > 0,
                (matrix * mask).sum(axis=1) / np.maximum(mask.sum(axis=1), 1),
                0.5,
            )
        accuracy = np.full(num_workers, 0.8)
        prior = 0.5
        iterations = 0
        for iterations in range(1, self._max_iterations + 1):
            # E-step: task-label posteriors under current reliabilities.
            log_pos = np.log(max(prior, 1e-12)) * np.ones(num_tasks)
            log_neg = np.log(max(1.0 - prior, 1e-12)) * np.ones(num_tasks)
            agree = np.clip(accuracy, self._floor, 1.0 - self._floor)
            log_agree = np.log(agree)
            log_disagree = np.log(1.0 - agree)
            for w in range(num_workers):
                observed = mask[:, w]
                votes = matrix[:, w]
                log_pos[observed] += np.where(
                    votes[observed] == 1, log_agree[w], log_disagree[w]
                )
                log_neg[observed] += np.where(
                    votes[observed] == 0, log_agree[w], log_disagree[w]
                )
            peak = np.maximum(log_pos, log_neg)
            pos = np.exp(log_pos - peak)
            neg = np.exp(log_neg - peak)
            new_posteriors = pos / (pos + neg)

            # M-step: reliabilities and class prior.
            for w in range(num_workers):
                observed = mask[:, w]
                if not observed.any():
                    continue
                votes = matrix[observed, w]
                p = new_posteriors[observed]
                expected_agree = np.where(votes == 1, p, 1.0 - p).sum()
                accuracy[w] = expected_agree / observed.sum()
            prior = float(new_posteriors.mean())

            delta = float(np.mean(np.abs(new_posteriors - posteriors)))
            posteriors = new_posteriors
            if delta < self._tolerance:
                break

        consensus = {
            task: int(posteriors[i] >= 0.5) for i, task in enumerate(tasks)
        }
        return DawidSkeneResult(
            consensus=consensus,
            posteriors={task: float(posteriors[i]) for i, task in enumerate(tasks)},
            worker_accuracy={
                worker: float(accuracy[w]) for w, worker in enumerate(workers)
            },
            iterations=iterations,
        )


def _dense_answers(
    answers: AnswerMatrix,
) -> Tuple[List[str], List[str], np.ndarray, np.ndarray]:
    """Dense (tasks × workers) vote and observation matrices."""
    if not answers:
        raise ValidationProcessError("answer matrix is empty")
    tasks = sorted(answers)
    workers = sorted({w for votes in answers.values() for w in votes})
    if not workers:
        raise ValidationProcessError("answer matrix has no workers")
    worker_index = {worker: idx for idx, worker in enumerate(workers)}
    matrix = np.zeros((len(tasks), len(workers)), dtype=np.int8)
    mask = np.zeros((len(tasks), len(workers)), dtype=bool)
    for t, task in enumerate(tasks):
        for worker, vote in answers[task].items():
            if vote not in (0, 1):
                raise ValidationProcessError(
                    f"vote for task {task!r} by {worker!r} must be 0/1, "
                    f"got {vote!r}"
                )
            w = worker_index[worker]
            matrix[t, w] = vote
            mask[t, w] = True
    return tasks, workers, matrix, mask
