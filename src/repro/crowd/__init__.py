"""Crowdsourcing substrate (§8.9): validators, consensus, deployment."""

from repro.crowd.aggregation import (
    DawidSkeneBinary,
    DawidSkeneResult,
    majority_vote,
)
from repro.crowd.deployment import DeploymentOutcome, run_deployment
from repro.crowd.workers import (
    CROWD_PROFILES,
    EXPERT_PROFILES,
    SimulatedValidator,
    ValidatorProfile,
)

__all__ = [
    "CROWD_PROFILES",
    "DawidSkeneBinary",
    "DawidSkeneResult",
    "DeploymentOutcome",
    "EXPERT_PROFILES",
    "SimulatedValidator",
    "ValidatorProfile",
    "majority_vote",
    "run_deployment",
]
