"""Deployment simulation: experts vs. crowd workers on sampled claims (§8.9).

Reproduces the protocol of Table 3: 50 randomly selected claims per
dataset are validated (a) by a panel of expert validators and (b) by
crowd workers with redundant assignments whose answers are aggregated with
a reliability-aware consensus algorithm.  Reported per population: total
validation time and accuracy against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.crowd.aggregation import DawidSkeneBinary, majority_vote
from repro.crowd.workers import (
    CROWD_PROFILES,
    EXPERT_PROFILES,
    SimulatedValidator,
    ValidatorProfile,
)
from repro.data.database import FactDatabase
from repro.errors import ValidationProcessError
from repro.utils.rng import RandomState, derive_rng, ensure_rng


@dataclass
class DeploymentOutcome:
    """Per-population result of a deployment run (one Table 3 row pair).

    Attributes:
        population: ``"expert"`` or ``"crowd"``.
        mean_seconds: Mean per-claim validation time.
        accuracy: Consensus accuracy against ground truth.
        total_answers: Individual answers collected.
    """

    population: str
    mean_seconds: float
    accuracy: float
    total_answers: int


def run_deployment(
    database: FactDatabase,
    dataset_name: str,
    num_claims: int = 50,
    num_experts: int = 3,
    num_crowd_workers: int = 15,
    crowd_redundancy: int = 5,
    aggregator: str = "dawid_skene",
    seed: RandomState = None,
) -> Dict[str, DeploymentOutcome]:
    """Simulate the §8.9 deployment on a sampled claim set.

    Args:
        database: Fact database with ground truth.
        dataset_name: Key into the per-dataset validator profiles.
        num_claims: Claims sampled for validation (paper: 50).
        num_experts: Size of the expert panel (paper: 3).
        num_crowd_workers: Crowd pool size.
        crowd_redundancy: Workers assigned per claim (HIT redundancy).
        aggregator: ``"dawid_skene"`` or ``"majority"``.
        seed: Seed or generator.

    Returns:
        Mapping ``{"expert": ..., "crowd": ...}``.
    """
    if dataset_name not in EXPERT_PROFILES:
        known = ", ".join(sorted(EXPERT_PROFILES))
        raise ValidationProcessError(
            f"no validator profiles for dataset {dataset_name!r}; known: {known}"
        )
    rng = ensure_rng(seed)
    num_claims = min(num_claims, database.num_claims)
    sampled = rng.choice(database.num_claims, size=num_claims, replace=False)
    claims = [database.claims[int(i)] for i in sampled]
    truth = {claim.claim_id: int(bool(claim.truth)) for claim in claims}

    expert = _run_experts(
        claims, truth, EXPERT_PROFILES[dataset_name], num_experts,
        derive_rng(rng, 1),
    )
    crowd = _run_crowd(
        claims,
        truth,
        CROWD_PROFILES[dataset_name],
        num_crowd_workers,
        crowd_redundancy,
        aggregator,
        derive_rng(rng, 2),
    )
    return {"expert": expert, "crowd": crowd}


def _run_experts(
    claims: List,
    truth: Dict[str, int],
    profile: ValidatorProfile,
    num_experts: int,
    rng: np.random.Generator,
) -> DeploymentOutcome:
    """Experts split the claim set; each claim is validated once."""
    experts = [
        SimulatedValidator(profile, f"expert-{i}", seed=derive_rng(rng, i))
        for i in range(num_experts)
    ]
    seconds = []
    hits = 0
    for index, claim in enumerate(claims):
        expert = experts[index % len(experts)]
        answer = expert.answer(claim)
        seconds.append(expert.response_seconds())
        if answer == truth[claim.claim_id]:
            hits += 1
    return DeploymentOutcome(
        population="expert",
        mean_seconds=float(np.mean(seconds)),
        accuracy=hits / len(claims),
        total_answers=len(claims),
    )


def _run_crowd(
    claims: List,
    truth: Dict[str, int],
    profile: ValidatorProfile,
    num_workers: int,
    redundancy: int,
    aggregator: str,
    rng: np.random.Generator,
) -> DeploymentOutcome:
    """Crowd workers answer redundantly; consensus is aggregated."""
    if aggregator not in ("dawid_skene", "majority"):
        raise ValidationProcessError(
            f"aggregator must be 'dawid_skene' or 'majority', got {aggregator!r}"
        )
    workers = [
        SimulatedValidator(profile, f"worker-{i}", seed=derive_rng(rng, i))
        for i in range(num_workers)
    ]
    answers: Dict[str, Dict[str, int]] = {}
    seconds = []
    total_answers = 0
    for claim in claims:
        redundancy_here = min(redundancy, len(workers))
        chosen = rng.choice(len(workers), size=redundancy_here, replace=False)
        votes: Dict[str, int] = {}
        for worker_index in chosen:
            worker = workers[int(worker_index)]
            votes[worker.worker_id] = worker.answer(claim)
            seconds.append(worker.response_seconds())
            total_answers += 1
        answers[claim.claim_id] = votes

    if aggregator == "majority":
        consensus = majority_vote(answers)
    else:
        consensus = DawidSkeneBinary().aggregate(answers).consensus
    hits = sum(1 for cid, value in consensus.items() if value == truth[cid])
    return DeploymentOutcome(
        population="crowd",
        mean_seconds=float(np.mean(seconds)),
        accuracy=hits / len(claims),
        total_answers=total_answers,
    )
