"""repro — reproduction of "User Guidance for Efficient Fact Checking".

A framework for guiding users in the validation of candidate facts
extracted from Web sources (Nguyen Thanh Tam et al., PVLDB 2019).  The
public API follows the paper's structure:

* :mod:`repro.data` — the probabilistic fact database Q = <S, D, C, P>.
* :mod:`repro.datasets` — synthetic replicas of the evaluation corpora.
* :mod:`repro.crf` — the CRF substrate (potentials, Gibbs, entropy).
* :mod:`repro.inference` — iCRF incremental EM and the TRON optimiser.
* :mod:`repro.guidance` — claim-selection strategies (info/source/hybrid).
* :mod:`repro.validation` — the interactive validation process (Alg. 1).
* :mod:`repro.effort` — early termination and batch selection.
* :mod:`repro.streaming` — streaming fact checking (Alg. 2).
* :mod:`repro.crowd` — simulated expert/crowd validators and consensus.
* :mod:`repro.experiments` — drivers for every table/figure of §8.

Quickstart::

    from repro.datasets import load_dataset
    from repro.guidance import make_strategy
    from repro.validation import SimulatedUser, TruePrecisionGoal, ValidationProcess

    database = load_dataset("snopes", seed=7, scale=0.01)
    process = ValidationProcess(
        database,
        strategy=make_strategy("hybrid"),
        user=SimulatedUser(seed=7),
        goal=TruePrecisionGoal(0.9),
        seed=7,
    )
    trace = process.run()
    print(trace.stop_reason, trace.total_effort(), process.current_precision())
"""

from repro.data import Claim, ClaimLink, Document, FactDatabase, Grounding, Source, Stance
from repro.datasets import load_dataset
from repro.errors import ReproError
from repro.guidance import make_strategy
from repro.inference import ICrf
from repro.validation import (
    SimulatedUser,
    TruePrecisionGoal,
    ValidationProcess,
    ValidationTrace,
)

__version__ = "1.0.0"

__all__ = [
    "Claim",
    "ClaimLink",
    "Document",
    "FactDatabase",
    "Grounding",
    "ICrf",
    "ReproError",
    "SimulatedUser",
    "Source",
    "Stance",
    "TruePrecisionGoal",
    "ValidationProcess",
    "ValidationTrace",
    "__version__",
    "load_dataset",
    "make_strategy",
]
