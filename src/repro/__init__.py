"""repro — reproduction of "User Guidance for Efficient Fact Checking".

A framework for guiding users in the validation of candidate facts
extracted from Web sources (Nguyen Thanh Tam et al., PVLDB 2019).  The
recommended entry point is the declarative session API:

* :mod:`repro.api` — :class:`SessionSpec` configs (JSON-serialisable) and
  the :class:`FactCheckSession` façade unifying batch validation (Alg. 1)
  and streaming claim arrival (Alg. 2) behind one lifecycle with
  checkpoint/resume.
* :mod:`repro.service` — the multi-session service layer: a managed
  registry of sessions behind an HTTP API (``python -m repro serve``)
  with checkpoint-backed durability; see ``docs/SERVICE.md``.

The paper-structured subsystems remain importable for advanced use:

* :mod:`repro.data` — the probabilistic fact database Q = <S, D, C, P>.
* :mod:`repro.datasets` — synthetic replicas of the evaluation corpora.
* :mod:`repro.crf` — the CRF substrate (potentials, Gibbs, entropy).
* :mod:`repro.inference` — iCRF incremental EM and the TRON optimiser.
* :mod:`repro.guidance` — claim-selection strategies (info/source/hybrid).
* :mod:`repro.validation` — the interactive validation process (Alg. 1).
* :mod:`repro.effort` — early termination and batch selection.
* :mod:`repro.streaming` — streaming fact checking (Alg. 2).
* :mod:`repro.crowd` — simulated expert/crowd validators and consensus.
* :mod:`repro.experiments` — drivers for every table/figure of §8.

Quickstart::

    from repro import FactCheckSession, SessionSpec

    spec = SessionSpec(
        seed=7,
        dataset={"name": "snopes", "seed": 7, "scale": 0.01},
        effort={"goal": {"kind": "true_precision", "threshold": 0.9}},
    )
    with FactCheckSession(spec) as session:
        result = session.run()
    print(result.stop_reason, result.num_labelled, result.final_precision)

The pre-1.1 constructor surface (``ValidationProcess``, ``ICrf``,
``StreamingFactChecker`` with their keyword explosions) keeps working but
emits :class:`repro.LegacyAPIWarning`; see ``docs/API.md`` for the
migration table.
"""

from repro._legacy import LegacyAPIWarning
from repro.api import (
    DatasetSpec,
    EffortSpec,
    FactCheckSession,
    GoalSpec,
    GuidanceSpec,
    InferenceSpec,
    SessionResult,
    SessionSpec,
    StreamSpec,
    TerminationSpec,
    UserSpec,
)
from repro.data import Claim, ClaimLink, Document, FactDatabase, Grounding, Source, Stance
from repro.datasets import load_database, load_dataset, save_database
from repro.errors import ReproError, SessionError, SpecError
from repro.guidance import make_strategy
from repro.inference import ICrf
from repro.streaming import (
    ClaimArrival,
    StreamingFactChecker,
    arrival_from_dict,
    arrival_to_dict,
    stream_from_database,
)
from repro.validation import (
    SimulatedUser,
    TruePrecisionGoal,
    User,
    ValidationProcess,
    ValidationTrace,
)

__version__ = "1.2.0"

__all__ = [
    # Declarative session API (preferred surface).
    "DatasetSpec",
    "EffortSpec",
    "FactCheckSession",
    "GoalSpec",
    "GuidanceSpec",
    "InferenceSpec",
    "SessionResult",
    "SessionSpec",
    "StreamSpec",
    "TerminationSpec",
    "UserSpec",
    # Data model and corpora.
    "Claim",
    "ClaimLink",
    "ClaimArrival",
    "Document",
    "FactDatabase",
    "Grounding",
    "Source",
    "Stance",
    "arrival_from_dict",
    "arrival_to_dict",
    "load_database",
    "load_dataset",
    "save_database",
    "stream_from_database",
    # Users and errors.
    "LegacyAPIWarning",
    "ReproError",
    "SessionError",
    "SimulatedUser",
    "SpecError",
    "User",
    # Legacy (deprecated) constructor surface.
    "ICrf",
    "StreamingFactChecker",
    "TruePrecisionGoal",
    "ValidationProcess",
    "ValidationTrace",
    "make_strategy",
    "__version__",
]
