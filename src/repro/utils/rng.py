"""Deterministic random-number handling.

Every stochastic component in the framework (Gibbs sampling, roulette-wheel
strategy selection, dataset generation, simulated users) accepts either an
integer seed or a ready-made :class:`numpy.random.Generator`.  Centralising
the conversion here keeps experiments reproducible end-to-end: a single seed
passed to an experiment driver deterministically derives independent child
generators for each component.

This module is the *only* place allowed to touch the ``numpy.random``
module namespace (lint rule DET002) — everything else receives explicit
generators.  :func:`forbid_global_rng` enforces the same contract at
runtime and is enabled for the whole test suite in ``tests/conftest.py``.
"""

from __future__ import annotations

import contextlib
import random as _stdlib_random
from typing import Iterator, Union

import numpy as np

#: Accepted seed-like inputs throughout the library.
RandomState = Union[None, int, np.random.Generator]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a freshly seeded generator, an ``int`` a deterministic
    one, and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)  # repro-lint: disable=DET002


def derive_rng(rng: np.random.Generator, stream: int = 0) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    The child is seeded from the parent's bit stream, so two children derived
    with different ``stream`` indices are statistically independent while the
    whole tree remains a pure function of the root seed.
    """
    seed_seq = np.random.SeedSequence(  # repro-lint: disable=DET002
        entropy=int(rng.integers(0, 2**63 - 1)), spawn_key=(stream,)
    )
    return np.random.default_rng(seed_seq)  # repro-lint: disable=DET002


def draw_entropy(rng: np.random.Generator) -> int:
    """Consume one draw from ``rng`` and return it as raw entropy.

    Pairs with :func:`stream_rng`: drawing the entropy once and deriving
    every child stream from it makes the children pure functions of
    ``(entropy, key)`` — unlike :func:`derive_rng`, which consumes the
    parent per derivation and therefore ties each child to the *order*
    of derivations.  Parallel gain evaluation uses this to give every
    candidate a schedule-independent generator.
    """
    return int(rng.integers(0, 2**63 - 1))


def stream_rng(entropy: int, *key: int) -> np.random.Generator:
    """Independent generator for stream ``key`` of an entropy value.

    A pure function of its arguments: the same ``(entropy, key)`` yields
    the same bit stream no matter which thread, process, or evaluation
    order asks for it.  Key components must be non-negative.
    """
    seed_seq = np.random.SeedSequence(  # repro-lint: disable=DET002
        entropy=int(entropy), spawn_key=tuple(int(part) for part in key)
    )
    return np.random.default_rng(seed_seq)  # repro-lint: disable=DET002


def rng_state(rng: np.random.Generator) -> dict:
    """Serialise a generator's exact position in its bit stream.

    The returned dictionary is JSON-compatible (Python's ``json`` handles
    the arbitrary-precision integers of the PCG64 state) and restores the
    generator bit-for-bit through :func:`set_rng_state` — the mechanism
    the session checkpoints of :mod:`repro.api` use to make a resumed run
    reproduce the uninterrupted one exactly.
    """
    return rng.bit_generator.state


def set_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Reposition an existing generator to a :func:`rng_state` snapshot."""
    rng.bit_generator.state = state


def spawn_rngs(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators from a single seed."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = np.random.SeedSequence(seed if isinstance(seed, int) else None)  # repro-lint: disable=DET002
    return [np.random.default_rng(child) for child in root.spawn(count)]  # repro-lint: disable=DET002


#: Draw functions on the global RNGs that :func:`forbid_global_rng` traps.
#: Seeding/state functions (``random.seed``/``getstate``/``setstate``,
#: ``np.random.seed``) and generator constructors (``random.Random``,
#: ``np.random.default_rng``) stay untouched: test tooling (e.g.
#: hypothesis) legitimately reseeds the module-level state between
#: examples — only *draws* leak ambient entropy into results.
_FORBIDDEN_STDLIB = (
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "sample", "shuffle", "gauss", "normalvariate", "betavariate",
    "expovariate", "lognormvariate", "vonmisesvariate", "paretovariate",
    "weibullvariate", "triangular", "getrandbits", "randbytes",
)
_FORBIDDEN_NUMPY = (
    "random", "rand", "randn", "randint", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "normal", "uniform",
    "standard_normal", "binomial", "poisson", "beta", "gamma",
    "exponential",
)


class GlobalRngForbiddenError(AssertionError):
    """A global-RNG draw happened inside :func:`forbid_global_rng`."""


@contextlib.contextmanager
def forbid_global_rng() -> Iterator[None]:
    """Patch the global RNG draw functions to raise while active.

    The static DET rules (``python -m repro lint``) prove framework code
    never *mentions* the process-global generators; this guard catches
    the dynamic leftovers — a dependency drawing from ``np.random``, an
    exec'd snippet, a test helper — by making every draw raise
    :class:`GlobalRngForbiddenError`.  ``np.random.default_rng`` and
    explicit ``random.Random(...)`` instances keep working; the point is
    to forbid *ambient* entropy, not randomness itself.

    Re-entrant and restores the originals on exit.
    """

    def _raiser(owner: str, name: str):
        def _blocked(*_args, **_kwargs):
            raise GlobalRngForbiddenError(
                f"{owner}.{name}() draws from the process-global RNG; "
                f"thread a Generator from repro.utils.rng instead"
            )

        return _blocked

    saved: list[tuple[object, str, object]] = []
    for name in _FORBIDDEN_STDLIB:
        original = getattr(_stdlib_random, name, None)
        if callable(original):
            saved.append((_stdlib_random, name, original))
            setattr(_stdlib_random, name, _raiser("random", name))
    for name in _FORBIDDEN_NUMPY:
        original = getattr(np.random, name, None)
        if callable(original):
            saved.append((np.random, name, original))
            setattr(np.random, name, _raiser("np.random", name))
    try:
        yield
    finally:
        for owner, name, original in reversed(saved):
            setattr(owner, name, original)
