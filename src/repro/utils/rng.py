"""Deterministic random-number handling.

Every stochastic component in the framework (Gibbs sampling, roulette-wheel
strategy selection, dataset generation, simulated users) accepts either an
integer seed or a ready-made :class:`numpy.random.Generator`.  Centralising
the conversion here keeps experiments reproducible end-to-end: a single seed
passed to an experiment driver deterministically derives independent child
generators for each component.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

#: Accepted seed-like inputs throughout the library.
RandomState = Union[None, int, np.random.Generator]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a freshly seeded generator, an ``int`` a deterministic
    one, and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, stream: int = 0) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    The child is seeded from the parent's bit stream, so two children derived
    with different ``stream`` indices are statistically independent while the
    whole tree remains a pure function of the root seed.
    """
    seed_seq = np.random.SeedSequence(
        entropy=int(rng.integers(0, 2**63 - 1)), spawn_key=(stream,)
    )
    return np.random.default_rng(seed_seq)


def rng_state(rng: np.random.Generator) -> dict:
    """Serialise a generator's exact position in its bit stream.

    The returned dictionary is JSON-compatible (Python's ``json`` handles
    the arbitrary-precision integers of the PCG64 state) and restores the
    generator bit-for-bit through :func:`set_rng_state` — the mechanism
    the session checkpoints of :mod:`repro.api` use to make a resumed run
    reproduce the uninterrupted one exactly.
    """
    return rng.bit_generator.state


def set_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Reposition an existing generator to a :func:`rng_state` snapshot."""
    rng.bit_generator.state = state


def spawn_rngs(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators from a single seed."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    return [np.random.default_rng(child) for child in root.spawn(count)]
