"""Lightweight wall-clock instrumentation for the experiment harness.

The paper reports per-iteration response times (Fig. 2, Fig. 3, and the
streaming update times of §8.8).  :class:`Stopwatch` accumulates named
timings so experiment drivers can report averages per phase without pulling
in a profiling dependency.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass
class Stopwatch:
    """Accumulates wall-clock durations under string labels.

    Example::

        watch = Stopwatch()
        with watch.measure("inference"):
            run_inference()
        watch.mean("inference")
    """

    _samples: Dict[str, List[float]] = field(default_factory=lambda: defaultdict(list))

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        """Time the enclosed block and record it under ``label``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._samples[label].append(time.perf_counter() - start)

    def record(self, label: str, seconds: float) -> None:
        """Record an externally measured duration."""
        if seconds < 0:
            raise ValueError(f"duration must be non-negative, got {seconds}")
        self._samples[label].append(seconds)

    def count(self, label: str) -> int:
        """Number of samples recorded under ``label``."""
        return len(self._samples.get(label, ()))

    def total(self, label: str) -> float:
        """Sum of all durations recorded under ``label`` (seconds)."""
        return sum(self._samples.get(label, ()))

    def mean(self, label: str) -> float:
        """Mean duration for ``label``; zero when nothing was recorded."""
        samples = self._samples.get(label)
        if not samples:
            return 0.0
        return sum(samples) / len(samples)

    def samples(self, label: str) -> List[float]:
        """Copy of the raw samples for ``label``."""
        return list(self._samples.get(label, ()))

    def labels(self) -> List[str]:
        """All labels with at least one sample, in insertion order."""
        return list(self._samples)


@contextmanager
def timed() -> Iterator[List[float]]:
    """Context manager yielding a one-element list holding elapsed seconds.

    Example::

        with timed() as elapsed:
            work()
        print(elapsed[0])
    """
    holder = [0.0]
    start = time.perf_counter()
    try:
        yield holder
    finally:
        holder[0] = time.perf_counter() - start
