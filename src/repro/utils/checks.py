"""Argument-validation helpers used across the public API.

These helpers raise :class:`ValueError` with a consistent message format so
misuse is reported at the API boundary rather than deep inside numerical
code.
"""

from __future__ import annotations

import math
from typing import SupportsFloat


def check_probability(value: SupportsFloat, name: str = "value") -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    number = float(value)
    if math.isnan(number) or not 0.0 <= number <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return number


def check_fraction(value: SupportsFloat, name: str = "value") -> float:
    """Validate that ``value`` lies in the open-closed interval (0, 1]."""
    number = float(value)
    if math.isnan(number) or not 0.0 < number <= 1.0:
        raise ValueError(f"{name} must lie in (0, 1], got {value!r}")
    return number


def check_positive(value: SupportsFloat, name: str = "value") -> float:
    """Validate that ``value`` is strictly positive and finite."""
    number = float(value)
    if math.isnan(number) or math.isinf(number) or number <= 0:
        raise ValueError(f"{name} must be positive and finite, got {value!r}")
    return number


def check_non_negative(value: SupportsFloat, name: str = "value") -> float:
    """Validate that ``value`` is non-negative and finite."""
    number = float(value)
    if math.isnan(number) or math.isinf(number) or number < 0:
        raise ValueError(f"{name} must be non-negative and finite, got {value!r}")
    return number


def check_positive_int(value: int, name: str = "value") -> int:
    """Validate that ``value`` is a strictly positive integer."""
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return value
