"""Shared utilities: seeded randomness, timing, and argument checking."""

from repro.utils.rng import RandomState, derive_rng, ensure_rng
from repro.utils.timer import Stopwatch, timed
from repro.utils.checks import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "RandomState",
    "derive_rng",
    "ensure_rng",
    "Stopwatch",
    "timed",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
