"""Small vectorised array helpers shared across layers."""

from __future__ import annotations

import numpy as np


def concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[s, s + c)`` ranges: vectorised gather-index builder.

    Given per-segment start offsets and lengths, returns the
    concatenation of ``np.arange(s, s + c)`` for every segment — the
    CSR-slice gather used by the inference engine and the entropy
    enumeration.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp)
    offsets = np.cumsum(counts) - counts
    return (
        np.arange(total, dtype=np.intp)
        - np.repeat(offsets, counts)
        + np.repeat(starts, counts)
    )
