"""The session registry: many concurrent fact-checking sessions, managed.

:class:`SessionManager` owns named :class:`~repro.api.FactCheckSession`
objects keyed by id and redesigns the public surface from "one in-process
session" to "a registry of sessions behind a service":

* **create** from a declarative :class:`~repro.api.SessionSpec` (the only
  construction path — every hosted session is fully spec-determined, which
  is what makes the registry restorable);
* **drive** — step (batch), stream claim arrivals with the same
  interleaved-validation schedule as :meth:`FactCheckSession.run`
  (streaming), record external labels, query trace/result;
* **persist** — checkpoint on demand and automatically (the durability
  policy below), evict, and restore the whole registry from the spool
  directory after a restart.

Concurrency: every session carries its own re-entrant lock, so interleaved
requests against one session serialise (results stay bit-for-bit identical
to a single-threaded run), while operations on *different* sessions run in
parallel on a configurable worker pool.

Durability: with a ``spool_dir`` configured, each session is checkpointed
to ``<spool_dir>/<id>.json.gz`` when created, after every
``checkpoint_every`` mutating events (iterations, arrivals, labels — the
same periodic policy :meth:`FactCheckSession.run` exposes), and on
shutdown.  :meth:`restore` rebuilds the registry from those checkpoints;
because checkpoints resume bit-for-bit, a restart is invisible to results.
"""

from __future__ import annotations

import threading
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, TypeVar, Union

from repro.analysis.contracts import requires_lock
from repro.api import FactCheckSession, SessionSpec
from repro.errors import ServiceError, SessionNotFoundError
from repro.service.wire import (
    ClaimsRequest,
    LabelsRequest,
    StepRequest,
    result_to_dict,
)
from repro.streaming.stream import ClaimArrival

_T = TypeVar("_T")

#: File suffix of spooled session checkpoints (gzip-compressed JSON).
SPOOL_SUFFIX = ".json.gz"


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of a :class:`SessionManager`.

    Attributes:
        spool_dir: Durability directory; ``None`` disables auto-checkpoint
            and restart recovery.
        workers: Size of the worker pool executing session operations —
            the parallelism across *independent* sessions.
        checkpoint_every: Auto-checkpoint a session after this many
            mutating events (iterations / arrivals / labels); ``None``
            checkpoints only on create, explicit request, and shutdown.
    """

    spool_dir: Optional[Union[str, Path]] = None
    workers: int = 4
    checkpoint_every: Optional[int] = 1

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServiceError("workers must be at least 1")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ServiceError("checkpoint_every must be at least 1 (or None)")


class _ManagedSession:
    """A hosted session plus its lock and durability counters."""

    #: Mutable attributes that may only be touched while holding ``lock``
    #: (enforced statically by lint rules LOCK001/LOCK002).
    _LOCK_GUARDED = ("session", "evicted", "events_since_checkpoint")

    def __init__(self, session_id: str, session: FactCheckSession) -> None:
        self.id = session_id
        self.session = session
        self.lock = threading.RLock()
        self.events_since_checkpoint = 0
        # Set under the lock by delete(): an operation that was already in
        # flight when its session was evicted must not re-spool it (that
        # would resurrect the deleted session on the next restart).
        self.evicted = False


class SessionManager:
    """Registry of concurrent fact-checking sessions (see module docstring)."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self._sessions: Dict[str, _ManagedSession] = {}
        self.restore_errors: List[tuple] = []
        self._registry_lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-session",
        )
        self._closed = False
        if self.config.spool_dir is not None:
            Path(self.config.spool_dir).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Registry plumbing
    # ------------------------------------------------------------------

    def _get(self, session_id: str) -> _ManagedSession:
        with self._registry_lock:
            managed = self._sessions.get(session_id)
        if managed is None:
            raise SessionNotFoundError(f"no session with id {session_id!r}")
        return managed

    def _run(self, managed: _ManagedSession, operation: Callable[[], _T]) -> _T:
        """Execute ``operation`` under the session lock on the worker pool.

        The lock is taken on the *calling* thread: requests queued behind
        a busy session wait here without consuming worker-pool slots, so
        the pool bounds actual concurrent computation across sessions and
        one busy session can never starve the others.  Holding the lock
        is also the race-free moment to notice the session was deleted by
        a request that overtook this one.
        """
        if self._closed:
            raise ServiceError("the session manager is shut down")
        with managed.lock:
            if managed.evicted:
                raise SessionNotFoundError(f"no session with id {managed.id!r}")
            return self._executor.submit(operation).result()

    def _spool_path(self, session_id: str) -> Optional[Path]:
        if self.config.spool_dir is None:
            return None
        return Path(self.config.spool_dir) / f"{session_id}{SPOOL_SUFFIX}"

    @requires_lock("managed")
    def _record_events(self, managed: _ManagedSession, events: int) -> None:
        """Advance the durability counter; checkpoint when the period lapses.

        Called under the session lock by every mutating operation.
        """
        path = self._spool_path(managed.id)
        every = self.config.checkpoint_every
        if path is None or every is None or managed.evicted:
            return
        managed.events_since_checkpoint += events
        if managed.events_since_checkpoint >= every:
            managed.session.save(path)
            managed.events_since_checkpoint = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def create(self, spec: SessionSpec, session_id: Optional[str] = None) -> dict:
        """Create, open, and register a session; returns its summary.

        Args:
            spec: Declarative configuration.  Streaming sessions need no
                corpus (claims arrive later); batch sessions must carry a
                ``dataset`` spec — hosted sessions cannot receive corpus
                objects, that is what keeps them checkpointable.
            session_id: Client-chosen id; autogenerated when omitted.
        """
        if spec.mode == "batch" and spec.dataset is None:
            raise ServiceError(
                "hosted batch sessions need spec.dataset (the service "
                "cannot accept corpus objects)"
            )
        if session_id is not None and (
            not session_id or any(c in session_id for c in "/\\ \t\n")
        ):
            raise ServiceError(
                f"invalid session id {session_id!r}: must be non-empty "
                f"without slashes or whitespace"
            )
        if session_id is None:
            session_id = uuid.uuid4().hex[:12]
        managed = _ManagedSession(session_id, FactCheckSession(spec))
        with self._registry_lock:
            if session_id in self._sessions:
                raise ServiceError(f"session id {session_id!r} already exists")
            self._sessions[session_id] = managed

        def operation() -> dict:
            managed.session.open()
            path = self._spool_path(session_id)
            if path is not None:
                managed.session.save(path)
            return self._summary(managed)

        try:
            return self._run(managed, operation)
        except Exception:
            with self._registry_lock:
                self._sessions.pop(session_id, None)
            raise

    def restore(self) -> List[str]:
        """Rebuild the registry from the spool directory after a restart.

        Every ``<id>.json.gz`` checkpoint is loaded into an open session
        registered under ``<id>``.  Returns the restored ids (sorted).
        Sessions that were created in this manager already are skipped.

        A checkpoint that fails to load (e.g. torn by a crash before the
        atomic-replace discipline existed, or hand-edited) is skipped
        rather than blocking the whole registry; the failures are
        collected in :attr:`restore_errors` for the operator.
        """
        self.restore_errors: List[tuple] = []
        if self.config.spool_dir is None:
            return []
        restored: List[str] = []
        for path in sorted(Path(self.config.spool_dir).glob(f"*{SPOOL_SUFFIX}")):
            session_id = path.name[: -len(SPOOL_SUFFIX)]
            with self._registry_lock:
                if session_id in self._sessions:
                    continue
            try:
                session = FactCheckSession.load(path)
            except Exception as exc:
                self.restore_errors.append((session_id, str(exc)))
                continue
            with self._registry_lock:
                self._sessions[session_id] = _ManagedSession(session_id, session)
            restored.append(session_id)
        return restored

    def delete(self, session_id: str) -> None:
        """Evict a session from the registry and delete its spool entry.

        Engine-held resources (sharded worker pools) are released with
        the eviction so they never outlive the registry entry.
        """
        managed = self._get(session_id)
        with managed.lock:
            managed.evicted = True
            with self._registry_lock:
                self._sessions.pop(session_id, None)
            path = self._spool_path(session_id)
            if path is not None and path.exists():
                path.unlink()
            managed.session.release_engines()

    def shutdown(self, checkpoint: bool = True) -> None:
        """Stop the worker pool, checkpointing every session first."""
        if self._closed:
            return
        if checkpoint and self.config.spool_dir is not None:
            with self._registry_lock:
                sessions = list(self._sessions.values())
            for managed in sessions:
                with managed.lock:
                    managed.session.save(self._spool_path(managed.id))
                    managed.events_since_checkpoint = 0
        with self._registry_lock:
            remaining = list(self._sessions.values())
        for managed in remaining:
            with managed.lock:
                managed.session.release_engines()
        self._closed = True
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @requires_lock("managed")
    def _summary(self, managed: _ManagedSession) -> dict:
        """Status summary of one session (called under its lock)."""
        session = managed.session
        summary = {
            "id": managed.id,
            "mode": session.mode,
            "status": session.status,
            "seed": session.spec.seed,
        }
        try:
            database = session.database
            summary["num_claims"] = database.num_claims
            summary["num_labelled"] = database.num_labelled
        except Exception:
            # Streaming sessions have no snapshot before the first arrival.
            summary["num_claims"] = 0
            summary["num_labelled"] = 0
        if session.mode == "batch":
            summary["iterations"] = session.trace.iterations
        else:
            summary["arrivals"] = len(session._updates)
            summary["iterations"] = len(session._records)
        return summary

    def session_count(self) -> int:
        """Number of registered sessions — lock-free beyond the registry,
        so liveness probes never queue behind a long-running request."""
        with self._registry_lock:
            return len(self._sessions)

    def list_sessions(self) -> List[dict]:
        """Summaries of every registered session, ordered by id."""
        with self._registry_lock:
            managed_sessions = sorted(self._sessions.values(), key=lambda m: m.id)
        summaries = []
        for managed in managed_sessions:
            with managed.lock:
                summaries.append(self._summary(managed))
        return summaries

    def summary(self, session_id: str) -> dict:
        """Status summary of one session."""
        managed = self._get(session_id)
        with managed.lock:
            return self._summary(managed)

    def trace(self, session_id: str) -> dict:
        """The unified validation trace as a JSON-compatible dict."""
        managed = self._get(session_id)

        def operation() -> dict:
            return managed.session.trace.to_dict()

        return self._run(managed, operation)

    def result(self, session_id: str) -> dict:
        """The session's full result — final if closed, else a snapshot.

        A pure read: an open session stays open and drivable (a polling
        dashboard cannot accidentally finalise a mid-run session), and an
        open batch session mid-run reports ``stop_reason="unfinished"``.
        Sessions close server-side when a run request completes
        (``step`` with ``run=true``).
        """
        managed = self._get(session_id)

        def operation() -> dict:
            return result_to_dict(managed.session.result_snapshot())

        return self._run(managed, operation)

    # ------------------------------------------------------------------
    # Driving sessions
    # ------------------------------------------------------------------

    def step(self, session_id: str, request: Optional[StepRequest] = None) -> dict:
        """Advance a session server-side.

        Batch: with ``request.run`` the whole Alg. 1 loop executes (the
        session finishes and closes); otherwise up to ``request.count``
        iterations run, stopping early on goal/budget/exhaustion like
        :meth:`FactCheckSession.run` would.

        Streaming sessions whose spec declares a replayable
        ``stream.source`` are driven the same way: ``request.run``
        consumes the source to its end and closes the session, otherwise
        the next ``request.count`` arrivals are replayed (with the usual
        interleaved-validation schedule) — no claim payloads cross the
        wire, and the session keeps checkpointing in the compact form.
        """
        managed = self._get(session_id)
        request = request if request is not None else StepRequest()

        def operation() -> dict:
            session = managed.session
            if session.mode == "streaming":
                from repro.api import checkpoint as ckpt

                if request.run:
                    result = session.run()
                    self._record_events(managed, len(result.stream_updates))
                    return {
                        "id": managed.id,
                        "updates": [],
                        "completed": True,
                        "result": result_to_dict(result),
                    }
                updates = session.ingest_from_source(count=request.count)
                self._record_events(managed, len(updates))
                return {
                    "id": managed.id,
                    "updates": [
                        ckpt.stream_update_to_dict(u) for u in updates
                    ],
                    "completed": False,
                    "summary": self._summary(managed),
                }
            if request.run:
                result = session.run(max_iterations=request.max_iterations)
                self._record_events(managed, len(result.trace.records))
                return {
                    "id": managed.id,
                    "records": [],
                    "completed": True,
                    "result": result_to_dict(result),
                }
            # Drive the canonical Alg. 1 loop for a bounded slice: stop
            # reasons and termination-criterion state behave identically
            # to an uninterrupted run, but merely running out of `count`
            # leaves the trace unfinished (cap_stop_reason=None).
            process = session.process
            trace = process.trace
            before = trace.iterations
            process.run(
                max_iterations=before + request.count,
                cap_stop_reason=None,
            )
            records = trace.records[before:]
            self._record_events(managed, len(records))
            return {
                "id": managed.id,
                "records": [record.to_dict() for record in records],
                "completed": False,
                "summary": self._summary(managed),
            }

        return self._run(managed, operation)

    def stream_claims(
        self, session_id: str, arrivals: Sequence[ClaimArrival]
    ) -> dict:
        """Feed claim arrivals into a streaming session (Alg. 2).

        Applies the same interleaved-validation schedule as
        :meth:`FactCheckSession.run` — a burst of
        ``spec.stream.validation_every`` validations after every that many
        arrivals — so a claim stream delivered over any number of requests
        (and any number of server restarts) produces results bit-for-bit
        identical to one uninterrupted in-process run.
        """
        managed = self._get(session_id)

        def operation() -> dict:
            updates = managed.session.ingest(arrivals)
            self._record_events(managed, len(updates))
            from repro.api import checkpoint as ckpt

            return {
                "id": managed.id,
                "updates": [ckpt.stream_update_to_dict(u) for u in updates],
                "summary": self._summary(managed),
            }

        return self._run(managed, operation)

    def record_labels(self, session_id: str, request: LabelsRequest) -> dict:
        """Register external user labels on a session (either mode)."""
        managed = self._get(session_id)

        def operation() -> dict:
            session = managed.session
            for entry in request.labels:
                session.record_label(entry.claim, entry.value)
            self._record_events(managed, len(request.labels))
            return {
                "id": managed.id,
                "labelled": len(request.labels),
                "summary": self._summary(managed),
            }

        return self._run(managed, operation)

    def checkpoint(
        self, session_id: str, path: Optional[Union[str, Path]] = None
    ) -> dict:
        """Checkpoint a session now (to ``path`` or its spool entry)."""
        managed = self._get(session_id)
        target = Path(path) if path is not None else self._spool_path(session_id)
        if target is None:
            raise ServiceError(
                "no checkpoint destination: configure a spool_dir or pass a path"
            )

        def operation() -> dict:
            managed.session.save(target)
            managed.events_since_checkpoint = 0
            return {"id": managed.id, "path": str(target)}

        return self._run(managed, operation)

    # Convenience wrappers used by the HTTP layer -----------------------

    def create_from_payload(self, payload) -> dict:
        """Create a session from a parsed ``POST /sessions`` body."""
        from repro.service.wire import CreateSessionRequest

        request = CreateSessionRequest.from_payload(payload)
        return self.create(request.spec, session_id=request.session_id)

    def stream_claims_from_payload(self, session_id: str, payload) -> dict:
        request = ClaimsRequest.from_payload(payload)
        return self.stream_claims(session_id, request.arrivals)
