"""Thin HTTP client for the session service — stdlib ``urllib`` only.

Mirrors the REST surface of :mod:`repro.service.http` one method per
endpoint, translating structured error payloads back into
:class:`ServiceRequestError` (with the failing spec field path, when the
server reported one) and claim arrivals / results into their typed forms.

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8080")
    session = client.create_session(spec)
    client.step(session["id"], count=5)
    result = client.result(session["id"])
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Iterable, List, Optional, Sequence, Union

from repro.api import SessionResult, SessionSpec
from repro.errors import ServiceError
from repro.service.wire import result_from_dict
from repro.streaming.stream import ClaimArrival, arrival_to_dict


class ServiceRequestError(ServiceError):
    """A service request failed; carries the structured error payload.

    Attributes:
        status: HTTP status code.
        error_type: The :mod:`repro.errors` class name reported by the
            server (e.g. ``"SpecError"``).
        field: Dotted spec field path for validation errors, else ``None``.
    """

    def __init__(
        self,
        message: str,
        status: int,
        error_type: Optional[str] = None,
        field: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type
        self.field = field


class ServiceClient:
    """Client for a running :class:`~repro.service.http.ReproServiceServer`.

    Args:
        base_url: Server address, e.g. ``http://127.0.0.1:8080``.
        timeout: Per-request timeout in seconds.  Inference on large
            corpora can make individual ``step``/``claims`` calls slow —
            size accordingly.
    """

    def __init__(self, base_url: str, timeout: float = 300.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _request(self, method: str, path: str, payload=None) -> dict:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                info = json.loads(raw.decode("utf-8")).get("error", {})
            except (UnicodeDecodeError, json.JSONDecodeError, AttributeError):
                info = {}
            raise ServiceRequestError(
                info.get("message", f"{method} {path} failed: HTTP {exc.code}"),
                status=exc.code,
                error_type=info.get("type"),
                field=info.get("field"),
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach the service at {self.base_url}: {exc.reason}"
            ) from None

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def health(self) -> dict:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def list_sessions(self) -> List[dict]:
        """``GET /sessions``."""
        return self._request("GET", "/sessions")["sessions"]

    def create_session(
        self, spec: Union[SessionSpec, dict], session_id: Optional[str] = None
    ) -> dict:
        """``POST /sessions``: create from a spec; returns the summary."""
        payload = spec.to_dict() if isinstance(spec, SessionSpec) else dict(spec)
        if session_id is not None:
            payload = {"spec": payload, "id": session_id}
        return self._request("POST", "/sessions", payload)

    def summary(self, session_id: str) -> dict:
        """``GET /sessions/{id}``."""
        return self._request("GET", f"/sessions/{session_id}")

    def step(
        self,
        session_id: str,
        count: int = 1,
        run: bool = False,
        max_iterations: Optional[int] = None,
    ) -> dict:
        """``POST /sessions/{id}/step`` (batch sessions)."""
        payload: dict = {"count": count, "run": run}
        if max_iterations is not None:
            payload["max_iterations"] = max_iterations
        return self._request("POST", f"/sessions/{session_id}/step", payload)

    def stream_claims(
        self,
        session_id: str,
        arrivals: Iterable[Union[ClaimArrival, dict]],
        chunk_size: Optional[int] = None,
    ) -> List[dict]:
        """``POST /sessions/{id}/claims``: deliver arrivals, optionally
        chunked over several requests; returns all stream updates."""
        entries = [
            arrival_to_dict(a) if isinstance(a, ClaimArrival) else dict(a)
            for a in arrivals
        ]
        chunks: Sequence[List[dict]]
        if chunk_size is None:
            chunks = [entries]
        else:
            chunks = [
                entries[i : i + chunk_size]
                for i in range(0, len(entries), chunk_size)
            ]
        updates: List[dict] = []
        for chunk in chunks:
            response = self._request(
                "POST", f"/sessions/{session_id}/claims", {"arrivals": chunk}
            )
            updates.extend(response["updates"])
        return updates

    def record_labels(self, session_id: str, labels: Sequence[dict]) -> dict:
        """``POST /sessions/{id}/labels``; entries are
        ``{"claim": id-or-index, "value": 0|1}``."""
        return self._request(
            "POST", f"/sessions/{session_id}/labels", {"labels": list(labels)}
        )

    def result(self, session_id: str) -> SessionResult:
        """``GET /sessions/{id}/result`` — final when the session has
        completed, a non-mutating snapshot while it is still open."""
        return result_from_dict(self._request("GET", f"/sessions/{session_id}/result"))

    def result_dict(self, session_id: str) -> dict:
        """Like :meth:`result` but returns the raw JSON payload."""
        return self._request("GET", f"/sessions/{session_id}/result")

    def trace(self, session_id: str) -> dict:
        """``GET /sessions/{id}/trace``."""
        return self._request("GET", f"/sessions/{session_id}/trace")["trace"]

    def checkpoint(self, session_id: str) -> dict:
        """``POST /sessions/{id}/checkpoint``; returns the spooled path."""
        return self._request("POST", f"/sessions/{session_id}/checkpoint")

    def delete_session(self, session_id: str) -> None:
        """``DELETE /sessions/{id}``."""
        self._request("DELETE", f"/sessions/{session_id}")
