"""Multi-session service layer: a registry of fact-checking sessions
behind an HTTP API, with checkpoint-backed durability.

The second storey on top of the declarative session API (`repro.api`):

* :class:`SessionManager` — named sessions keyed by id, per-session
  locking, a worker pool for parallelism across sessions, and a spool-dir
  durability policy (auto-checkpoint + restore-on-restart).
* :class:`ReproServiceServer` — the stdlib HTTP front
  (``ThreadingHTTPServer``); see :mod:`repro.service.http` for the
  endpoint table and ``docs/SERVICE.md`` for the full reference.
* :class:`ServiceClient` — a thin ``urllib`` client mirroring the REST
  surface (used by ``examples/service_quickstart.py``).

Quickstart (in one process; ``python -m repro serve`` runs it standalone)::

    from repro.api import SessionSpec
    from repro.service import (
        ReproServiceServer, ServiceClient, ServiceConfig, SessionManager,
    )

    manager = SessionManager(ServiceConfig(spool_dir="spool/"))
    server = ReproServiceServer(manager)
    server.serve_in_background()

    client = ServiceClient(server.url)
    session = client.create_session(SessionSpec(
        seed=7,
        dataset={"name": "snopes", "seed": 7, "scale": 0.01},
        effort={"goal": {"kind": "true_precision", "threshold": 0.9}},
    ))
    client.step(session["id"], run=True)
    print(client.result(session["id"]).stop_reason)
"""

from repro.service.client import ServiceClient, ServiceRequestError
from repro.service.http import ReproServiceServer
from repro.service.manager import ServiceConfig, SessionManager

__all__ = [
    "ReproServiceServer",
    "ServiceClient",
    "ServiceConfig",
    "ServiceRequestError",
    "SessionManager",
]
