"""Typed request/response model of the session service wire protocol.

Every HTTP body the service accepts or emits corresponds to a dataclass
here, so the handler layer parses requests into validated objects before
touching the :class:`~repro.service.manager.SessionManager`, and responses
are rendered from one place.  Serialisation stays plain JSON: entities use
the :mod:`repro.datasets.io` corpus dialect, arrivals use
:func:`repro.streaming.arrival_to_dict`, and results round-trip with full
fidelity (weights, trace, stream updates), which is what lets the
end-to-end tests compare a service-driven run against an in-process
:class:`~repro.api.FactCheckSession` bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional, Union

import numpy as np

from repro.api import SessionResult, SessionSpec
from repro.api import checkpoint as ckpt
from repro.crf.weights import CrfWeights
from repro.errors import ServiceError
from repro.streaming.stream import ClaimArrival, arrival_from_dict
from repro.validation.session import ValidationTrace


def _require_mapping(payload: Any, what: str) -> Mapping:
    if not isinstance(payload, Mapping):
        raise ServiceError(f"{what} must be a JSON object")
    return payload


@dataclass(frozen=True)
class CreateSessionRequest:
    """Body of ``POST /sessions``: a SessionSpec document, optionally
    wrapped in an envelope carrying a client-chosen session id."""

    spec: SessionSpec
    session_id: Optional[str] = None

    @classmethod
    def from_payload(cls, payload: Any) -> "CreateSessionRequest":
        payload = _require_mapping(payload, "create-session body")
        if "spec" in payload:
            spec_payload = _require_mapping(payload["spec"], "spec")
            session_id = payload.get("id")
            if session_id is not None and not isinstance(session_id, str):
                raise ServiceError("session id must be a string")
        else:
            spec_payload, session_id = payload, None
        return cls(spec=SessionSpec.from_dict(spec_payload), session_id=session_id)


@dataclass(frozen=True)
class StepRequest:
    """Body of ``POST /sessions/{id}/step`` (batch sessions).

    ``count`` runs up to that many iterations; ``run=true`` drives the
    whole goal/budget/exhaustion loop to completion instead.
    """

    count: int = 1
    run: bool = False
    max_iterations: Optional[int] = None

    @classmethod
    def from_payload(cls, payload: Any) -> "StepRequest":
        if payload is None:
            return cls()
        payload = _require_mapping(payload, "step body")
        unknown = set(payload) - {"count", "run", "max_iterations"}
        if unknown:
            raise ServiceError(f"step body does not accept {sorted(unknown)}")
        count = payload.get("count", 1)
        if not isinstance(count, int) or count < 1:
            raise ServiceError("step count must be a positive integer")
        max_iterations = payload.get("max_iterations")
        if max_iterations is not None and (
            not isinstance(max_iterations, int) or max_iterations < 1
        ):
            raise ServiceError("max_iterations must be a positive integer")
        return cls(
            count=count,
            run=bool(payload.get("run", False)),
            max_iterations=max_iterations,
        )


@dataclass(frozen=True)
class ClaimsRequest:
    """Body of ``POST /sessions/{id}/claims``: streaming arrivals (Alg. 2)."""

    arrivals: List[ClaimArrival] = field(default_factory=list)

    @classmethod
    def from_payload(cls, payload: Any) -> "ClaimsRequest":
        payload = _require_mapping(payload, "claims body")
        entries = payload.get("arrivals")
        if not isinstance(entries, list) or not entries:
            raise ServiceError("claims body needs a non-empty 'arrivals' list")
        try:
            arrivals = [arrival_from_dict(_require_mapping(e, "arrival")) for e in entries]
        except ServiceError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed arrival payload: {exc}") from exc
        return cls(arrivals=arrivals)


@dataclass(frozen=True)
class LabelEntry:
    """One user label: claim addressed by stable id or dense index."""

    claim: Union[str, int]
    value: int


@dataclass(frozen=True)
class LabelsRequest:
    """Body of ``POST /sessions/{id}/labels``: external user input."""

    labels: List[LabelEntry] = field(default_factory=list)

    @classmethod
    def from_payload(cls, payload: Any) -> "LabelsRequest":
        payload = _require_mapping(payload, "labels body")
        entries = payload.get("labels")
        if not isinstance(entries, list) or not entries:
            raise ServiceError("labels body needs a non-empty 'labels' list")
        labels = []
        for entry in entries:
            entry = _require_mapping(entry, "label entry")
            if "claim" not in entry or "value" not in entry:
                raise ServiceError("label entries need 'claim' and 'value'")
            claim = entry["claim"]
            if not isinstance(claim, (str, int)):
                raise ServiceError("label claim must be a string id or an index")
            value = entry["value"]
            if value not in (0, 1):
                raise ServiceError("label value must be 0 or 1")
            labels.append(LabelEntry(claim=claim, value=int(value)))
        return cls(labels=labels)


# ----------------------------------------------------------------------
# Response rendering
# ----------------------------------------------------------------------


def result_to_dict(result: SessionResult) -> dict:
    """Full-fidelity rendering of a :class:`SessionResult`."""
    return {
        "mode": result.mode,
        "stop_reason": result.stop_reason,
        "num_claims": result.num_claims,
        "num_labelled": result.num_labelled,
        "final_precision": result.final_precision,
        "validated_claim_ids": list(result.validated_claim_ids),
        "trace": None if result.trace is None else result.trace.to_dict(),
        "stream_updates": [
            ckpt.stream_update_to_dict(update) for update in result.stream_updates
        ],
        "weights": None if result.weights is None else result.weights.values.tolist(),
    }


def result_from_dict(payload: Mapping[str, Any]) -> SessionResult:
    """Inverse of :func:`result_to_dict` (used by the client and tests)."""
    trace = payload.get("trace")
    weights = payload.get("weights")
    return SessionResult(
        mode=payload["mode"],
        stop_reason=payload["stop_reason"],
        num_claims=int(payload["num_claims"]),
        num_labelled=int(payload["num_labelled"]),
        final_precision=payload.get("final_precision"),
        validated_claim_ids=list(payload.get("validated_claim_ids", [])),
        trace=None if trace is None else ValidationTrace.from_dict(trace),
        stream_updates=[
            ckpt.stream_update_from_dict(entry)
            for entry in payload.get("stream_updates", [])
        ],
        weights=(
            None
            if weights is None
            else CrfWeights(np.asarray(weights, dtype=float))
        ),
    )


def error_to_dict(exc: BaseException, error_type: Optional[str] = None) -> dict:
    """Structured error payload: ``{"error": {type, message, field?}}``.

    ``type`` is the :mod:`repro.errors` class name, so clients can switch
    on it; validation errors additionally carry the dotted ``field`` path
    of the offending spec entry (see :class:`repro.errors.SpecError`).
    """
    info: dict = {
        "type": error_type or type(exc).__name__,
        "message": str(exc),
    }
    fieldpath = getattr(exc, "field", None)
    if fieldpath:
        info["field"] = fieldpath
    return {"error": info}
