"""HTTP front of the session registry — stdlib only, no new dependencies.

:class:`ReproServiceServer` is a :class:`~http.server.ThreadingHTTPServer`
routing a small REST surface onto a
:class:`~repro.service.manager.SessionManager`:

====== =============================== ==========================================
Method Path                            Meaning
====== =============================== ==========================================
GET    ``/healthz``                    liveness + session count
GET    ``/sessions``                   list session summaries
POST   ``/sessions``                   create from a SessionSpec JSON body
GET    ``/sessions/{id}``              one session summary
POST   ``/sessions/{id}/step``         batch iterations (``{"count": n}`` or
                                       ``{"run": true}``)
POST   ``/sessions/{id}/claims``       streaming arrivals (Alg. 2)
POST   ``/sessions/{id}/labels``       external user labels
GET    ``/sessions/{id}/result``       full result (snapshot while open)
GET    ``/sessions/{id}/trace``        the unified validation trace
POST   ``/sessions/{id}/checkpoint``   checkpoint now; returns the path
DELETE ``/sessions/{id}``              evict the session and its spool entry
====== =============================== ==========================================

Requests and responses are ``application/json``; request bodies parse into
the typed model of :mod:`repro.service.wire`.  Errors map onto structured
payloads ``{"error": {"type", "message", "field"?}}`` where ``type`` is the
:mod:`repro.errors` class name — a 400 for an invalid spec carries the
dotted ``field`` path of the offending entry (e.g. ``inference.engine``).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.errors import (
    CheckpointError,
    ReproError,
    ServiceError,
    SessionError,
    SessionNotFoundError,
    SpecError,
    StreamingError,
    ValidationProcessError,
)
from repro.service.manager import SessionManager
from repro.service.wire import LabelsRequest, StepRequest, error_to_dict

#: Largest accepted request body (16 MiB) — claim-arrival batches for big
#: corpora are chunked by the client well below this.
MAX_BODY_BYTES = 16 * 1024 * 1024


def _status_for(exc: ReproError) -> int:
    """Map a framework error onto an HTTP status code."""
    if isinstance(exc, SessionNotFoundError):
        return 404
    if isinstance(exc, (SpecError, ServiceError)):
        return 400
    if isinstance(exc, CheckpointError):
        return 500
    if isinstance(exc, (SessionError, ValidationProcessError, StreamingError)):
        return 409
    return 400


class _Handler(BaseHTTPRequestHandler):
    """Routes one request onto the manager; all responses are JSON."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service"

    # -- plumbing ------------------------------------------------------

    @property
    def manager(self) -> SessionManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status >= 400:
            # Error paths may not have consumed the request body; closing
            # keeps a keep-alive client from parsing the leftover bytes
            # as its next request line.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        if length == 0:
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc

    def _route(self) -> Tuple[str, Optional[str], Optional[str]]:
        """Split the path into (root, session_id, action)."""
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        root = parts[0] if parts else ""
        session_id = parts[1] if len(parts) > 1 else None
        action = parts[2] if len(parts) > 2 else None
        if len(parts) > 3:
            raise SessionNotFoundError(f"unknown path {self.path!r}")
        return root, session_id, action

    def _dispatch(self, method: str) -> None:
        try:
            root, session_id, action = self._route()
            handler = getattr(self, f"_{method}_{root or 'missing'}", None)
            if handler is None:
                raise SessionNotFoundError(f"unknown path {self.path!r}")
            handler(session_id, action)
        except ReproError as exc:
            self._send_json(_status_for(exc), error_to_dict(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(500, error_to_dict(exc))

    def do_GET(self) -> None:  # noqa: N802
        self._dispatch("get")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("post")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("delete")

    # -- routes --------------------------------------------------------

    def _get_healthz(self, session_id, action) -> None:
        if session_id is not None:
            raise SessionNotFoundError(f"unknown path {self.path!r}")
        # session_count touches only the registry lock — the probe stays
        # responsive while long-running session operations hold their locks.
        self._send_json(
            200,
            {"status": "ok", "sessions": self.manager.session_count()},
        )

    def _get_sessions(self, session_id, action) -> None:
        if session_id is None:
            self._send_json(200, {"sessions": self.manager.list_sessions()})
        elif action is None:
            self._send_json(200, self.manager.summary(session_id))
        elif action == "result":
            self._send_json(200, self.manager.result(session_id))
        elif action == "trace":
            self._send_json(200, {"trace": self.manager.trace(session_id)})
        else:
            raise SessionNotFoundError(f"unknown path {self.path!r}")

    def _post_sessions(self, session_id, action) -> None:
        body = self._read_body()
        if session_id is None:
            summary = self.manager.create_from_payload(
                body if body is not None else {}
            )
            self._send_json(201, summary)
        elif action == "step":
            self._send_json(
                200, self.manager.step(session_id, StepRequest.from_payload(body))
            )
        elif action == "claims":
            self._send_json(
                200, self.manager.stream_claims_from_payload(session_id, body or {})
            )
        elif action == "labels":
            self._send_json(
                200,
                self.manager.record_labels(
                    session_id, LabelsRequest.from_payload(body or {})
                ),
            )
        elif action == "checkpoint":
            # Checkpoints always land in the spool: a client-supplied path
            # would hand HTTP callers an arbitrary-filesystem-write
            # primitive.  (SessionManager.checkpoint keeps its path
            # parameter for in-process callers.)
            self._send_json(200, self.manager.checkpoint(session_id))
        else:
            raise SessionNotFoundError(f"unknown path {self.path!r}")

    def _delete_sessions(self, session_id, action) -> None:
        if session_id is None or action is not None:
            raise SessionNotFoundError(f"unknown path {self.path!r}")
        self.manager.delete(session_id)
        self._send_json(200, {"deleted": session_id})


class ReproServiceServer(ThreadingHTTPServer):
    """The session service: a threading HTTP server over a manager.

    Each request runs on its own thread; the manager's per-session locks
    and worker pool provide the concurrency discipline.  ``port=0`` binds
    an ephemeral port — read the chosen one from :attr:`server_port`.
    """

    daemon_threads = True

    def __init__(
        self,
        manager: SessionManager,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.manager = manager
        self.verbose = verbose

    @property
    def url(self) -> str:
        """Base URL of the bound server."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_in_background(self) -> threading.Thread:
        """Start :meth:`serve_forever` on a daemon thread (tests, examples)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread
