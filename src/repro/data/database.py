"""The probabilistic fact database ``Q = <S, D, C, P>`` (§2.1).

:class:`FactDatabase` holds the immutable *structure* of the fact-checking
setting — sources, documents, claims, and the (source, document, claim)
cliques of the CRF (§3.1) — together with the mutable *state*: the
credibility probability ``P(c)`` of every claim and the user labels received
so far.  User labels partition the claims into the labelled set ``C^L`` and
the unlabelled set ``C^U`` (§3.2).

Structure is index-based internally (claims, documents and sources are dense
integer indices) for numerical efficiency, while the public API accepts and
returns string identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.entities import Claim, Document, Source
from repro.data.stance import Stance
from repro.errors import DataModelError


@dataclass(frozen=True)
class Clique:
    """A relation factor π = {c, d, s} of the CRF (§3.1).

    One clique exists per (document, claim-link) pair; the publishing source
    completes the triple.  ``stance_sign`` is ``+1`` when the document
    supports the claim and ``-1`` when it refutes it, implementing the
    opposing-variable construction of Eq. 3.
    """

    claim_index: int
    document_index: int
    source_index: int
    stance_sign: int


class FactDatabase:
    """Structure and probabilistic state of a fact-checking instance.

    Args:
        sources: All sources; feature vectors must share one dimensionality.
        documents: All documents; each must reference a known source, and
            every claim link must reference a known claim.
        claims: All claims.
        prior: Initial credibility probability assigned to every claim.
            The paper initialises with 0.5 following the maximum-entropy
            principle (§8.1).

    Raises:
        DataModelError: On identifier collisions, dangling references, or
            inconsistent feature dimensionalities.
    """

    def __init__(
        self,
        sources: Sequence[Source],
        documents: Sequence[Document],
        claims: Sequence[Claim],
        prior: float = 0.5,
    ) -> None:
        if not 0.0 <= prior <= 1.0:
            raise DataModelError(f"prior must be in [0, 1], got {prior!r}")
        self._sources: Tuple[Source, ...] = tuple(sources)
        self._documents: Tuple[Document, ...] = tuple(documents)
        self._claims: Tuple[Claim, ...] = tuple(claims)
        if not self._claims:
            raise DataModelError("a fact database needs at least one claim")

        self._source_index = _index_unique(
            (s.source_id for s in self._sources), "source"
        )
        self._document_index = _index_unique(
            (d.document_id for d in self._documents), "document"
        )
        self._claim_index = _index_unique((c.claim_id for c in self._claims), "claim")

        self._source_features = _stack_features(
            [s.features for s in self._sources], "source"
        )
        self._document_features = _stack_features(
            [d.features for d in self._documents], "document"
        )

        self._cliques: List[Clique] = []
        self._claim_cliques: List[List[int]] = [[] for _ in self._claims]
        self._source_cliques: List[List[int]] = [[] for _ in self._sources]
        self._document_cliques: List[List[int]] = [[] for _ in self._documents]
        self._build_cliques()

        self._claim_sources: List[np.ndarray] = []
        self._source_claims: List[np.ndarray] = []
        self._build_bipartite_adjacency()

        self._prior = float(prior)
        self._probabilities = np.full(len(self._claims), self._prior, dtype=float)
        self._labels: Dict[int, int] = {}
        self._label_arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _build_cliques(self) -> None:
        claim_arr: List[int] = []
        document_arr: List[int] = []
        source_arr: List[int] = []
        sign_arr: List[int] = []
        for doc_idx, document in enumerate(self._documents):
            source_idx = self._source_index.get(document.source_id)
            if source_idx is None:
                raise DataModelError(
                    f"document {document.document_id!r} references unknown "
                    f"source {document.source_id!r}"
                )
            for link in document.claim_links:
                claim_idx = self._claim_index.get(link.claim_id)
                if claim_idx is None:
                    raise DataModelError(
                        f"document {document.document_id!r} references unknown "
                        f"claim {link.claim_id!r}"
                    )
                clique = Clique(
                    claim_index=claim_idx,
                    document_index=doc_idx,
                    source_index=source_idx,
                    stance_sign=link.stance.sign,
                )
                clique_idx = len(self._cliques)
                self._cliques.append(clique)
                self._claim_cliques[claim_idx].append(clique_idx)
                self._source_cliques[source_idx].append(clique_idx)
                self._document_cliques[doc_idx].append(clique_idx)
                claim_arr.append(claim_idx)
                document_arr.append(doc_idx)
                source_arr.append(source_idx)
                sign_arr.append(link.stance.sign)
        self._clique_claim_arr = np.asarray(claim_arr, dtype=np.intp)
        self._clique_document_arr = np.asarray(document_arr, dtype=np.intp)
        self._clique_source_arr = np.asarray(source_arr, dtype=np.intp)
        self._clique_sign_arr = np.asarray(sign_arr, dtype=float)

    def _build_bipartite_adjacency(self) -> None:
        claim_sources: List[set] = [set() for _ in self._claims]
        source_claims: List[set] = [set() for _ in self._sources]
        for clique in self._cliques:
            claim_sources[clique.claim_index].add(clique.source_index)
            source_claims[clique.source_index].add(clique.claim_index)
        self._claim_sources = [
            np.fromiter(sorted(members), dtype=np.intp, count=len(members))
            for members in claim_sources
        ]
        self._source_claims = [
            np.fromiter(sorted(members), dtype=np.intp, count=len(members))
            for members in source_claims
        ]

    # ------------------------------------------------------------------
    # Sizes and entity access
    # ------------------------------------------------------------------

    @property
    def num_sources(self) -> int:
        """|S|, the number of sources."""
        return len(self._sources)

    @property
    def num_documents(self) -> int:
        """|D|, the number of documents."""
        return len(self._documents)

    @property
    def num_claims(self) -> int:
        """|C|, the number of claims."""
        return len(self._claims)

    @property
    def num_cliques(self) -> int:
        """|Π|, the number of (source, document, claim) relation factors."""
        return len(self._cliques)

    @property
    def sources(self) -> Tuple[Source, ...]:
        """All sources, in index order."""
        return self._sources

    @property
    def documents(self) -> Tuple[Document, ...]:
        """All documents, in index order."""
        return self._documents

    @property
    def claims(self) -> Tuple[Claim, ...]:
        """All claims, in index order."""
        return self._claims

    @property
    def cliques(self) -> Tuple[Clique, ...]:
        """All relation factors π = {c, d, s} (§3.1)."""
        return tuple(self._cliques)

    def clique_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Dense clique structure as parallel arrays.

        Returns ``(claim, document, source, stance_sign)`` arrays of length
        ``num_cliques`` — the columnar layout the vectorised inference
        engine builds its cached evidence matrices from.
        """
        return (
            self._clique_claim_arr,
            self._clique_document_arr,
            self._clique_source_arr,
            self._clique_sign_arr,
        )

    @property
    def prior(self) -> float:
        """Initial credibility probability of unlabelled claims."""
        return self._prior

    @property
    def source_features(self) -> np.ndarray:
        """Matrix of source features, shape ``(num_sources, m_S)``."""
        return self._source_features

    @property
    def document_features(self) -> np.ndarray:
        """Matrix of document features, shape ``(num_documents, m_D)``."""
        return self._document_features

    def claim_id(self, index: int) -> str:
        """Identifier of the claim at ``index``."""
        return self._claims[index].claim_id

    def claim_position(self, claim_id: str) -> int:
        """Dense index of ``claim_id``."""
        try:
            return self._claim_index[claim_id]
        except KeyError:
            raise DataModelError(f"unknown claim {claim_id!r}") from None

    def source_position(self, source_id: str) -> int:
        """Dense index of ``source_id``."""
        try:
            return self._source_index[source_id]
        except KeyError:
            raise DataModelError(f"unknown source {source_id!r}") from None

    def document_position(self, document_id: str) -> int:
        """Dense index of ``document_id``."""
        try:
            return self._document_index[document_id]
        except KeyError:
            raise DataModelError(f"unknown document {document_id!r}") from None

    # ------------------------------------------------------------------
    # Graph adjacency
    # ------------------------------------------------------------------

    def cliques_of_claim(self, claim_index: int) -> List[int]:
        """Indices of cliques containing the claim."""
        return list(self._claim_cliques[claim_index])

    def cliques_of_source(self, source_index: int) -> List[int]:
        """Indices of cliques containing the source."""
        return list(self._source_cliques[source_index])

    def sources_of_claim(self, claim_index: int) -> np.ndarray:
        """Indices of sources with at least one document about the claim."""
        return self._claim_sources[claim_index]

    def claims_of_source(self, source_index: int) -> np.ndarray:
        """C_s: indices of claims connected to the source (Eq. 17)."""
        return self._source_claims[source_index]

    def connected_components(self) -> List[np.ndarray]:
        """Partition claims into CRF connected components (§5.1).

        Two claims are connected when they share a source (sharing a
        document implies sharing its source, so source-sharing subsumes
        document-sharing).  Returns a list of arrays of claim indices;
        singleton components are included.
        """
        parent = np.arange(self.num_claims, dtype=np.intp)

        def find(node: int) -> int:
            root = node
            while parent[root] != root:
                root = parent[root]
            while parent[node] != root:
                parent[node], node = root, parent[node]
            return root

        for claim_indices in self._source_claims:
            if claim_indices.size < 2:
                continue
            first = find(int(claim_indices[0]))
            for other in claim_indices[1:]:
                parent[find(int(other))] = first

        groups: Dict[int, List[int]] = {}
        for claim in range(self.num_claims):
            groups.setdefault(find(claim), []).append(claim)
        return [np.asarray(members, dtype=np.intp) for members in groups.values()]

    # ------------------------------------------------------------------
    # Probabilistic state: P, C^L, C^U
    # ------------------------------------------------------------------

    @property
    def probabilities(self) -> np.ndarray:
        """Read-only view of ``P(c)`` for every claim, in index order."""
        view = self._probabilities.view()
        view.flags.writeable = False
        return view

    def probability(self, claim_index: int) -> float:
        """``P(c)`` for the claim at ``claim_index``."""
        return float(self._probabilities[claim_index])

    def set_probabilities(self, values: np.ndarray) -> None:
        """Replace ``P`` for all claims; labelled claims keep their labels.

        Inference writes its marginal estimates here (Eq. 7); labels are
        re-imposed so user input always dominates (§3.2).
        """
        values = np.asarray(values, dtype=float)
        if values.shape != self._probabilities.shape:
            raise DataModelError(
                f"expected {self._probabilities.shape[0]} probabilities, "
                f"got shape {values.shape}"
            )
        if np.any((values < 0) | (values > 1)) or not np.all(np.isfinite(values)):
            raise DataModelError("probabilities must lie in [0, 1]")
        self._probabilities = values.copy()
        for claim_idx, label in self._labels.items():
            self._probabilities[claim_idx] = float(label)

    def label(self, claim_index: int, value: int) -> None:
        """Record user input for a claim: credible (1) or non-credible (0).

        Sets ``P(c)`` to the label value and moves the claim from C^U to
        C^L.  Re-labelling an already labelled claim is permitted — the
        robustness check of §5.2 repairs suspected mistakes this way.
        """
        if value not in (0, 1):
            raise DataModelError(f"label must be 0 or 1, got {value!r}")
        if not 0 <= claim_index < self.num_claims:
            raise DataModelError(f"claim index {claim_index} out of range")
        self._labels[claim_index] = int(value)
        self._probabilities[claim_index] = float(value)
        self._label_arrays = None

    def unlabel(self, claim_index: int) -> None:
        """Remove the user label for a claim, returning it to C^U.

        Used by cross-validation (§6.1) and the robustness check (§5.2),
        which re-infer while holding out some labels.  The probability is
        reset to the database prior.
        """
        if claim_index in self._labels:
            del self._labels[claim_index]
            self._probabilities[claim_index] = self._prior
            self._label_arrays = None

    def label_of(self, claim_index: int) -> Optional[int]:
        """User label for the claim, or ``None`` when unlabelled."""
        return self._labels.get(claim_index)

    @property
    def labels(self) -> Mapping[int, int]:
        """All user labels, keyed by claim index."""
        return dict(self._labels)

    def label_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """C^L as parallel ``(indices, values)`` arrays, sorted by index.

        Cached until the label set changes; the inference hot paths use
        this to pin labels with one vectorised assignment instead of
        iterating the label mapping claim by claim.
        """
        if self._label_arrays is None:
            indices = np.asarray(sorted(self._labels), dtype=np.intp)
            values = np.asarray(
                [self._labels[int(i)] for i in indices], dtype=float
            )
            indices.flags.writeable = False
            values.flags.writeable = False
            self._label_arrays = (indices, values)
        return self._label_arrays

    @property
    def labelled_indices(self) -> np.ndarray:
        """C^L as a sorted array of claim indices."""
        return self.label_arrays()[0]

    @property
    def unlabelled_indices(self) -> np.ndarray:
        """C^U as a sorted array of claim indices."""
        mask = np.ones(self.num_claims, dtype=bool)
        if self._labels:
            mask[list(self._labels)] = False
        return np.flatnonzero(mask)

    @property
    def num_labelled(self) -> int:
        """|C^L|, the number of user-validated claims."""
        return len(self._labels)

    def is_labelled(self, claim_index: int) -> bool:
        """Whether the claim has received user input."""
        return claim_index in self._labels

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------

    def clone_state(self) -> "FactDatabaseState":
        """Snapshot the mutable state (probabilities and labels)."""
        return FactDatabaseState(
            probabilities=self._probabilities.copy(), labels=dict(self._labels)
        )

    def restore_state(self, state: "FactDatabaseState") -> None:
        """Restore a snapshot taken with :meth:`clone_state`."""
        if state.probabilities.shape != self._probabilities.shape:
            raise DataModelError("state snapshot does not match this database")
        self._probabilities = state.probabilities.copy()
        self._labels = dict(state.labels)
        self._label_arrays = None

    # ------------------------------------------------------------------
    # Ground truth (simulation only)
    # ------------------------------------------------------------------

    def truth_vector(self) -> np.ndarray:
        """Ground-truth credibility of all claims as a 0/1 array.

        Raises:
            DataModelError: If any claim lacks a ground-truth label.  Only
                simulated-user oracles and evaluation metrics call this.
        """
        values = np.empty(self.num_claims, dtype=np.int8)
        for index, claim in enumerate(self._claims):
            if claim.truth is None:
                raise DataModelError(
                    f"claim {claim.claim_id!r} has no ground-truth label"
                )
            values[index] = 1 if claim.truth else 0
        return values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FactDatabase(sources={self.num_sources}, "
            f"documents={self.num_documents}, claims={self.num_claims}, "
            f"cliques={self.num_cliques}, labelled={self.num_labelled})"
        )


@dataclass
class FactDatabaseState:
    """Snapshot of the mutable part of a :class:`FactDatabase`."""

    probabilities: np.ndarray
    labels: Dict[int, int]


def _index_unique(ids: Iterable[str], kind: str) -> Dict[str, int]:
    """Map identifiers to dense indices, rejecting duplicates."""
    mapping: Dict[str, int] = {}
    for position, identifier in enumerate(ids):
        if identifier in mapping:
            raise DataModelError(f"duplicate {kind} identifier {identifier!r}")
        mapping[identifier] = position
    return mapping


def _stack_features(vectors: List[np.ndarray], kind: str) -> np.ndarray:
    """Stack per-entity feature vectors into a dense matrix."""
    if not vectors:
        return np.zeros((0, 0), dtype=float)
    width = vectors[0].shape[0]
    for vector in vectors:
        if vector.shape[0] != width:
            raise DataModelError(
                f"all {kind} feature vectors must share one dimensionality"
            )
    return np.vstack(vectors) if width else np.zeros((len(vectors), 0), dtype=float)
