"""The probabilistic fact database ``Q = <S, D, C, P>`` (§2.1).

:class:`FactDatabase` holds the *structure* of the fact-checking setting —
sources, documents, claims, and the (source, document, claim) cliques of the
CRF (§3.1) — together with the mutable *state*: the credibility probability
``P(c)`` of every claim and the user labels received so far.  User labels
partition the claims into the labelled set ``C^L`` and the unlabelled set
``C^U`` (§3.2).

Structure is index-based internally (claims, documents and sources are dense
integer indices) for numerical efficiency, while the public API accepts and
returns string identifiers.

Two construction modes exist:

* strict (default): every claim link must reference a known claim, and the
  structure is fixed after construction;
* ``allow_pending_links=True``: links to not-yet-known claims are *parked*
  instead of rejected, and :meth:`FactDatabase.extend` grows the database
  in place as new entities arrive — the incremental backbone of the
  streaming process (§7).  Parked links materialise as cliques the moment
  their claim arrives, at exactly the position a from-scratch build would
  have put them, so the columnar clique arrays of a grown database are
  bit-for-bit identical to those of a freshly constructed one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.contracts import derived_cache, mutates
from repro.data.entities import Claim, Document, Source
from repro.errors import DataModelError

#: Cliques are kept sorted by ``document_index * _KEY_BASE + link_position``,
#: the enumeration order of a from-scratch build.  2**32 bounds the number of
#: claim links per document, far beyond anything a real corpus produces.
_KEY_BASE = 2**32


@dataclass(frozen=True)
class Clique:
    """A relation factor π = {c, d, s} of the CRF (§3.1).

    One clique exists per (document, claim-link) pair; the publishing source
    completes the triple.  ``stance_sign`` is ``+1`` when the document
    supports the claim and ``-1`` when it refutes it, implementing the
    opposing-variable construction of Eq. 3.
    """

    claim_index: int
    document_index: int
    source_index: int
    stance_sign: int


@dataclass(frozen=True)
class DatabaseDelta:
    """Growth record returned by :meth:`FactDatabase.extend`.

    Downstream caches (:class:`~repro.crf.potentials.CliqueFeaturizer`,
    :class:`~repro.crf.model.CrfModel`, the inference engines) use it to
    patch themselves instead of rebuilding.  ``insert_at`` holds the
    *pre-insertion* positions of the new cliques (suitable for
    :func:`numpy.insert`); ``new_positions`` their indices in the grown
    arrays.  Both are sorted, matching the key order of the new cliques.
    """

    num_sources_before: int
    num_documents_before: int
    num_claims_before: int
    num_cliques_before: int
    insert_at: np.ndarray
    new_positions: np.ndarray
    new_clique_claim: np.ndarray
    new_clique_document: np.ndarray
    new_clique_source: np.ndarray
    new_clique_sign: np.ndarray
    touched_claims: np.ndarray

    @property
    def num_new_cliques(self) -> int:
        return int(self.new_clique_claim.size)


class FactDatabase:
    """Structure and probabilistic state of a fact-checking instance.

    Args:
        sources: All sources; feature vectors must share one dimensionality.
        documents: All documents; each must reference a known source.
        claims: All claims.
        prior: Initial credibility probability assigned to every claim.
            The paper initialises with 0.5 following the maximum-entropy
            principle (§8.1).
        allow_pending_links: When true, claim links referencing unknown
            claims are parked instead of rejected, and the database may be
            grown with :meth:`extend`.  A document with parked links is
            exposed truncated (pending links removed) until the claims
            arrive, mirroring what a from-scratch build over the known
            claims would contain.

    Raises:
        DataModelError: On identifier collisions, dangling references, or
            inconsistent feature dimensionalities.
    """

    def __init__(
        self,
        sources: Sequence[Source],
        documents: Sequence[Document],
        claims: Sequence[Claim],
        prior: float = 0.5,
        allow_pending_links: bool = False,
    ) -> None:
        if not 0.0 <= prior <= 1.0:
            raise DataModelError(f"prior must be in [0, 1], got {prior!r}")
        self._allow_pending_links = bool(allow_pending_links)
        self._sources: Tuple[Source, ...] = tuple(sources)
        self._documents: Tuple[Document, ...] = tuple(documents)
        self._claims: Tuple[Claim, ...] = tuple(claims)
        if not self._claims:
            raise DataModelError("a fact database needs at least one claim")

        self._source_index = _index_unique(
            (s.source_id for s in self._sources), "source"
        )
        self._document_index = _index_unique(
            (d.document_id for d in self._documents), "document"
        )
        self._claim_index = _index_unique((c.claim_id for c in self._claims), "claim")

        self._source_features = _stack_features(
            [s.features for s in self._sources], "source"
        )
        self._document_features = _stack_features(
            [d.features for d in self._documents], "document"
        )

        # claim_id -> [(document_index, link_position, stance_sign)]
        self._pending_links: Dict[str, List[Tuple[int, int, int]]] = {}
        # document_index -> untruncated original / number of parked links
        self._full_documents: Dict[int, Document] = {}
        self._doc_pending_count: Dict[int, int] = {}
        self._build_cliques()

        # Derived structures, built on demand and dropped on extend().
        self._cliques_cache: Optional[Tuple[Clique, ...]] = None
        self._adjacency_cache: Optional[
            Tuple[List[List[int]], List[List[int]], List[List[int]]]
        ] = None
        self._bipartite_cache: Optional[
            Tuple[List[np.ndarray], List[np.ndarray]]
        ] = None
        self._bipartite_csr_cache: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = None

        self._prior = float(prior)
        self._probabilities = np.full(len(self._claims), self._prior, dtype=float)
        self._labels: Dict[int, int] = {}
        self._label_arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @mutates("cliques", "adjacency", "bipartite", "bipartite_csr")
    def _build_cliques(self) -> None:
        claim_arr: List[int] = []
        document_arr: List[int] = []
        source_arr: List[int] = []
        sign_arr: List[int] = []
        key_arr: List[int] = []
        exposed: Optional[List[Document]] = None
        for doc_idx, document in enumerate(self._documents):
            source_idx = self._source_index.get(document.source_id)
            if source_idx is None:
                raise DataModelError(
                    f"document {document.document_id!r} references unknown "
                    f"source {document.source_id!r}"
                )
            pending = 0
            for link_pos, link in enumerate(document.claim_links):
                claim_idx = self._claim_index.get(link.claim_id)
                if claim_idx is None:
                    if not self._allow_pending_links:
                        raise DataModelError(
                            f"document {document.document_id!r} references "
                            f"unknown claim {link.claim_id!r}"
                        )
                    self._pending_links.setdefault(link.claim_id, []).append(
                        (doc_idx, link_pos, link.stance.sign)
                    )
                    pending += 1
                    continue
                claim_arr.append(claim_idx)
                document_arr.append(doc_idx)
                source_arr.append(source_idx)
                sign_arr.append(link.stance.sign)
                key_arr.append(doc_idx * _KEY_BASE + link_pos)
            if pending:
                self._full_documents[doc_idx] = document
                self._doc_pending_count[doc_idx] = pending
                if exposed is None:
                    exposed = list(self._documents)
                exposed[doc_idx] = self._truncate_document(document)
        if exposed is not None:
            self._documents = tuple(exposed)
        self._clique_claim_arr = np.asarray(claim_arr, dtype=np.intp)
        self._clique_document_arr = np.asarray(document_arr, dtype=np.intp)
        self._clique_source_arr = np.asarray(source_arr, dtype=np.intp)
        self._clique_sign_arr = np.asarray(sign_arr, dtype=float)
        self._clique_key_arr = np.asarray(key_arr, dtype=np.int64)
        # Capacity buffers behind the exposed arrays: append-only growth
        # (the common streaming case) writes into spare tail capacity
        # instead of copying every column per arrival.  The exposed
        # ``_clique_*_arr`` attributes are always exact-length views.
        self._clique_buffers = {
            "claim": self._clique_claim_arr,
            "document": self._clique_document_arr,
            "source": self._clique_source_arr,
            "sign": self._clique_sign_arr,
            "key": self._clique_key_arr,
        }
        self._invalidate_structure_caches()

    def _truncate_document(self, document: Document) -> Document:
        known = tuple(
            link
            for link in document.claim_links
            if link.claim_id in self._claim_index
        )
        if len(known) == len(document.claim_links):
            return document
        return Document(
            document_id=document.document_id,
            source_id=document.source_id,
            features=document.features,
            claim_links=known,
            metadata=document.metadata,
        )

    def _invalidate_structure_caches(self) -> None:
        self._cliques_cache = None
        self._adjacency_cache = None
        self._bipartite_cache = None
        self._bipartite_csr_cache = None

    def _invalidate_label_arrays(self) -> None:
        self._label_arrays = None

    # ------------------------------------------------------------------
    # Incremental growth (§7)
    # ------------------------------------------------------------------

    @mutates("cliques", "adjacency", "bipartite", "bipartite_csr")
    def extend(
        self,
        sources: Sequence[Source] = (),
        documents: Sequence[Document] = (),
        claims: Sequence[Claim] = (),
    ) -> DatabaseDelta:
        """Grow the database in place with new entities.

        New cliques — links of the new documents plus parked links
        unlocked by the new claims — are merged into the columnar clique
        arrays at the positions a from-scratch build would give them, so
        the arrays stay bit-for-bit identical to a rebuild over the grown
        corpus.  New claims start at the database prior and unlabelled.

        Returns:
            A :class:`DatabaseDelta` describing the growth, for patching
            downstream caches.

        Raises:
            DataModelError: On identifier collisions or dangling
                references.  Validation happens before any mutation.
        """
        sources = list(sources)
        documents = list(documents)
        claims = list(claims)
        self._validate_extension(sources, documents, claims)

        num_sources_before = len(self._sources)
        num_documents_before = len(self._documents)
        num_claims_before = len(self._claims)
        num_cliques_before = int(self._clique_claim_arr.size)

        for offset, source in enumerate(sources):
            self._source_index[source.source_id] = num_sources_before + offset
        self._sources = self._sources + tuple(sources)
        if sources:
            self._source_features = _append_features(
                self._source_features,
                [s.features for s in sources],
                "source",
            )

        for offset, claim in enumerate(claims):
            self._claim_index[claim.claim_id] = num_claims_before + offset
        self._claims = self._claims + tuple(claims)
        if claims:
            self._probabilities = np.concatenate(
                [self._probabilities, np.full(len(claims), self._prior)]
            )

        new_claim: List[int] = []
        new_document: List[int] = []
        new_source: List[int] = []
        new_sign: List[int] = []
        new_key: List[int] = []

        # Parked links unlocked by the new claims.
        retruncate: List[int] = []
        for claim in claims:
            entries = self._pending_links.pop(claim.claim_id, None)
            if entries is None:
                continue
            claim_idx = self._claim_index[claim.claim_id]
            for doc_idx, link_pos, sign in entries:
                new_claim.append(claim_idx)
                new_document.append(doc_idx)
                new_source.append(
                    self._source_index[self._documents[doc_idx].source_id]
                )
                new_sign.append(sign)
                new_key.append(doc_idx * _KEY_BASE + link_pos)
                self._doc_pending_count[doc_idx] -= 1
                retruncate.append(doc_idx)

        if retruncate:
            exposed = list(self._documents)
            for doc_idx in sorted(set(retruncate)):
                full = self._full_documents[doc_idx]
                if self._doc_pending_count[doc_idx] == 0:
                    del self._full_documents[doc_idx]
                    del self._doc_pending_count[doc_idx]
                    exposed[doc_idx] = full
                else:
                    exposed[doc_idx] = self._truncate_document(full)
            self._documents = tuple(exposed)

        # Links of the new documents.
        exposed_new: List[Document] = []
        for offset, document in enumerate(documents):
            doc_idx = num_documents_before + offset
            self._document_index[document.document_id] = doc_idx
            source_idx = self._source_index[document.source_id]
            pending = 0
            for link_pos, link in enumerate(document.claim_links):
                claim_idx = self._claim_index.get(link.claim_id)
                if claim_idx is None:
                    self._pending_links.setdefault(link.claim_id, []).append(
                        (doc_idx, link_pos, link.stance.sign)
                    )
                    pending += 1
                    continue
                new_claim.append(claim_idx)
                new_document.append(doc_idx)
                new_source.append(source_idx)
                new_sign.append(link.stance.sign)
                new_key.append(doc_idx * _KEY_BASE + link_pos)
            if pending:
                self._full_documents[doc_idx] = document
                self._doc_pending_count[doc_idx] = pending
                exposed_new.append(self._truncate_document(document))
            else:
                exposed_new.append(document)
        self._documents = self._documents + tuple(exposed_new)
        if documents:
            self._document_features = _append_features(
                self._document_features,
                [d.features for d in documents],
                "document",
            )

        keys = np.asarray(new_key, dtype=np.int64)
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        claim_sorted = np.asarray(new_claim, dtype=np.intp)[order]
        document_sorted = np.asarray(new_document, dtype=np.intp)[order]
        source_sorted = np.asarray(new_source, dtype=np.intp)[order]
        sign_sorted = np.asarray(new_sign, dtype=float)[order]

        insert_at = np.searchsorted(self._clique_key_arr, keys)
        if keys.size:
            new_columns = {
                "claim": claim_sorted,
                "document": document_sorted,
                "source": source_sorted,
                "sign": sign_sorted,
                "key": keys,
            }
            n_new = num_cliques_before + keys.size
            if np.all(insert_at == num_cliques_before):
                # Append-only growth: new documents carry the largest
                # sort keys, so the columns extend in place — amortised
                # O(new cliques) via capacity-doubling buffers.
                if self._clique_buffers["claim"].size < n_new:
                    capacity = max(n_new, 2 * num_cliques_before)
                    for name, buffer in self._clique_buffers.items():
                        grown = np.empty(capacity, dtype=buffer.dtype)
                        grown[:num_cliques_before] = buffer[:num_cliques_before]
                        self._clique_buffers[name] = grown
                for name, column in new_columns.items():
                    self._clique_buffers[name][num_cliques_before:n_new] = column
            else:
                # Mid-array insertion (a parked forward link
                # materialised): pay the full copy, it is rare.
                current = {
                    "claim": self._clique_claim_arr,
                    "document": self._clique_document_arr,
                    "source": self._clique_source_arr,
                    "sign": self._clique_sign_arr,
                    "key": self._clique_key_arr,
                }
                for name, column in new_columns.items():
                    self._clique_buffers[name] = np.insert(
                        current[name], insert_at, column
                    )
            self._clique_claim_arr = self._clique_buffers["claim"][:n_new]
            self._clique_document_arr = self._clique_buffers["document"][:n_new]
            self._clique_source_arr = self._clique_buffers["source"][:n_new]
            self._clique_sign_arr = self._clique_buffers["sign"][:n_new]
            self._clique_key_arr = self._clique_buffers["key"][:n_new]
        new_positions = insert_at + np.arange(keys.size, dtype=insert_at.dtype)
        if sources or documents or claims:
            # New entities shift adjacency sizes even without new cliques.
            self._invalidate_structure_caches()

        return DatabaseDelta(
            num_sources_before=num_sources_before,
            num_documents_before=num_documents_before,
            num_claims_before=num_claims_before,
            num_cliques_before=num_cliques_before,
            insert_at=insert_at,
            new_positions=new_positions,
            new_clique_claim=claim_sorted,
            new_clique_document=document_sorted,
            new_clique_source=source_sorted,
            new_clique_sign=sign_sorted,
            touched_claims=np.unique(claim_sorted),
        )

    def _validate_extension(
        self,
        sources: Sequence[Source],
        documents: Sequence[Document],
        claims: Sequence[Claim],
    ) -> None:
        """Reject invalid growth before mutating anything."""
        seen_sources = set()
        for source in sources:
            if (
                source.source_id in self._source_index
                or source.source_id in seen_sources
            ):
                raise DataModelError(
                    f"duplicate source identifier {source.source_id!r}"
                )
            seen_sources.add(source.source_id)
        seen_claims = set()
        for claim in claims:
            if claim.claim_id in self._claim_index or claim.claim_id in seen_claims:
                raise DataModelError(
                    f"duplicate claim identifier {claim.claim_id!r}"
                )
            seen_claims.add(claim.claim_id)
        seen_documents = set()
        for document in documents:
            if (
                document.document_id in self._document_index
                or document.document_id in seen_documents
            ):
                raise DataModelError(
                    f"duplicate document identifier {document.document_id!r}"
                )
            seen_documents.add(document.document_id)
            if (
                document.source_id not in self._source_index
                and document.source_id not in seen_sources
            ):
                raise DataModelError(
                    f"document {document.document_id!r} references unknown "
                    f"source {document.source_id!r}"
                )
            if not self._allow_pending_links:
                for link in document.claim_links:
                    if (
                        link.claim_id not in self._claim_index
                        and link.claim_id not in seen_claims
                    ):
                        raise DataModelError(
                            f"document {document.document_id!r} references "
                            f"unknown claim {link.claim_id!r}"
                        )

    @property
    def num_pending_links(self) -> int:
        """Parked claim links awaiting their claim's arrival."""
        return sum(len(entries) for entries in self._pending_links.values())

    @property
    def pending_claim_ids(self) -> Tuple[str, ...]:
        """Identifiers of not-yet-arrived claims referenced by documents."""
        return tuple(sorted(self._pending_links))

    # ------------------------------------------------------------------
    # Sizes and entity access
    # ------------------------------------------------------------------

    @property
    def num_sources(self) -> int:
        """|S|, the number of sources."""
        return len(self._sources)

    @property
    def num_documents(self) -> int:
        """|D|, the number of documents."""
        return len(self._documents)

    @property
    def num_claims(self) -> int:
        """|C|, the number of claims."""
        return len(self._claims)

    @property
    def num_cliques(self) -> int:
        """|Π|, the number of (source, document, claim) relation factors."""
        return int(self._clique_claim_arr.size)

    @property
    def sources(self) -> Tuple[Source, ...]:
        """All sources, in index order."""
        return self._sources

    @property
    def documents(self) -> Tuple[Document, ...]:
        """All documents, in index order.

        Documents with parked links (``allow_pending_links=True``) are
        exposed truncated to their known claims, exactly as a strict build
        over the current claim set would contain them.
        """
        return self._documents

    @property
    def claims(self) -> Tuple[Claim, ...]:
        """All claims, in index order."""
        return self._claims

    @property
    @derived_cache(
        "cliques",
        backing=(
            "_clique_claim_arr",
            "_clique_document_arr",
            "_clique_source_arr",
            "_clique_sign_arr",
            "_clique_key_arr",
            "_clique_buffers",
        ),
        hook="_invalidate_structure_caches",
        storage="_cliques_cache",
    )
    def cliques(self) -> Tuple[Clique, ...]:
        """All relation factors π = {c, d, s} (§3.1)."""
        if self._cliques_cache is None:
            self._cliques_cache = tuple(
                Clique(
                    claim_index=int(c),
                    document_index=int(d),
                    source_index=int(s),
                    stance_sign=int(g),
                )
                for c, d, s, g in zip(
                    self._clique_claim_arr.tolist(),
                    self._clique_document_arr.tolist(),
                    self._clique_source_arr.tolist(),
                    self._clique_sign_arr.tolist(),
                )
            )
        return self._cliques_cache

    def clique_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Dense clique structure as parallel arrays.

        Returns ``(claim, document, source, stance_sign)`` arrays of length
        ``num_cliques`` — the columnar layout the vectorised inference
        engine builds its cached evidence matrices from.
        """
        return (
            self._clique_claim_arr,
            self._clique_document_arr,
            self._clique_source_arr,
            self._clique_sign_arr,
        )

    @property
    def prior(self) -> float:
        """Initial credibility probability of unlabelled claims."""
        return self._prior

    @property
    def source_features(self) -> np.ndarray:
        """Matrix of source features, shape ``(num_sources, m_S)``."""
        return self._source_features

    @property
    def document_features(self) -> np.ndarray:
        """Matrix of document features, shape ``(num_documents, m_D)``."""
        return self._document_features

    def claim_id(self, index: int) -> str:
        """Identifier of the claim at ``index``."""
        return self._claims[index].claim_id

    def claim_position(self, claim_id: str) -> int:
        """Dense index of ``claim_id``."""
        try:
            return self._claim_index[claim_id]
        except KeyError:
            raise DataModelError(f"unknown claim {claim_id!r}") from None

    def source_position(self, source_id: str) -> int:
        """Dense index of ``source_id``."""
        try:
            return self._source_index[source_id]
        except KeyError:
            raise DataModelError(f"unknown source {source_id!r}") from None

    def document_position(self, document_id: str) -> int:
        """Dense index of ``document_id``."""
        try:
            return self._document_index[document_id]
        except KeyError:
            raise DataModelError(f"unknown document {document_id!r}") from None

    # ------------------------------------------------------------------
    # Graph adjacency (derived lazily from the columnar arrays)
    # ------------------------------------------------------------------

    @derived_cache(
        "adjacency",
        backing=(
            "_clique_claim_arr",
            "_clique_document_arr",
            "_clique_source_arr",
            "_clique_buffers",
        ),
        hook="_invalidate_structure_caches",
        storage="_adjacency_cache",
    )
    def _adjacency(
        self,
    ) -> Tuple[List[List[int]], List[List[int]], List[List[int]]]:
        if self._adjacency_cache is None:
            claim_cliques: List[List[int]] = [[] for _ in self._claims]
            source_cliques: List[List[int]] = [[] for _ in self._sources]
            document_cliques: List[List[int]] = [[] for _ in self._documents]
            for idx, (c, d, s) in enumerate(
                zip(
                    self._clique_claim_arr.tolist(),
                    self._clique_document_arr.tolist(),
                    self._clique_source_arr.tolist(),
                )
            ):
                claim_cliques[c].append(idx)
                source_cliques[s].append(idx)
                document_cliques[d].append(idx)
            self._adjacency_cache = (claim_cliques, source_cliques, document_cliques)
        return self._adjacency_cache

    @derived_cache(
        "bipartite",
        backing=(
            "_clique_claim_arr",
            "_clique_source_arr",
            "_clique_buffers",
        ),
        hook="_invalidate_structure_caches",
        storage="_bipartite_cache",
    )
    def _bipartite_adjacency(
        self,
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        if self._bipartite_cache is None:
            claim_sources: List[set] = [set() for _ in self._claims]
            source_claims: List[set] = [set() for _ in self._sources]
            for c, s in zip(
                self._clique_claim_arr.tolist(), self._clique_source_arr.tolist()
            ):
                claim_sources[c].add(s)
                source_claims[s].add(c)
            self._bipartite_cache = (
                [
                    np.fromiter(sorted(members), dtype=np.intp, count=len(members))
                    for members in claim_sources
                ],
                [
                    np.fromiter(sorted(members), dtype=np.intp, count=len(members))
                    for members in source_claims
                ],
            )
        return self._bipartite_cache

    def cliques_of_claim(self, claim_index: int) -> List[int]:
        """Indices of cliques containing the claim."""
        return list(self._adjacency()[0][claim_index])

    def cliques_of_source(self, source_index: int) -> List[int]:
        """Indices of cliques containing the source."""
        return list(self._adjacency()[1][source_index])

    def sources_of_claim(self, claim_index: int) -> np.ndarray:
        """Indices of sources with at least one document about the claim."""
        return self._bipartite_adjacency()[0][claim_index]

    def claims_of_source(self, source_index: int) -> np.ndarray:
        """C_s: indices of claims connected to the source (Eq. 17)."""
        return self._bipartite_adjacency()[1][source_index]

    @derived_cache(
        "bipartite_csr",
        backing=(
            "_clique_claim_arr",
            "_clique_source_arr",
            "_clique_buffers",
        ),
        hook="_invalidate_structure_caches",
        storage="_bipartite_csr_cache",
    )
    def bipartite_csr(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Flat CSR form of the claim–source bipartite graph.

        Returns ``(claim_ptr, claim_sources, source_ptr, source_claims)``:
        claim ``c``'s sources are ``claim_sources[claim_ptr[c]:
        claim_ptr[c + 1]]`` and source ``s``'s claims (``C_s``, Eq. 17)
        are ``source_claims[source_ptr[s]:source_ptr[s + 1]]``, each in
        ascending index order — the vectorised counterpart of
        :meth:`sources_of_claim`/:meth:`claims_of_source`, built once per
        structure for grouped reductions (``np.bincount``/``np.add.at``)
        over whole source neighbourhoods.
        """
        if self._bipartite_csr_cache is None:
            claim_sources, source_claims = self._bipartite_adjacency()
            claim_counts = np.asarray(
                [members.size for members in claim_sources], dtype=np.intp
            )
            source_counts = np.asarray(
                [members.size for members in source_claims], dtype=np.intp
            )
            claim_ptr = np.concatenate(
                ([0], np.cumsum(claim_counts))
            ).astype(np.intp)
            source_ptr = np.concatenate(
                ([0], np.cumsum(source_counts))
            ).astype(np.intp)
            flat_sources = (
                np.concatenate(claim_sources)
                if claim_sources
                else np.empty(0, dtype=np.intp)
            ).astype(np.intp)
            flat_claims = (
                np.concatenate(source_claims)
                if source_claims
                else np.empty(0, dtype=np.intp)
            ).astype(np.intp)
            for array in (claim_ptr, source_ptr, flat_sources, flat_claims):
                array.flags.writeable = False
            self._bipartite_csr_cache = (
                claim_ptr, flat_sources, source_ptr, flat_claims
            )
        return self._bipartite_csr_cache

    def connected_components(self) -> List[np.ndarray]:
        """Partition claims into CRF connected components (§5.1).

        Two claims are connected when they share a source (sharing a
        document implies sharing its source, so source-sharing subsumes
        document-sharing).  Returns a list of arrays of claim indices;
        singleton components are included.
        """
        parent = np.arange(self.num_claims, dtype=np.intp)

        def find(node: int) -> int:
            root = node
            while parent[root] != root:
                root = parent[root]
            while parent[node] != root:
                parent[node], node = root, parent[node]
            return root

        for claim_indices in self._bipartite_adjacency()[1]:
            if claim_indices.size < 2:
                continue
            first = find(int(claim_indices[0]))
            for other in claim_indices[1:]:
                parent[find(int(other))] = first

        groups: Dict[int, List[int]] = {}
        for claim in range(self.num_claims):
            groups.setdefault(find(claim), []).append(claim)
        return [np.asarray(members, dtype=np.intp) for members in groups.values()]

    # ------------------------------------------------------------------
    # Probabilistic state: P, C^L, C^U
    # ------------------------------------------------------------------

    @property
    def probabilities(self) -> np.ndarray:
        """Read-only view of ``P(c)`` for every claim, in index order."""
        view = self._probabilities.view()
        view.flags.writeable = False
        return view

    def probability(self, claim_index: int) -> float:
        """``P(c)`` for the claim at ``claim_index``."""
        return float(self._probabilities[claim_index])

    def set_probabilities(self, values: np.ndarray) -> None:
        """Replace ``P`` for all claims; labelled claims keep their labels.

        Inference writes its marginal estimates here (Eq. 7); labels are
        re-imposed so user input always dominates (§3.2).
        """
        values = np.asarray(values, dtype=float)
        if values.shape != self._probabilities.shape:
            raise DataModelError(
                f"expected {self._probabilities.shape[0]} probabilities, "
                f"got shape {values.shape}"
            )
        if np.any((values < 0) | (values > 1)) or not np.all(np.isfinite(values)):
            raise DataModelError("probabilities must lie in [0, 1]")
        self._probabilities = values.copy()
        for claim_idx, label in self._labels.items():
            self._probabilities[claim_idx] = float(label)

    @mutates("label_arrays")
    def label(self, claim_index: int, value: int) -> None:
        """Record user input for a claim: credible (1) or non-credible (0).

        Sets ``P(c)`` to the label value and moves the claim from C^U to
        C^L.  Re-labelling an already labelled claim is permitted — the
        robustness check of §5.2 repairs suspected mistakes this way.
        """
        if value not in (0, 1):
            raise DataModelError(f"label must be 0 or 1, got {value!r}")
        if not 0 <= claim_index < self.num_claims:
            raise DataModelError(f"claim index {claim_index} out of range")
        self._labels[claim_index] = int(value)
        self._probabilities[claim_index] = float(value)
        self._invalidate_label_arrays()

    @mutates("label_arrays")
    def unlabel(self, claim_index: int) -> None:
        """Remove the user label for a claim, returning it to C^U.

        Used by cross-validation (§6.1) and the robustness check (§5.2),
        which re-infer while holding out some labels.  The probability is
        reset to the database prior.
        """
        if claim_index in self._labels:
            del self._labels[claim_index]
            self._probabilities[claim_index] = self._prior
            self._invalidate_label_arrays()

    def label_of(self, claim_index: int) -> Optional[int]:
        """User label for the claim, or ``None`` when unlabelled."""
        return self._labels.get(claim_index)

    @property
    def labels(self) -> Mapping[int, int]:
        """All user labels, keyed by claim index."""
        return dict(self._labels)

    @derived_cache(
        "label_arrays",
        backing=("_labels",),
        hook="_invalidate_label_arrays",
        storage="_label_arrays",
    )
    def label_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """C^L as parallel ``(indices, values)`` arrays, sorted by index.

        Cached until the label set changes; the inference hot paths use
        this to pin labels with one vectorised assignment instead of
        iterating the label mapping claim by claim.
        """
        if self._label_arrays is None:
            indices = np.asarray(sorted(self._labels), dtype=np.intp)
            values = np.asarray(
                [self._labels[int(i)] for i in indices], dtype=float
            )
            indices.flags.writeable = False
            values.flags.writeable = False
            self._label_arrays = (indices, values)
        return self._label_arrays

    @property
    def labelled_indices(self) -> np.ndarray:
        """C^L as a sorted array of claim indices."""
        return self.label_arrays()[0]

    @property
    def unlabelled_indices(self) -> np.ndarray:
        """C^U as a sorted array of claim indices."""
        mask = np.ones(self.num_claims, dtype=bool)
        if self._labels:
            mask[list(self._labels)] = False
        return np.flatnonzero(mask)

    @property
    def num_labelled(self) -> int:
        """|C^L|, the number of user-validated claims."""
        return len(self._labels)

    def is_labelled(self, claim_index: int) -> bool:
        """Whether the claim has received user input."""
        return claim_index in self._labels

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------

    def clone_state(self) -> "FactDatabaseState":
        """Snapshot the mutable state (probabilities and labels)."""
        return FactDatabaseState(
            probabilities=self._probabilities.copy(), labels=dict(self._labels)
        )

    @mutates("label_arrays")
    def restore_state(self, state: "FactDatabaseState") -> None:
        """Restore a snapshot taken with :meth:`clone_state`."""
        if state.probabilities.shape != self._probabilities.shape:
            raise DataModelError("state snapshot does not match this database")
        self._probabilities = state.probabilities.copy()
        self._labels = dict(state.labels)
        self._invalidate_label_arrays()

    # ------------------------------------------------------------------
    # Ground truth (simulation only)
    # ------------------------------------------------------------------

    def truth_vector(self) -> np.ndarray:
        """Ground-truth credibility of all claims as a 0/1 array.

        Raises:
            DataModelError: If any claim lacks a ground-truth label.  Only
                simulated-user oracles and evaluation metrics call this.
        """
        values = np.empty(self.num_claims, dtype=np.int8)
        for index, claim in enumerate(self._claims):
            if claim.truth is None:
                raise DataModelError(
                    f"claim {claim.claim_id!r} has no ground-truth label"
                )
            values[index] = 1 if claim.truth else 0
        return values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FactDatabase(sources={self.num_sources}, "
            f"documents={self.num_documents}, claims={self.num_claims}, "
            f"cliques={self.num_cliques}, labelled={self.num_labelled})"
        )


@dataclass
class FactDatabaseState:
    """Snapshot of the mutable part of a :class:`FactDatabase`."""

    probabilities: np.ndarray
    labels: Dict[int, int]


def _index_unique(ids: Iterable[str], kind: str) -> Dict[str, int]:
    """Map identifiers to dense indices, rejecting duplicates."""
    mapping: Dict[str, int] = {}
    for position, identifier in enumerate(ids):
        if identifier in mapping:
            raise DataModelError(f"duplicate {kind} identifier {identifier!r}")
        mapping[identifier] = position
    return mapping


def _stack_features(vectors: List[np.ndarray], kind: str) -> np.ndarray:
    """Stack per-entity feature vectors into a dense matrix."""
    if not vectors:
        return np.zeros((0, 0), dtype=float)
    width = vectors[0].shape[0]
    for vector in vectors:
        if vector.shape[0] != width:
            raise DataModelError(
                f"all {kind} feature vectors must share one dimensionality"
            )
    return np.vstack(vectors) if width else np.zeros((len(vectors), 0), dtype=float)


def _append_features(
    existing: np.ndarray, vectors: List[np.ndarray], kind: str
) -> np.ndarray:
    """Append feature rows to an existing matrix, validating the width.

    A matrix with no rows carries no width information (``(0, 0)``), so the
    first rows define the dimensionality — matching what a from-scratch
    :func:`_stack_features` over the grown entity list would produce.
    """
    rows = _stack_features(vectors, kind)
    if existing.shape[0] == 0:
        return rows
    if rows.shape[1] != existing.shape[1]:
        raise DataModelError(
            f"all {kind} feature vectors must share one dimensionality"
        )
    return np.vstack([existing, rows])
