"""Entities of the fact-checking setting (§2.1): sources, documents, claims.

A *source* (website, forum user, news provider) publishes *documents*
(web pages, posts, tweets); each document references one or more *claims*
with a :class:`~repro.data.stance.Stance`.  Entities are immutable value
objects; all mutable state (credibility probabilities, user labels) lives in
:class:`repro.data.database.FactDatabase`.

Feature vectors follow §8.1 of the paper: source features are
trustworthiness indicators (centrality scores for websites, activity
statistics for forum users) and document features are language-quality
indicators (stylistic and affective scores).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

import numpy as np

from repro.data.stance import Stance
from repro.errors import DataModelError


def _as_feature_vector(values) -> np.ndarray:
    """Coerce ``values`` into an immutable 1-D float vector."""
    vector = np.asarray(values, dtype=float)
    if vector.ndim != 1:
        raise DataModelError(
            f"feature vector must be one-dimensional, got shape {vector.shape}"
        )
    if not np.all(np.isfinite(vector)):
        raise DataModelError("feature vector must contain only finite values")
    vector = vector.copy()
    vector.setflags(write=False)
    return vector


@dataclass(frozen=True)
class Source:
    """A provider of documents, with trustworthiness features f^S (§3.1).

    Attributes:
        source_id: Unique identifier, e.g. a domain name or user handle.
        features: Vector ``<f_1^S(s), ..., f_mS^S(s)>`` of source features.
        metadata: Free-form annotations (never used by algorithms).
    """

    source_id: str
    features: np.ndarray
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.source_id:
            raise DataModelError("source_id must be a non-empty string")
        object.__setattr__(self, "features", _as_feature_vector(self.features))

    @property
    def num_features(self) -> int:
        """Dimensionality m_S of the source feature vector."""
        return int(self.features.shape[0])


@dataclass(frozen=True)
class ClaimLink:
    """A reference from a document to a claim, with a stance."""

    claim_id: str
    stance: Stance = Stance.SUPPORT

    def __post_init__(self) -> None:
        if not self.claim_id:
            raise DataModelError("claim_id must be a non-empty string")
        if not isinstance(self.stance, Stance):
            raise DataModelError(f"stance must be a Stance, got {self.stance!r}")


@dataclass(frozen=True)
class Document:
    """A textual item published by a source, with language features f^D.

    Attributes:
        document_id: Unique identifier.
        source_id: Identifier of the publishing source.
        features: Vector ``<f_1^D(d), ..., f_mD^D(d)>`` of document features.
        claim_links: Claims referenced by this document, with stances.
        metadata: Free-form annotations (never used by algorithms).
    """

    document_id: str
    source_id: str
    features: np.ndarray
    claim_links: Tuple[ClaimLink, ...] = ()
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.document_id:
            raise DataModelError("document_id must be a non-empty string")
        if not self.source_id:
            raise DataModelError("source_id must be a non-empty string")
        object.__setattr__(self, "features", _as_feature_vector(self.features))
        links = tuple(self.claim_links)
        seen = set()
        for link in links:
            if not isinstance(link, ClaimLink):
                raise DataModelError(f"claim_links must hold ClaimLink, got {link!r}")
            if link.claim_id in seen:
                raise DataModelError(
                    f"document {self.document_id!r} links claim "
                    f"{link.claim_id!r} more than once"
                )
            seen.add(link.claim_id)
        object.__setattr__(self, "claim_links", links)

    @property
    def num_features(self) -> int:
        """Dimensionality m_D of the document feature vector."""
        return int(self.features.shape[0])

    @property
    def claim_ids(self) -> Tuple[str, ...]:
        """Identifiers of all claims referenced by this document."""
        return tuple(link.claim_id for link in self.claim_links)


@dataclass(frozen=True)
class Claim:
    """A candidate fact whose credibility is to be assessed (§2.1).

    The credibility of a claim is a binary random variable; its probability
    lives in the fact database, not here.  ``truth`` is the hidden ground
    truth used exclusively by simulated users and evaluation metrics — the
    inference and guidance algorithms never read it.

    Attributes:
        claim_id: Unique identifier.
        text: Optional surface form of the claim.
        truth: Hidden ground-truth credibility (``None`` when unknown).
        metadata: Free-form annotations (never used by algorithms).
    """

    claim_id: str
    text: str = ""
    truth: Optional[bool] = None
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.claim_id:
            raise DataModelError("claim_id must be a non-empty string")
        if self.truth is not None and not isinstance(self.truth, bool):
            raise DataModelError(f"truth must be bool or None, got {self.truth!r}")
