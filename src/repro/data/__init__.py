"""Data model of the fact-checking setting (§2.1).

Exports the entity types (:class:`Source`, :class:`Document`,
:class:`Claim`), document-claim :class:`Stance`, the probabilistic fact
database :class:`FactDatabase`, and :class:`Grounding` — the trusted set of
facts derived from it.
"""

from repro.data.database import Clique, FactDatabase, FactDatabaseState
from repro.data.entities import Claim, ClaimLink, Document, Source
from repro.data.grounding import Grounding, precision_improvement
from repro.data.stance import Stance

__all__ = [
    "Claim",
    "ClaimLink",
    "Clique",
    "Document",
    "FactDatabase",
    "FactDatabaseState",
    "Grounding",
    "Source",
    "Stance",
    "precision_improvement",
]
