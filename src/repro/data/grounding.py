"""Groundings: trusted sets of facts (§2.1, §3.3).

A grounding ``g : C -> {0, 1}`` labels every claim credible or
non-credible.  The validation process produces one grounding per iteration
(the *validation sequence* of §2.2); :class:`Grounding` is an immutable
value object over the dense claim indexing of a
:class:`~repro.data.database.FactDatabase`.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional

import numpy as np

from repro.errors import DataModelError


class Grounding:
    """An assignment of credibility values to all claims.

    Args:
        values: 0/1 value per claim, in database index order.
    """

    __slots__ = ("_values",)

    def __init__(self, values) -> None:
        array = np.asarray(values)
        if array.ndim != 1:
            raise DataModelError(
                f"grounding must be one-dimensional, got shape {array.shape}"
            )
        if array.size == 0:
            raise DataModelError("grounding must cover at least one claim")
        if not np.all(np.isin(array, (0, 1))):
            raise DataModelError("grounding values must be 0 or 1")
        self._values = array.astype(np.int8)
        self._values.setflags(write=False)

    @classmethod
    def from_probabilities(cls, probabilities, threshold: float = 0.5) -> "Grounding":
        """Threshold claim probabilities into a grounding.

        This is the straight-forward instantiation mentioned in §2.3
        (``g(c) = 1  iff  P(c) >= threshold``); the full process instead
        uses the sample-based ``decide`` function of Eq. 10, implemented in
        :func:`repro.inference.decide.decide_grounding`.
        """
        probabilities = np.asarray(probabilities, dtype=float)
        if not 0.0 <= threshold <= 1.0:
            raise DataModelError(f"threshold must be in [0, 1], got {threshold!r}")
        return cls((probabilities >= threshold).astype(np.int8))

    @property
    def values(self) -> np.ndarray:
        """Read-only 0/1 array, one entry per claim."""
        return self._values

    @property
    def num_claims(self) -> int:
        """Number of claims covered by the grounding."""
        return int(self._values.size)

    def __len__(self) -> int:
        return self.num_claims

    def __getitem__(self, claim_index: int) -> int:
        return int(self._values[claim_index])

    def __iter__(self) -> Iterator[int]:
        return iter(int(v) for v in self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Grounding):
            return NotImplemented
        return np.array_equal(self._values, other._values)

    def __hash__(self) -> int:
        return hash(self._values.tobytes())

    def credible_indices(self) -> np.ndarray:
        """Indices of claims labelled credible."""
        return np.flatnonzero(self._values == 1)

    def num_credible(self) -> int:
        """Number of claims labelled credible."""
        return int(self._values.sum())

    def differences(self, other: "Grounding") -> int:
        """|{c | g(c) != g'(c)}| — the CNG convergence signal of §6.1."""
        self._check_compatible(other)
        return int(np.count_nonzero(self._values != other._values))

    def precision(self, truth) -> float:
        """Fraction of claims whose value matches the ground truth.

        This is the paper's precision measure (§8.1):
        ``P_i = |{c | g_i(c) = g*(c)}| / |C|`` — agreement over *all*
        claims, not the information-retrieval notion.
        """
        truth = np.asarray(truth)
        self._check_length(truth.size)
        return float(np.count_nonzero(self._values == truth) / self._values.size)

    def as_mapping(self, claim_ids) -> Mapping[str, int]:
        """Render the grounding as ``{claim_id: value}``."""
        claim_ids = list(claim_ids)
        self._check_length(len(claim_ids))
        return {cid: int(v) for cid, v in zip(claim_ids, self._values)}

    def replace(self, claim_index: int, value: int) -> "Grounding":
        """Return a copy with one claim's value changed."""
        if value not in (0, 1):
            raise DataModelError(f"grounding values must be 0 or 1, got {value!r}")
        values = self._values.copy()
        values[claim_index] = value
        return Grounding(values)

    def _check_compatible(self, other: "Grounding") -> None:
        self._check_length(other.num_claims)

    def _check_length(self, size: int) -> None:
        if size != self._values.size:
            raise DataModelError(
                f"expected {self._values.size} claims, got {size}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Grounding(claims={self.num_claims}, credible={self.num_credible()})"
        )


def precision_improvement(precision: float, initial_precision: float) -> Optional[float]:
    """Relative precision improvement R_i = (P_i - P_0) / (1 - P_0) (§8.1).

    Returns ``None`` when the initial precision is already 1 (no headroom).
    """
    if not 0.0 <= precision <= 1.0:
        raise ValueError(f"precision must be in [0, 1], got {precision!r}")
    if not 0.0 <= initial_precision <= 1.0:
        raise ValueError(
            f"initial_precision must be in [0, 1], got {initial_precision!r}"
        )
    if initial_precision >= 1.0:
        return None
    return (precision - initial_precision) / (1.0 - initial_precision)
