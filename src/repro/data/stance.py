"""Document stances towards claims (§3.1, "Handling opposing stances").

A document may *support* or *refute* a claim.  The paper models refutation
through an opposing variable ``¬c`` per claim, tied to ``c`` by the
non-equality constraint of Eq. 3: a refuting document connects to ``¬c``
instead of ``c``.  Because ``¬c`` is a deterministic function of ``c``
(``¬c = 1 - c``), the constraint is equivalent to flipping the sign of the
clique's evidence, which is how :mod:`repro.crf` realises it.
"""

from __future__ import annotations

import enum


class Stance(enum.Enum):
    """Orientation of a document towards a claim."""

    SUPPORT = 1
    REFUTE = -1

    @property
    def sign(self) -> int:
        """``+1`` for support, ``-1`` for refutation.

        This sign multiplies the clique evidence in the CRF, implementing
        the opposing-variable construction of Eq. 3.
        """
        return self.value

    def flipped(self) -> "Stance":
        """The opposite stance."""
        return Stance.REFUTE if self is Stance.SUPPORT else Stance.SUPPORT

    @classmethod
    def from_sign(cls, sign: int) -> "Stance":
        """Build a stance from a ``+1`` / ``-1`` sign."""
        if sign == 1:
            return cls.SUPPORT
        if sign == -1:
            return cls.REFUTE
        raise ValueError(f"stance sign must be +1 or -1, got {sign!r}")
