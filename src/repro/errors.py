"""Exception hierarchy for the ``repro`` fact-checking framework.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can install a single ``except ReproError`` guard around framework
calls without accidentally swallowing unrelated failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the framework."""


class DataModelError(ReproError):
    """A structural problem with sources, documents, or claims.

    Raised, for example, when a document references an unknown source or
    claim, or when identifiers collide.
    """


class InferenceError(ReproError):
    """Credibility inference failed or was invoked on an invalid state."""


class ConvergenceError(InferenceError):
    """An iterative optimiser exhausted its iteration budget.

    Carries the best iterate found so far in :attr:`last_value` so callers
    may decide to continue with a sub-optimal result.
    """

    def __init__(self, message: str, last_value=None):
        super().__init__(message)
        self.last_value = last_value


class GuidanceError(ReproError):
    """A claim-selection strategy could not produce a candidate."""


class ValidationProcessError(ReproError):
    """The interactive validation process was misconfigured or misused."""


class BudgetExhaustedError(ValidationProcessError):
    """The user-effort budget was consumed before the goal was reached."""


class StreamingError(ReproError):
    """The streaming fact-checking pipeline received inconsistent input."""


class DatasetError(ReproError):
    """A dataset generator or loader was given invalid parameters."""


class SpecError(ReproError):
    """A declarative session configuration (``repro.api`` spec) is invalid.

    Carries the dotted path of the failing field in :attr:`field` when it
    is known (e.g. ``"inference.engine"`` or ``"effort.termination[0].kind"``)
    so callers — the HTTP service in particular — can point users at the
    exact offending spot of a nested spec document.
    """

    def __init__(self, message: str, field: str | None = None):
        super().__init__(message)
        self.field = field

    def __str__(self) -> str:
        message = self.args[0] if self.args else ""
        if self.field:
            return f"{self.field}: {message}"
        return str(message)

    def with_prefix(self, prefix: str) -> "SpecError":
        """A copy of this error with ``prefix`` prepended to the field path."""
        message = self.args[0] if self.args else ""
        field = prefix if not self.field else f"{prefix}.{self.field}"
        return SpecError(message, field=field)


class SessionError(ReproError):
    """A :class:`~repro.api.FactCheckSession` was used outside its lifecycle."""


class CheckpointError(SessionError):
    """A session checkpoint could not be written or restored."""


class ServiceError(ReproError):
    """The multi-session service layer (``repro.service``) failed a request."""


class SessionNotFoundError(ServiceError):
    """The service has no session registered under the requested id."""
