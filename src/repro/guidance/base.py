"""Strategy interface for claim selection (step 1 of the process, §2.3).

A :class:`SelectionStrategy` picks the next claim for which user input
shall be sought.  Strategies receive a :class:`SelectionContext` holding
everything the paper's selectors use: the database, the gain estimator,
the hybrid score ``z_{i-1}`` (Eq. 23), and a random generator for
tie-breaking / roulette decisions.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.data.database import FactDatabase
from repro.errors import GuidanceError
from repro.guidance.gain import GainEstimator, marginal_entropy_ranking


@dataclass
class SelectionContext:
    """Inputs available to a selection strategy at one iteration.

    Attributes:
        database: The probabilistic fact database Q.
        gains: Information-gain estimator bound to the current model.
        rng: Random generator (roulette wheel, tie breaking).
        hybrid_score: ``z_{i-1}`` of Eq. 23 — probability of choosing the
            source-driven strategy this iteration.
        iteration: 1-based index of the current validation iteration.
        candidate_limit: When set, gain-based strategies evaluate only the
            top-``limit`` unlabelled claims by marginal entropy (a
            practical pool restriction; ``None`` scans all of C^U as in
            the paper's definitions).
        deterministic_ties: Break score ties by lowest claim index instead
            of uniformly at random — used by experiments that compare
            validation orders across runs.
    """

    database: FactDatabase
    gains: GainEstimator
    rng: np.random.Generator
    hybrid_score: float = 0.0
    iteration: int = 1
    candidate_limit: Optional[int] = None
    deterministic_ties: bool = False

    def candidates(self) -> np.ndarray:
        """The unlabelled claims a strategy may select from."""
        unlabelled = self.database.unlabelled_indices
        if unlabelled.size == 0:
            raise GuidanceError("no unlabelled claims remain")
        if self.candidate_limit is None or unlabelled.size <= self.candidate_limit:
            return unlabelled
        ranked = marginal_entropy_ranking(self.database, unlabelled)
        return ranked[: self.candidate_limit]


class SelectionStrategy(abc.ABC):
    """Base class of all claim-selection strategies."""

    #: Short name used in experiment outputs (matches the paper's legends).
    name: str = "base"

    @abc.abstractmethod
    def select(self, context: SelectionContext) -> int:
        """Return the index of the claim to validate next."""

    def rank(self, context: SelectionContext, count: int) -> Sequence[int]:
        """Return up to ``count`` claims, best first.

        The default implementation repeatedly calls :meth:`select` on a
        shrinking candidate set; strategies with a natural scoring
        override this with a direct ranking.  Used by the skipping
        simulation of §8.5 (validating the second-best claim).
        """
        scores = self.scores(context)
        if scores is None:
            raise GuidanceError(
                f"strategy {self.name!r} does not support ranking"
            )
        candidates, values = scores
        order = np.argsort(-np.asarray(values), kind="stable")
        return [int(candidates[i]) for i in order[:count]]

    def scores(self, context: SelectionContext):
        """Optional (candidates, scores) pair; ``None`` when undefined."""
        return None
