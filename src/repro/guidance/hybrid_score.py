"""The hybrid-strategy score ``z_i`` (§4.4, Eq. 22–23).

The validation process maintains two signals:

* the *error rate* ε_i — disagreement between the user's input for the
  selected claim and the model's previous belief about it (Eq. 22), and
* the *unreliable-source ratio* r_i — the fraction of sources whose
  inferred trust falls below ½ (Alg. 1, line 17).

The score ``z_i = 1 - exp(-(ε_i (1 - h_i) + r_i h_i))`` with the input
ratio ``h_i = i / |C|`` mediates between them: early on (small ``h_i``)
the error rate dominates, later the unreliable-source ratio does.
"""

from __future__ import annotations

import math

from repro.utils.checks import check_probability


def error_rate(previous_probability: float, previous_grounding_value: int) -> float:
    """ε_i per Eq. 22.

    Args:
        previous_probability: ``P_{i-1}(c)`` — the model's belief about the
            selected claim before the user validated it.
        previous_grounding_value: ``g_{i-1}(c)`` — the claim's value in the
            previous grounding.

    Returns:
        ``1 - P_{i-1}(c)`` when the previous grounding deemed the claim
        credible, else ``P_{i-1}(c)``.
    """
    probability = check_probability(previous_probability, "previous_probability")
    if previous_grounding_value not in (0, 1):
        raise ValueError(
            f"grounding value must be 0 or 1, got {previous_grounding_value!r}"
        )
    if previous_grounding_value == 1:
        return 1.0 - probability
    return probability


def hybrid_score(
    error: float, unreliable_ratio: float, input_ratio: float
) -> float:
    """``z_i`` per Eq. 23.

    Args:
        error: ε_i, the error rate of the previous grounding.
        unreliable_ratio: r_i, the fraction of unreliable sources.
        input_ratio: h_i = i / |C|, the fraction of claims validated.

    Returns:
        The probability of preferring the source-driven strategy in the
        next iteration, in [0, 1).
    """
    error = check_probability(error, "error")
    unreliable_ratio = check_probability(unreliable_ratio, "unreliable_ratio")
    input_ratio = check_probability(input_ratio, "input_ratio")
    exponent = error * (1.0 - input_ratio) + unreliable_ratio * input_ratio
    return 1.0 - math.exp(-exponent)
