"""Information-gain machinery for user guidance (§4.2–§4.3).

The benefit of validating claim ``c`` is the expected uncertainty reduction

    IG(c) = H(Q) - [ P(c) · H(Q+) + (1 - P(c)) · H(Q-) ]        (Eq. 14–15)

where ``Q+`` / ``Q-`` are the databases obtained by *hypothetically*
confirming / refuting ``c`` and re-running light credibility inference.
:class:`GainEstimator` implements this for both the claim-configuration
entropy ``H_C`` (information-driven guidance) and the source-trust entropy
``H_S`` (source-driven guidance), with the efficiency levers of the paper:

* **Scalable entropy** (§4.1) — the linear approximation of Eq. 13 instead
  of exact enumeration.
* **Graph partitioning** (§5.1) — hypothetical input on ``c`` can only
  affect claims in ``c``'s connected component, so inference and entropy
  differences are restricted to it.
* **Parallelisation** (§5.1) — gains of different candidates are
  independent and evaluated concurrently.

Hypothetical inference comes in two flavours: ``"meanfield"`` (default) —
a few damped fixed-point updates of the marginals, deterministic and
vector-fast; ``"gibbs"`` — a short throwaway Gibbs chain, closer to the
paper's sampling-based estimate but noisier and slower (the ``origin``
configuration of Fig. 2).
"""

from __future__ import annotations

import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.crf.entropy import (
    binary_entropy,
    component_entropy,
    MAX_EXACT_COMPONENT,
)
from repro.crf.gibbs import GibbsSampler
from repro.crf.model import CrfModel
from repro.crf.partition import ComponentIndex
from repro.crf.potentials import sigmoid
from repro.data.database import FactDatabase
from repro.errors import GuidanceError
from repro.utils.rng import RandomState, derive_rng, ensure_rng

#: Supported hypothetical-inference modes.
INFERENCE_MODES = ("meanfield", "gibbs")
#: Supported entropy estimators.
ENTROPY_METHODS = ("approx", "exact")


@dataclass
class GainConfig:
    """Configuration of information-gain evaluation.

    Attributes:
        inference_mode: ``"meanfield"`` or ``"gibbs"`` hypothetical updates.
        entropy_method: ``"approx"`` (Eq. 13) or ``"exact"`` (component
            enumeration with fallback to the approximation).
        localize: Restrict hypothetical inference and entropy differences
            to the candidate's connected component (§5.1).
        meanfield_steps: Fixed-point iterations in mean-field mode.
        damping: Mean-field damping factor in [0, 1); higher is smoother.
        gibbs_burn_in / gibbs_samples: Schedule of the throwaway chain in
            Gibbs mode.
        parallel: Evaluate candidate gains on a thread pool.  Effective
            in mean-field mode (mutation-free, so candidates genuinely
            run concurrently); in Gibbs mode the hypothetical chains
            must pin labels in the shared database and are serialised by
            a lock, so ``parallel`` buys nothing there —
            :class:`GainEstimator` emits a :class:`RuntimeWarning`
            explaining this instead of quietly running sequentially.
        max_workers: Thread-pool size when ``parallel`` is set.
    """

    inference_mode: str = "meanfield"
    entropy_method: str = "approx"
    localize: bool = True
    meanfield_steps: int = 3
    damping: float = 0.3
    gibbs_burn_in: int = 3
    gibbs_samples: int = 8
    parallel: bool = False
    max_workers: int = 4

    def __post_init__(self) -> None:
        if self.inference_mode not in INFERENCE_MODES:
            raise GuidanceError(
                f"inference_mode must be one of {INFERENCE_MODES}, "
                f"got {self.inference_mode!r}"
            )
        if self.entropy_method not in ENTROPY_METHODS:
            raise GuidanceError(
                f"entropy_method must be one of {ENTROPY_METHODS}, "
                f"got {self.entropy_method!r}"
            )
        if not 0.0 <= self.damping < 1.0:
            raise GuidanceError(f"damping must be in [0, 1), got {self.damping}")
        if self.meanfield_steps <= 0:
            raise GuidanceError("meanfield_steps must be positive")


class GainEstimator:
    """Evaluates IG_C (Eq. 15) and IG_S (Eq. 20) for candidate claims.

    Args:
        model: The CRF model (weights are read, never modified).
        components: Component index for localisation.
        config: Evaluation configuration.
        engine: Hot-path engine for Gibbs-mode hypothetical inference;
            pass the owning inference engine so gain evaluation runs the
            same backend as the E-step (defaults to the model's default
            backend).
        seed: Seed or generator (only Gibbs mode consumes randomness).
    """

    def __init__(
        self,
        model: CrfModel,
        components: Optional[ComponentIndex] = None,
        config: Optional[GainConfig] = None,
        engine=None,
        seed: RandomState = None,
    ) -> None:
        self._model = model
        self._database = model.database
        self._config = config if config is not None else GainConfig()
        self._components = (
            components if components is not None else ComponentIndex(self._database)
        )
        self._engine = engine
        self._rng = ensure_rng(seed)
        # Gibbs-mode hypothetical inference must pin its label in the
        # shared database; the lock keeps parallel gain evaluation from
        # observing another candidate's hypothetical state.
        self._state_lock = threading.Lock()
        if self._config.parallel and self._config.inference_mode == "gibbs":
            warnings.warn(
                "GainConfig(parallel=True) has no effect in Gibbs mode: "
                "hypothetical chains pin labels in the shared database "
                "and are serialised by a lock, so candidates run "
                "sequentially despite the thread pool.  Use "
                "inference_mode='meanfield' for parallel gain "
                "evaluation, or drop parallel=True.",
                RuntimeWarning,
                stacklevel=2,
            )

    @property
    def config(self) -> GainConfig:
        """The active configuration."""
        return self._config

    @property
    def components(self) -> ComponentIndex:
        """Connected-component index used for localisation."""
        return self._components

    # ------------------------------------------------------------------
    # Public gains
    # ------------------------------------------------------------------

    def information_gain(self, claim_index: int) -> float:
        """IG_C(c): expected claim-entropy reduction of validating ``c``."""
        return self._gain(claim_index, source_driven=False)

    def source_gain(self, claim_index: int) -> float:
        """IG_S(c): expected source-entropy reduction of validating ``c``."""
        return self._gain(claim_index, source_driven=True)

    def information_gains(self, claim_indices: Sequence[int]) -> np.ndarray:
        """Vector of IG_C over candidates, optionally in parallel."""
        return self._gains(claim_indices, source_driven=False)

    def source_gains(self, claim_indices: Sequence[int]) -> np.ndarray:
        """Vector of IG_S over candidates, optionally in parallel."""
        return self._gains(claim_indices, source_driven=True)

    def _gains(self, claim_indices: Sequence[int], source_driven: bool) -> np.ndarray:
        claim_indices = list(claim_indices)
        # The baseline (label-free) inference result per component is shared
        # by all candidates of that component within this call.
        self._baseline_cache: dict = {}
        try:
            if self._config.parallel and len(claim_indices) > 1:
                with ThreadPoolExecutor(
                    max_workers=self._config.max_workers
                ) as pool:
                    values = list(
                        pool.map(
                            lambda c: self._gain(int(c), source_driven),
                            claim_indices,
                        )
                    )
                return np.asarray(values)
            return np.asarray(
                [self._gain(int(c), source_driven) for c in claim_indices]
            )
        finally:
            self._baseline_cache = {}

    # ------------------------------------------------------------------
    # Core computation
    # ------------------------------------------------------------------

    def _scope(self, claim_index: int) -> np.ndarray:
        """Claims whose probabilities hypothetical input on ``c`` may move."""
        if self._config.localize:
            return self._components.component_of_claim(claim_index)
        return np.arange(self._database.num_claims, dtype=np.intp)

    def _gain(self, claim_index: int, source_driven: bool) -> float:
        database = self._database
        if database.is_labelled(claim_index):
            return 0.0
        scope = self._scope(claim_index)
        # The baseline H(Q) must be measured after the *same* light
        # inference operator as H(Q+)/H(Q-), only without the hypothetical
        # label — otherwise the inference's smoothing of the marginals
        # masquerades as (negative) information gain for every candidate.
        base = self._baseline_marginals(claim_index, scope)
        p = float(base[claim_index])

        positive = self._hypothetical_marginals(claim_index, 1, scope, base)
        negative = self._hypothetical_marginals(claim_index, 0, scope, base)

        if source_driven:
            current = self._source_entropy(base, scope)
            plus = self._source_entropy(positive, scope)
            minus = self._source_entropy(negative, scope)
        else:
            current = self._claim_entropy(base, scope)
            plus = self._claim_entropy(positive, scope)
            minus = self._claim_entropy(negative, scope)
        conditional = p * plus + (1.0 - p) * minus
        return float(current - conditional)

    def _baseline_marginals(
        self, claim_index: int, scope: np.ndarray
    ) -> np.ndarray:
        """Label-free light inference over the candidate's scope.

        Cached per component for the duration of one batched-gains call
        (the result is identical for all candidates of a component).
        """
        cache = getattr(self, "_baseline_cache", None)
        key = (
            self._components.component_of(claim_index)
            if self._config.localize
            else -1
        )
        if cache is not None and key in cache:
            return cache[key]
        if self._config.inference_mode == "meanfield":
            marginals = self._mean_field(scope)
        else:
            # The throwaway chain reads the shared database state and the
            # shared generator; serialise it like the hypothetical path.
            with self._state_lock:
                marginals = self._gibbs(scope)
        if cache is not None:
            cache[key] = marginals
        return marginals

    def _hypothetical_marginals(
        self,
        claim_index: int,
        value: int,
        scope: np.ndarray,
        base: np.ndarray,
    ) -> np.ndarray:
        """Marginals of ``Q+`` / ``Q-`` under light inference."""
        if self._config.inference_mode == "meanfield":
            # The hypothetical label is pinned inside the fixed point, so
            # the shared database is never mutated — safe to parallelise.
            return self._mean_field(scope, pin=(claim_index, value))
        with self._state_lock:
            snapshot = self._database.clone_state()
            try:
                self._database.label(claim_index, value)
                marginals = self._gibbs(scope)
            finally:
                self._database.restore_state(snapshot)
        return marginals

    def _mean_field(
        self,
        scope: np.ndarray,
        pin: Optional[tuple] = None,
    ) -> np.ndarray:
        """Damped mean-field fixed point restricted to ``scope``.

        Args:
            scope: Claims whose marginals may move.
            pin: Optional ``(claim_index, value)`` hypothetical label,
                held fixed during the iteration exactly as a real label
                would be.
        """
        database = self._database
        # Snapshot state under the lock: the exact-entropy path swaps the
        # database probabilities temporarily on other threads.
        with self._state_lock:
            marginals = np.asarray(database.probabilities, dtype=float).copy()
            labelled = database.labels
        if pin is not None:
            pinned_claim, pinned_value = pin
            marginals[pinned_claim] = float(pinned_value)
            free = np.asarray(
                [
                    int(c)
                    for c in scope
                    if int(c) not in labelled and int(c) != int(pinned_claim)
                ],
                dtype=np.intp,
            )
        else:
            free = np.asarray(
                [int(c) for c in scope if int(c) not in labelled],
                dtype=np.intp,
            )
        if free.size == 0:
            return marginals
        damping = self._config.damping
        for _ in range(self._config.meanfield_steps):
            logits = self._model.marginal_logits(marginals)
            updated = sigmoid(logits[free])
            marginals[free] = damping * marginals[free] + (1.0 - damping) * updated
        return marginals

    def _gibbs(self, scope: np.ndarray) -> np.ndarray:
        """Short throwaway Gibbs chain restricted to ``scope``."""
        sampler = GibbsSampler(
            self._model,
            burn_in=self._config.gibbs_burn_in,
            num_samples=self._config.gibbs_samples,
            seed=derive_rng(self._rng, 0),
            engine=self._engine,
        )
        result = sampler.sample(claim_subset=scope)
        return result.marginals

    # ------------------------------------------------------------------
    # Entropy restricted to a scope
    # ------------------------------------------------------------------

    #: Enumeration cap of the exact-entropy path.  Tighter than the global
    #: :data:`~repro.crf.entropy.MAX_EXACT_COMPONENT` because the gain
    #: estimator enumerates once per candidate and hypothesis (2 × |C^U|
    #: times per iteration), not once per database.
    _EXACT_ENTROPY_CAP = 12

    def _claim_entropy(self, marginals: np.ndarray, scope: np.ndarray) -> float:
        """H_C over the scope (entropy outside cancels in differences)."""
        if self._config.entropy_method == "exact":
            with self._state_lock:
                labelled = self._database.labels
            free = np.asarray(
                [int(c) for c in scope if int(c) not in labelled], dtype=np.intp
            )
            if 0 < free.size <= min(self._EXACT_ENTROPY_CAP, MAX_EXACT_COMPONENT):
                # component_entropy reads state through the database, so
                # the temporary probability swap must be serialised.
                with self._state_lock:
                    snapshot = self._database.clone_state()
                    try:
                        self._database.set_probabilities(marginals)
                        return component_entropy(self._model, free)
                    finally:
                        self._database.restore_state(snapshot)
        return float(binary_entropy(marginals[scope]).sum())

    def _source_entropy(self, marginals: np.ndarray, scope: np.ndarray) -> float:
        """H_S over sources touching the scope (Eq. 18, Eq. 17).

        Source trust is estimated from the thresholded marginals — the
        light-inference surrogate of the grounding of Eq. 17.
        """
        database = self._database
        grounding_values = (marginals >= 0.5).astype(np.int8)
        # Locked snapshot: gibbs-mode hypotheticals on other threads pin
        # transient labels in the shared database.
        with self._state_lock:
            labels = database.labels
        for claim_idx, label in labels.items():
            grounding_values[claim_idx] = label
        sources: set = set()
        for claim in scope:
            sources.update(int(s) for s in database.sources_of_claim(int(claim)))
        total = 0.0
        for source_index in sources:
            claims = database.claims_of_source(source_index)
            if claims.size == 0:
                continue
            trust = float(grounding_values[claims].mean())
            total += float(binary_entropy(np.asarray([trust]))[0])
        return total


def marginal_entropy_ranking(
    database: FactDatabase, candidates: Iterable[int]
) -> np.ndarray:
    """Candidates sorted by descending marginal entropy of ``P(c)``.

    Used by the *uncertainty* baseline of §8.4 and as a pre-filter when a
    candidate pool limit is configured.
    """
    candidates = np.asarray(list(candidates), dtype=np.intp)
    probabilities = np.asarray(database.probabilities)[candidates]
    entropies = binary_entropy(probabilities)
    order = np.argsort(-entropies, kind="stable")
    return candidates[order]
