"""The five claim-selection strategies evaluated in §8.4.

* :class:`RandomStrategy` — the ``random`` baseline: uniform choice.
* :class:`UncertaintyStrategy` — the ``uncertainty`` baseline: the claim
  whose own credibility probability has maximal entropy.
* :class:`InformationGainStrategy` — ``info`` (§4.2, Eq. 16): maximal
  expected reduction of the claim-configuration entropy.
* :class:`SourceGainStrategy` — ``source`` (§4.3, Eq. 21): maximal
  expected reduction of the source-trust entropy.
* :class:`HybridStrategy` — ``hybrid`` (§4.4): roulette-wheel choice
  between the two gain-driven strategies using the score ``z_{i-1}``
  maintained by the validation process (Alg. 1, lines 7–9).
"""

from __future__ import annotations

import numpy as np

from repro.crf.entropy import binary_entropy
from repro.guidance.base import SelectionContext, SelectionStrategy


class RandomStrategy(SelectionStrategy):
    """Uniformly random selection among unlabelled claims."""

    name = "random"

    def select(self, context: SelectionContext) -> int:
        candidates = context.database.unlabelled_indices
        return int(context.rng.choice(candidates))

    def rank(self, context: SelectionContext, count: int):
        candidates = context.database.unlabelled_indices
        permuted = context.rng.permutation(candidates)
        return [int(c) for c in permuted[:count]]


class UncertaintyStrategy(SelectionStrategy):
    """Selects the most 'problematic' claim by marginal entropy (§8.4)."""

    name = "uncertainty"

    def scores(self, context: SelectionContext):
        candidates = context.database.unlabelled_indices
        probabilities = np.asarray(context.database.probabilities)[candidates]
        return candidates, binary_entropy(probabilities)

    def select(self, context: SelectionContext) -> int:
        candidates, values = self.scores(context)
        return int(candidates[_argmax(values, context)])


class InformationGainStrategy(SelectionStrategy):
    """Information-driven guidance: argmax IG_C (Eq. 16)."""

    name = "info"

    def scores(self, context: SelectionContext):
        candidates = context.candidates()
        return candidates, context.gains.information_gains(candidates)

    def select(self, context: SelectionContext) -> int:
        candidates, values = self.scores(context)
        return int(candidates[_argmax(values, context)])


class SourceGainStrategy(SelectionStrategy):
    """Source-driven guidance: argmax IG_S (Eq. 21)."""

    name = "source"

    def scores(self, context: SelectionContext):
        candidates = context.candidates()
        return candidates, context.gains.source_gains(candidates)

    def select(self, context: SelectionContext) -> int:
        candidates, values = self.scores(context)
        return int(candidates[_argmax(values, context)])


class HybridStrategy(SelectionStrategy):
    """Dynamic roulette-wheel mix of info- and source-driven guidance (§4.4).

    With probability ``z_{i-1}`` (Eq. 23) the source-driven strategy is
    used, otherwise the information-driven one — Alg. 1, lines 7–9.  The
    score itself is maintained by the validation process, which observes
    the error rate and the unreliable-source ratio.
    """

    name = "hybrid"

    def __init__(self) -> None:
        self._info = InformationGainStrategy()
        self._source = SourceGainStrategy()
        self.last_choice: str = ""

    def select(self, context: SelectionContext) -> int:
        use_source = context.rng.random() < context.hybrid_score
        strategy = self._source if use_source else self._info
        self.last_choice = strategy.name
        return strategy.select(context)

    def rank(self, context: SelectionContext, count: int):
        use_source = context.rng.random() < context.hybrid_score
        strategy = self._source if use_source else self._info
        self.last_choice = strategy.name
        return strategy.rank(context, count)


#: Registry keyed by the paper's legend names.
STRATEGIES = {
    "random": RandomStrategy,
    "uncertainty": UncertaintyStrategy,
    "info": InformationGainStrategy,
    "source": SourceGainStrategy,
    "hybrid": HybridStrategy,
}


def make_strategy(name: str) -> SelectionStrategy:
    """Instantiate a strategy by its paper legend name."""
    try:
        factory = STRATEGIES[name]
    except KeyError:
        known = ", ".join(sorted(STRATEGIES))
        raise ValueError(f"unknown strategy {name!r}; known: {known}") from None
    return factory()


def _argmax(values: np.ndarray, context: SelectionContext) -> int:
    """Argmax; ties break randomly (default) or by lowest position."""
    values = np.asarray(values, dtype=float)
    peak = values.max()
    ties = np.flatnonzero(values >= peak - 1e-12)
    if context.deterministic_ties:
        return int(ties[0])
    return int(context.rng.choice(ties))
