"""User guidance (§4): uncertainty, information gains, selection strategies."""

from repro.guidance.base import SelectionContext, SelectionStrategy
from repro.guidance.gain import (
    ENTROPY_METHODS,
    INFERENCE_MODES,
    GainConfig,
    GainEstimator,
    marginal_entropy_ranking,
)
from repro.guidance.hybrid_score import error_rate, hybrid_score
from repro.guidance.strategies import (
    STRATEGIES,
    HybridStrategy,
    InformationGainStrategy,
    RandomStrategy,
    SourceGainStrategy,
    UncertaintyStrategy,
    make_strategy,
)

__all__ = [
    "ENTROPY_METHODS",
    "INFERENCE_MODES",
    "STRATEGIES",
    "GainConfig",
    "GainEstimator",
    "HybridStrategy",
    "InformationGainStrategy",
    "RandomStrategy",
    "SelectionContext",
    "SelectionStrategy",
    "SourceGainStrategy",
    "UncertaintyStrategy",
    "error_rate",
    "hybrid_score",
    "make_strategy",
    "marginal_entropy_ranking",
]
