"""Information-gain evaluation for user guidance (§4.2–§4.3, §5.1).

The package splits the gain machinery into focused modules:

* :mod:`.config` — :class:`GainConfig` and the mode/method registries.
* :mod:`.snapshot` — :class:`StateSnapshot` / :class:`HypotheticalView`,
  the read-only state captures that let hypothetical labels be evaluated
  without mutating the shared database.
* :mod:`.executor` — the snapshot-isolated parallel executor: guarded
  baseline cache, worker-local engine pool, ordered thread map.
* :mod:`.cache` — :class:`ComponentGainCache`, cross-call gain reuse
  keyed by per-component generation counters.
* :mod:`.estimator` — :class:`GainEstimator` itself and the
  marginal-entropy candidate ranking.
"""

from repro.guidance.gain.cache import ComponentGainCache
from repro.guidance.gain.config import (
    ENTROPY_METHODS,
    INFERENCE_MODES,
    GainConfig,
)
from repro.guidance.gain.estimator import GainEstimator, marginal_entropy_ranking
from repro.guidance.gain.snapshot import HypotheticalView, StateSnapshot

__all__ = [
    "ComponentGainCache",
    "ENTROPY_METHODS",
    "GainConfig",
    "GainEstimator",
    "HypotheticalView",
    "INFERENCE_MODES",
    "StateSnapshot",
    "marginal_entropy_ranking",
]
