"""Snapshot-isolated parallel execution of candidate gain evaluations.

Three small pieces make §5.1's "gains of different candidates are
independent" actually exploitable:

* :class:`BaselineCache` — a guarded per-component cache of the label-free
  baseline marginals.  The legacy implementation stashed a plain dict on
  the estimator and filled it without coordination, so two workers hitting
  the same component both ran the (expensive) baseline inference and the
  attribute itself raced across overlapping calls.  Here the cache is an
  explicit argument and the fill is guarded per key: exactly one thread
  computes a component's baseline, the rest block on it.
* :class:`EnginePool` — worker-local inference engines.  The sharded
  backend's compiled merge kernel releases the GIL for the whole sweep,
  but an engine instance holds a single-slot free-set gather cache, so
  concurrent sweeps through one engine would thrash it.  The pool hands
  every worker its own in-process ``ShardedEngine`` (``num_shards=1`` —
  kernel, no fork pool), constructed directly rather than through the
  memoising :func:`~repro.inference.engine.create_engine`.
* :func:`map_ordered` — a results-in-input-order thread map.  Ordering of
  the output array is the only scheduling constraint; the per-candidate
  RNG streams are pure functions of ``(entropy, candidate, value)``, so
  any execution order produces bit-identical gains.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Sequence, TypeVar

import numpy as np

from repro.crf.model import CrfModel
from repro.inference.engine.base import EngineConfig

T = TypeVar("T")
R = TypeVar("R")


class BaselineCache:
    """Per-key once-only computation of baseline marginals.

    One instance lives for exactly one batched-gains call and is passed
    explicitly to every worker — there is no shared estimator attribute
    to race on, and the per-key lock guarantees a baseline is computed
    once no matter how many candidates of the component arrive at once.
    """

    #: Call-scoped scratch structure, never checkpointed.
    _STATE_EXCLUDED = ("_lock", "_results", "_key_locks")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._results: Dict[int, np.ndarray] = {}
        self._key_locks: Dict[int, threading.Lock] = {}

    def get_or_compute(
        self, key: int, compute: Callable[[], np.ndarray]
    ) -> np.ndarray:
        """Return the cached value for ``key``, computing it at most once."""
        with self._lock:
            if key in self._results:
                return self._results[key]
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            with self._lock:
                if key in self._results:
                    return self._results[key]
            value = compute()
            with self._lock:
                self._results[key] = value
            return value


class EnginePool:
    """Lazily grown pool of worker-local single-shard engines.

    Engines are created on demand up to the worker count and reused across
    batched-gains calls; :meth:`close` releases them all.  Constructed
    directly (not via ``create_engine``) so each lease holds a private
    gather cache — the memoised per-model engine would be shared.
    """

    #: Process-local runtime resources, never part of a checkpoint.
    _STATE_EXCLUDED = ("_model", "_lock", "_idle")

    def __init__(self, model: CrfModel) -> None:
        self._model = model
        self._lock = threading.Lock()
        self._idle: List[object] = []

    def _build_engine(self):
        from repro.inference.engine.sharded import ShardedEngine

        return ShardedEngine(
            self._model, EngineConfig(backend="sharded", num_shards=1)
        )

    @contextmanager
    def lease(self) -> Iterator[object]:
        """Borrow an engine for the duration of the ``with`` block."""
        with self._lock:
            engine = self._idle.pop() if self._idle else self._build_engine()
        try:
            yield engine
        finally:
            with self._lock:
                self._idle.append(engine)

    def close(self) -> None:
        """Release every pooled engine; the pool stays usable (lazy)."""
        with self._lock:
            idle, self._idle = self._idle, []
        for engine in idle:
            engine.close()  # type: ignore[attr-defined]


def map_ordered(
    fn: Callable[[T], R],
    items: Sequence[T],
    max_workers: int,
) -> List[R]:
    """Apply ``fn`` over ``items`` on a thread pool, results in input order.

    Falls back to a plain loop for a single worker or a single item —
    same results either way, the streams are schedule-independent.
    """
    if max_workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(fn, items))
