"""Cross-iteration gain caching keyed by component generations (§5.1).

With ``localize=True`` a candidate's gain is a function of its connected
component's state only: hypothetical input on ``c`` cannot move marginals
across component boundaries, so a cached gain stays valid until either a
label lands in the candidate's component or the model weights change
(re-training shifts every marginal).  :class:`ComponentGainCache` tracks
both: a generation counter per component, bumped whenever the observed
label set changes inside it, and a weights fingerprint that clears the
whole cache on mismatch.

The cache makes repeated gain queries inside one guidance round — greedy
batch selection, strategy ranking, skip-handling re-ranks — evaluate each
candidate once, and across rounds re-evaluates only the components the
previous batch actually touched.
"""

from __future__ import annotations

import threading
from typing import Callable, Mapping, Optional, Tuple


class ComponentGainCache:
    """Per-component generation counters over cached candidate gains.

    Thread-safe: the parallel executor stores values from worker threads.
    """

    #: Runtime-only acceleration structure: dropped and rebuilt from the
    #: database on resume, never part of a checkpoint.
    _STATE_EXCLUDED = (
        "_lock",
        "_generations",
        "_values",
        "_seen_labels",
        "_weights_token",
        "hits",
        "misses",
        "invalidations",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._generations: dict = {}
        # (claim, source_driven) -> (component generation, gain)
        self._values: dict = {}
        self._seen_labels: Optional[frozenset] = None
        self._weights_token: Optional[bytes] = None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def sync(
        self,
        labels: Mapping[int, int],
        component_of: Callable[[int], int],
        weights_token: bytes,
    ) -> None:
        """Observe the current labels/weights and dirty what they moved.

        Args:
            labels: The database's current label mapping.
            component_of: Maps a claim index to its component key.
            weights_token: Fingerprint of the model weights; any change
                clears the cache entirely.
        """
        with self._lock:
            current = frozenset(labels)
            if self._weights_token != weights_token:
                if self._weights_token is not None:
                    self.invalidations += 1
                self._weights_token = weights_token
                self._generations.clear()
                self._values.clear()
                self._seen_labels = current
                return
            if self._seen_labels is None:
                self._seen_labels = current
                return
            changed = current ^ self._seen_labels
            for claim in changed:
                component = component_of(int(claim))
                self._generations[component] = (
                    self._generations.get(component, 0) + 1
                )
                self.invalidations += 1
            self._seen_labels = current

    def generation(self, component: int) -> int:
        """Current generation counter of a component."""
        with self._lock:
            return self._generations.get(component, 0)

    def lookup(
        self, claim: int, source_driven: bool, component: int
    ) -> Optional[float]:
        """Cached gain for the candidate, or ``None`` when dirty/missing."""
        key = (int(claim), bool(source_driven))
        with self._lock:
            entry: Optional[Tuple[int, float]] = self._values.get(key)
            if entry is None or entry[0] != self._generations.get(component, 0):
                self.misses += 1
                return None
            self.hits += 1
            return entry[1]

    def store(
        self, claim: int, source_driven: bool, component: int, value: float
    ) -> None:
        """Record an evaluated gain under the component's generation."""
        key = (int(claim), bool(source_driven))
        with self._lock:
            self._values[key] = (self._generations.get(component, 0), value)
