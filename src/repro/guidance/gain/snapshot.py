"""Read-only database snapshots and hypothetical-label overlay views.

Hypothetical inference asks "what would the marginals be if claim ``c``
were labelled ``v``?" — a question the legacy path answered by *mutating*
the shared :class:`~repro.data.database.FactDatabase` (pin the label, run
the chain, restore), which forces every candidate through one lock.

:class:`StateSnapshot` captures the mutable database state (probabilities
and labels) once per batched-gains call; :class:`HypotheticalView` overlays
pinned labels on that snapshot without touching the parent.  A view mimics
the exact read surface the Gibbs sampler and the mean-field fixed point
use — ``probabilities``, ``label_arrays()``, ``labelled_indices`` — and
reproduces, value for value, what :meth:`FactDatabase.label` followed by
those reads would have produced, so overlay-based evaluation is
bit-for-bit interchangeable with mutate-and-restore.  The structural
arrays (CSR pair tables, clique matrices) are never copied: they live on
the model/database and are shared read-only across all views and threads.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

import numpy as np

from repro.analysis.contracts import derived_cache
from repro.data.database import FactDatabase


class StateSnapshot:
    """Immutable capture of a database's probabilities and labels.

    Shared read-only by every candidate of one batched-gains call (and
    every worker thread), so the per-candidate cost of isolation is one
    overlay, not one database copy.
    """

    #: Runtime-only value object: never checkpointed — snapshots live for
    #: one batched-gains call and are recaptured from the database.
    _STATE_EXCLUDED = (
        "probabilities",
        "label_indices",
        "label_values",
        "labels",
        "num_claims",
    )

    def __init__(
        self,
        probabilities: np.ndarray,
        label_indices: np.ndarray,
        label_values: np.ndarray,
        labels: Mapping[int, int],
    ) -> None:
        self.probabilities = probabilities
        self.label_indices = label_indices
        self.label_values = label_values
        self.labels = dict(labels)
        self.num_claims = int(probabilities.size)

    @classmethod
    def capture(cls, database: FactDatabase) -> "StateSnapshot":
        """Snapshot the database's mutable state (one probabilities copy)."""
        probabilities = np.asarray(database.probabilities, dtype=float).copy()
        probabilities.flags.writeable = False
        label_indices, label_values = database.label_arrays()
        return cls(probabilities, label_indices, label_values, database.labels)

    def label_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """C^L as parallel sorted ``(indices, values)`` arrays."""
        return self.label_indices, self.label_values

    @property
    def labelled_indices(self) -> np.ndarray:
        return self.label_indices

    @property
    def unlabelled_indices(self) -> np.ndarray:
        mask = np.ones(self.num_claims, dtype=bool)
        if self.label_indices.size:
            mask[self.label_indices] = False
        return np.flatnonzero(mask)


class HypotheticalView:
    """A snapshot with hypothetical labels pinned, parent left untouched.

    Args:
        snapshot: The shared base state.
        pins: Hypothetical ``{claim_index: value}`` labels overlaid on
            the snapshot — typically one pin per gain candidate, several
            for the exact batch-gain enumeration of §6.2.

    The derived arrays are materialised lazily and cached: the backing
    snapshot and pins are immutable for the life of the view, so the
    caches can never go stale.
    """

    #: Runtime-only value object (see :class:`StateSnapshot`).
    _STATE_EXCLUDED = ("_snapshot", "_pins", "_probabilities", "_label_arrays")

    def __init__(
        self, snapshot: StateSnapshot, pins: Optional[Mapping[int, int]] = None
    ) -> None:
        self._snapshot = snapshot
        self._pins = {int(c): int(v) for c, v in (pins or {}).items()}
        self._probabilities: Optional[np.ndarray] = None
        self._label_arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @property
    def num_claims(self) -> int:
        return self._snapshot.num_claims

    @property
    def pins(self) -> Mapping[int, int]:
        """The overlaid hypothetical labels."""
        return dict(self._pins)

    @derived_cache(
        "view_probabilities",
        backing=("_snapshot", "_pins"),
        storage="_probabilities",
    )
    def _materialize_probabilities(self) -> np.ndarray:
        if self._probabilities is None:
            values = self._snapshot.probabilities.copy()
            for claim, value in self._pins.items():
                # Mirrors FactDatabase.label: P(c) becomes the label value.
                values[claim] = float(value)
            values.flags.writeable = False
            self._probabilities = values
        return self._probabilities

    @property
    def probabilities(self) -> np.ndarray:
        """Snapshot probabilities with the pinned labels imposed."""
        if not self._pins:
            return self._snapshot.probabilities
        return self._materialize_probabilities()

    @derived_cache(
        "view_label_arrays",
        backing=("_snapshot", "_pins"),
        storage="_label_arrays",
    )
    def label_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Sorted ``(indices, values)`` arrays of labels plus pins.

        Byte-compatible with :meth:`FactDatabase.label_arrays` after
        labelling the pinned claims: same sort order, same dtypes.
        """
        if not self._pins:
            return self._snapshot.label_arrays()
        if self._label_arrays is None:
            merged = dict(self._snapshot.labels)
            merged.update(self._pins)
            indices = np.asarray(sorted(merged), dtype=np.intp)
            values = np.asarray(
                [merged[int(i)] for i in indices], dtype=float
            )
            indices.flags.writeable = False
            values.flags.writeable = False
            self._label_arrays = (indices, values)
        return self._label_arrays

    @property
    def labels(self) -> Mapping[int, int]:
        """Labels plus pins, keyed by claim index."""
        merged = dict(self._snapshot.labels)
        merged.update(self._pins)
        return merged

    @property
    def labelled_indices(self) -> np.ndarray:
        return self.label_arrays()[0]

    @property
    def unlabelled_indices(self) -> np.ndarray:
        mask = np.ones(self.num_claims, dtype=bool)
        labelled = self.labelled_indices
        if labelled.size:
            mask[labelled] = False
        return np.flatnonzero(mask)
