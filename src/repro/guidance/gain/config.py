"""Configuration of information-gain evaluation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GuidanceError

#: Supported hypothetical-inference modes.
INFERENCE_MODES = ("meanfield", "gibbs")
#: Supported entropy estimators.
ENTROPY_METHODS = ("approx", "exact")


@dataclass
class GainConfig:
    """Configuration of information-gain evaluation.

    Attributes:
        inference_mode: ``"meanfield"`` or ``"gibbs"`` hypothetical updates.
        entropy_method: ``"approx"`` (Eq. 13) or ``"exact"`` (component
            enumeration with fallback to the approximation).
        localize: Restrict hypothetical inference and entropy differences
            to the candidate's connected component (§5.1).
        meanfield_steps: Fixed-point iterations in mean-field mode.
        damping: Mean-field damping factor in [0, 1); higher is smoother.
        gibbs_burn_in / gibbs_samples: Schedule of the throwaway chain in
            Gibbs mode.
        parallel: Evaluate candidate gains on the snapshot-isolated
            executor: every candidate reads a read-only
            :class:`~repro.guidance.gain.HypotheticalView` of the
            database state and draws from its own derived generator, so
            candidates run concurrently in *both* inference modes with
            results bit-for-bit identical to sequential evaluation at
            every worker count.  In Gibbs mode the executor also routes
            the throwaway chains through worker-local engines backed by
            the compiled merge kernel of the sharded backend, which is
            why ``parallel=True`` pays off even on a single core.
        max_workers: Worker-thread count when ``parallel`` is set.
        cache_gains: Keep evaluated gains across calls and re-evaluate a
            candidate only when its connected component was dirtied by a
            label (or the model weights changed) since the cached value
            was computed.  Off by default: the cache assumes the
            inference state between calls moves only through labels and
            weight updates.
    """

    inference_mode: str = "meanfield"
    entropy_method: str = "approx"
    localize: bool = True
    meanfield_steps: int = 3
    damping: float = 0.3
    gibbs_burn_in: int = 3
    gibbs_samples: int = 8
    parallel: bool = False
    max_workers: int = 4
    cache_gains: bool = False

    def __post_init__(self) -> None:
        if self.inference_mode not in INFERENCE_MODES:
            raise GuidanceError(
                f"inference_mode must be one of {INFERENCE_MODES}, "
                f"got {self.inference_mode!r}"
            )
        if self.entropy_method not in ENTROPY_METHODS:
            raise GuidanceError(
                f"entropy_method must be one of {ENTROPY_METHODS}, "
                f"got {self.entropy_method!r}"
            )
        if not 0.0 <= self.damping < 1.0:
            raise GuidanceError(f"damping must be in [0, 1), got {self.damping}")
        if self.meanfield_steps <= 0:
            raise GuidanceError("meanfield_steps must be positive")
        if self.gibbs_burn_in <= 0:
            raise GuidanceError(
                f"gibbs_burn_in must be positive, got {self.gibbs_burn_in}"
            )
        if self.gibbs_samples <= 0:
            raise GuidanceError(
                f"gibbs_samples must be positive, got {self.gibbs_samples}"
            )
        if self.max_workers < 1:
            raise GuidanceError(
                f"max_workers must be at least 1, got {self.max_workers}"
            )
