"""Information-gain machinery for user guidance (§4.2–§4.3).

The benefit of validating claim ``c`` is the expected uncertainty reduction

    IG(c) = H(Q) - [ P(c) · H(Q+) + (1 - P(c)) · H(Q-) ]        (Eq. 14–15)

where ``Q+`` / ``Q-`` are the databases obtained by *hypothetically*
confirming / refuting ``c`` and re-running light credibility inference.
:class:`GainEstimator` implements this for both the claim-configuration
entropy ``H_C`` (information-driven guidance) and the source-trust entropy
``H_S`` (source-driven guidance), with the efficiency levers of the paper:

* **Scalable entropy** (§4.1) — the linear approximation of Eq. 13 instead
  of exact enumeration.
* **Graph partitioning** (§5.1) — hypothetical input on ``c`` can only
  affect claims in ``c``'s connected component, so inference and entropy
  differences are restricted to it.
* **Parallelisation** (§5.1) — gains of different candidates are
  independent.  ``GainConfig(parallel=True)`` evaluates them on the
  snapshot-isolated executor: every candidate reads a read-only
  :class:`~repro.guidance.gain.HypotheticalView` of the captured database
  state and draws from its own derived stream, so candidates run
  concurrently in *both* inference modes with results bit-for-bit
  identical to sequential evaluation.  ``parallel=False`` keeps the
  mutate-and-restore evaluation against the live database and doubles as
  the semantic oracle the parallel path is tested against.
* **Gain caching** (§5.1) — with ``localize=True`` a candidate's gain can
  only change when a label lands in its connected component (or the
  weights move), so ``cache_gains=True`` reuses evaluated gains across
  calls via per-component generation counters.

Hypothetical inference comes in two flavours: ``"meanfield"`` (default) —
a few damped fixed-point updates of the marginals, deterministic and
vector-fast; ``"gibbs"`` — a short throwaway Gibbs chain, closer to the
paper's sampling-based estimate but noisier and slower (the ``origin``
configuration of Fig. 2).  Gibbs-mode candidate streams are pure
functions of one root entropy draw per batched-gains call, keyed by
``(candidate, hypothesis)`` — evaluation order and worker schedule
cannot change any result.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.crf.entropy import (
    binary_entropy,
    component_entropy,
    MAX_EXACT_COMPONENT,
)
from repro.crf.gibbs import GibbsSampler
from repro.crf.model import CrfModel
from repro.crf.partition import ComponentIndex
from repro.crf.potentials import sigmoid
from repro.data.database import FactDatabase
from repro.guidance.gain.cache import ComponentGainCache
from repro.guidance.gain.config import GainConfig
from repro.guidance.gain.executor import BaselineCache, EnginePool, map_ordered
from repro.guidance.gain.snapshot import HypotheticalView, StateSnapshot
from repro.utils.arrays import concat_ranges
from repro.utils.rng import RandomState, draw_entropy, ensure_rng, stream_rng

#: Stream-key prefixes of the per-call Gibbs generator tree: baseline
#: chains live under ``(_STREAM_BASELINE, component_key + 1)``,
#: hypothetical chains under ``(_STREAM_HYPOTHESIS, claim, value)``.
_STREAM_BASELINE = 1
_STREAM_HYPOTHESIS = 2


class _CallContext:
    """Shared state of one batched-gains call.

    Carries the root entropy of the call's Gibbs stream tree, the guarded
    per-component baseline cache (passed explicitly — no estimator
    attribute to race on), and, on the parallel path, the snapshot every
    candidate's views overlay.
    """

    #: Call-scoped scratch structure, never checkpointed.
    _STATE_EXCLUDED = ("entropy", "baselines", "snapshot")

    def __init__(
        self,
        entropy: Optional[int],
        baselines: BaselineCache,
        snapshot: Optional[StateSnapshot],
    ) -> None:
        self.entropy = entropy
        self.baselines = baselines
        self.snapshot = snapshot


class GainEstimator:
    """Evaluates IG_C (Eq. 15) and IG_S (Eq. 20) for candidate claims.

    Args:
        model: The CRF model (weights are read, never modified).
        components: Component index for localisation.
        config: Evaluation configuration.
        engine: Hot-path engine for sequential Gibbs-mode hypothetical
            inference; pass the owning inference engine so gain
            evaluation runs the same backend as the E-step (defaults to
            the model's default backend).  The parallel path ignores it
            and leases worker-local kernel-backed engines instead.
        seed: Seed or generator (only Gibbs mode consumes randomness).
    """

    #: Rebuilt from the session spec on resume (STATE001); the generator
    #: ``_rng`` is the only checkpointed attribute and is carried by
    #: :meth:`ValidationProcess.state_dict`.
    _STATE_EXCLUDED = (
        "_model",
        "_database",
        "_config",
        "_components",
        "_engine",
        "_state_lock",
        "_engine_pool",
        "_gain_cache",
    )

    def __init__(
        self,
        model: CrfModel,
        components: Optional[ComponentIndex] = None,
        config: Optional[GainConfig] = None,
        engine=None,
        seed: RandomState = None,
    ) -> None:
        self._model = model
        self._database = model.database
        self._config = config if config is not None else GainConfig()
        self._components = (
            components if components is not None else ComponentIndex(self._database)
        )
        self._engine = engine
        self._rng = ensure_rng(seed)
        # Sequential Gibbs-mode hypothetical inference pins its label in
        # the shared database; the lock serialises that mutate-and-restore
        # window against concurrent readers.  The parallel path never
        # takes it — views leave the database untouched.
        self._state_lock = threading.Lock()
        self._engine_pool = EnginePool(model)
        self._gain_cache = (
            ComponentGainCache() if self._config.cache_gains else None
        )

    @property
    def config(self) -> GainConfig:
        """The active configuration."""
        return self._config

    @property
    def components(self) -> ComponentIndex:
        """Connected-component index used for localisation."""
        return self._components

    @property
    def gain_cache(self) -> Optional[ComponentGainCache]:
        """The cross-call gain cache, when ``cache_gains`` is enabled."""
        return self._gain_cache

    def close(self) -> None:
        """Release pooled worker engines; the estimator stays usable."""
        self._engine_pool.close()

    # ------------------------------------------------------------------
    # Public gains
    # ------------------------------------------------------------------

    def information_gain(self, claim_index: int) -> float:
        """IG_C(c): expected claim-entropy reduction of validating ``c``."""
        return float(self._gains([claim_index], source_driven=False)[0])

    def source_gain(self, claim_index: int) -> float:
        """IG_S(c): expected source-entropy reduction of validating ``c``."""
        return float(self._gains([claim_index], source_driven=True)[0])

    def information_gains(self, claim_indices: Sequence[int]) -> np.ndarray:
        """Vector of IG_C over candidates, optionally in parallel."""
        return self._gains(claim_indices, source_driven=False)

    def source_gains(self, claim_indices: Sequence[int]) -> np.ndarray:
        """Vector of IG_S over candidates, optionally in parallel."""
        return self._gains(claim_indices, source_driven=True)

    def _gains(
        self, claim_indices: Sequence[int], source_driven: bool
    ) -> np.ndarray:
        claim_indices = [int(c) for c in claim_indices]
        # One root entropy draw per call keys the whole Gibbs stream tree;
        # every chain seed is a pure function of (root, candidate, value),
        # so sequential and parallel evaluation consume the session
        # generator identically and produce identical gains.  Mean-field
        # mode is deterministic and consumes nothing.
        entropy = (
            draw_entropy(self._rng)
            if self._config.inference_mode == "gibbs"
            else None
        )
        snapshot = (
            StateSnapshot.capture(self._database)
            if self._config.parallel
            else None
        )
        context = _CallContext(entropy, BaselineCache(), snapshot)

        cache = self._gain_cache
        if cache is not None:
            cache.sync(
                self._database.labels,
                self._component_key,
                self._model.weights.values.tobytes(),
            )

        def evaluate(claim: int) -> float:
            component = self._component_key(claim)
            if cache is not None:
                hit = cache.lookup(claim, source_driven, component)
                if hit is not None:
                    return hit
            value = self._gain(claim, source_driven, context)
            if cache is not None:
                cache.store(claim, source_driven, component, value)
            return value

        if self._config.parallel:
            values = map_ordered(
                evaluate, claim_indices, self._config.max_workers
            )
        else:
            values = [evaluate(c) for c in claim_indices]
        return np.asarray(values)

    # ------------------------------------------------------------------
    # Core computation
    # ------------------------------------------------------------------

    def _component_key(self, claim_index: int) -> int:
        """Cache/stream key of the candidate's component (−1 = global)."""
        if self._config.localize:
            return int(self._components.component_of(claim_index))
        return -1

    def _scope(self, claim_index: int) -> np.ndarray:
        """Claims whose probabilities hypothetical input on ``c`` may move."""
        if self._config.localize:
            return self._components.component_of_claim(claim_index)
        return np.arange(self._database.num_claims, dtype=np.intp)

    def _gain(
        self, claim_index: int, source_driven: bool, context: _CallContext
    ) -> float:
        database = self._database
        if database.is_labelled(claim_index):
            return 0.0
        scope = self._scope(claim_index)
        # The baseline H(Q) must be measured after the *same* light
        # inference operator as H(Q+)/H(Q-), only without the hypothetical
        # label — otherwise the inference's smoothing of the marginals
        # masquerades as (negative) information gain for every candidate.
        base = self._baseline_marginals(claim_index, scope, context)
        p = float(base[claim_index])

        positive = self._hypothetical_marginals(claim_index, 1, scope, context)
        negative = self._hypothetical_marginals(claim_index, 0, scope, context)

        if source_driven:
            current = self._source_entropy(base, scope, context)
            plus = self._source_entropy(positive, scope, context)
            minus = self._source_entropy(negative, scope, context)
        else:
            current = self._claim_entropy(base, scope, context)
            plus = self._claim_entropy(positive, scope, context)
            minus = self._claim_entropy(negative, scope, context)
        conditional = p * plus + (1.0 - p) * minus
        return float(current - conditional)

    def _baseline_marginals(
        self, claim_index: int, scope: np.ndarray, context: _CallContext
    ) -> np.ndarray:
        """Label-free light inference over the candidate's scope.

        Computed at most once per component per batched-gains call (the
        result is identical for all candidates of a component); the
        guarded cache blocks every other worker of the component while
        the first one runs the inference.
        """
        key = self._component_key(claim_index)

        def compute() -> np.ndarray:
            if self._config.inference_mode == "meanfield":
                return self._mean_field(
                    scope, pins=None, state=context.snapshot
                )
            # Offset the key into non-negative spawn-key space: the
            # non-localised global key −1 maps to stream 0.
            seed = stream_rng(context.entropy, _STREAM_BASELINE, key + 1)
            if context.snapshot is not None:
                view = HypotheticalView(context.snapshot)
                return self._gibbs_view(scope, view, seed)
            with self._state_lock:
                return self._gibbs(scope, seed)

        return context.baselines.get_or_compute(key, compute)

    def _hypothetical_marginals(
        self,
        claim_index: int,
        value: int,
        scope: np.ndarray,
        context: _CallContext,
    ) -> np.ndarray:
        """Marginals of ``Q+`` / ``Q-`` under light inference."""
        if self._config.inference_mode == "meanfield":
            # The hypothetical label is pinned inside the fixed point, so
            # the shared database is never mutated — safe to parallelise.
            return self._mean_field(
                scope, pins={claim_index: value}, state=context.snapshot
            )
        seed = stream_rng(
            context.entropy, _STREAM_HYPOTHESIS, claim_index, value
        )
        if context.snapshot is not None:
            view = HypotheticalView(context.snapshot, {claim_index: value})
            return self._gibbs_view(scope, view, seed)
        with self._state_lock:
            state = self._database.clone_state()
            try:
                self._database.label(claim_index, value)
                marginals = self._gibbs(scope, seed)
            finally:
                self._database.restore_state(state)
        return marginals

    def _mean_field(
        self,
        scope: np.ndarray,
        pins: Optional[Mapping[int, int]] = None,
        state: Optional[Union[StateSnapshot, HypotheticalView]] = None,
    ) -> np.ndarray:
        """Damped mean-field fixed point restricted to ``scope``.

        Args:
            scope: Claims whose marginals may move.
            pins: Optional hypothetical ``{claim: value}`` labels, held
                fixed during the iteration exactly as real labels would
                be (several at once for the exact batch-gain enumeration
                of §6.2).
            state: Optional snapshot/view substituted for the live
                database — numerically identical, but free of shared
                mutable state.
        """
        if state is None:
            database = self._database
            # Snapshot under the lock: a sequential Gibbs-mode estimator
            # sharing this instance may be inside a mutate-and-restore
            # window on another thread.
            with self._state_lock:
                marginals = np.asarray(
                    database.probabilities, dtype=float
                ).copy()
                labelled = database.labels
        else:
            marginals = np.asarray(state.probabilities, dtype=float).copy()
            labelled = state.labels
        if pins:
            for pinned_claim, pinned_value in pins.items():
                marginals[int(pinned_claim)] = float(pinned_value)
            excluded = {int(c) for c in pins}
            free = np.asarray(
                [
                    int(c)
                    for c in scope
                    if int(c) not in labelled and int(c) not in excluded
                ],
                dtype=np.intp,
            )
        else:
            free = np.asarray(
                [int(c) for c in scope if int(c) not in labelled],
                dtype=np.intp,
            )
        if free.size == 0:
            return marginals
        damping = self._config.damping
        for _ in range(self._config.meanfield_steps):
            logits = self._model.marginal_logits(marginals)
            updated = sigmoid(logits[free])
            marginals[free] = damping * marginals[free] + (1.0 - damping) * updated
        return marginals

    def _gibbs(
        self, scope: np.ndarray, seed: np.random.Generator
    ) -> np.ndarray:
        """Short throwaway Gibbs chain against the live database state."""
        sampler = GibbsSampler(
            self._model,
            burn_in=self._config.gibbs_burn_in,
            num_samples=self._config.gibbs_samples,
            seed=seed,
            engine=self._engine,
        )
        result = sampler.sample(claim_subset=scope)
        return result.marginals

    def _gibbs_view(
        self,
        scope: np.ndarray,
        view: HypotheticalView,
        seed: np.random.Generator,
    ) -> np.ndarray:
        """The same throwaway chain, reading a view instead of the database.

        Runs on a leased worker-local engine backed by the compiled merge
        kernel — bit-identical sweeps to the default backend, concurrent
        because the kernel drops the GIL and nothing here writes shared
        state.
        """
        with self._engine_pool.lease() as engine:
            sampler = GibbsSampler(
                self._model,
                burn_in=self._config.gibbs_burn_in,
                num_samples=self._config.gibbs_samples,
                seed=seed,
                engine=engine,
            )
            result = sampler.sample(claim_subset=scope, overlay=view)
        return result.marginals

    # ------------------------------------------------------------------
    # Entropy restricted to a scope
    # ------------------------------------------------------------------

    #: Enumeration cap of the exact-entropy path.  Tighter than the global
    #: :data:`~repro.crf.entropy.MAX_EXACT_COMPONENT` because the gain
    #: estimator enumerates once per candidate and hypothesis (2 × |C^U|
    #: times per iteration), not once per database.
    _EXACT_ENTROPY_CAP = 12

    def _labels_of(
        self, context: _CallContext
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Real labels (no pins) as sorted ``(indices, values)`` arrays."""
        if context.snapshot is not None:
            return context.snapshot.label_arrays()
        with self._state_lock:
            return self._database.label_arrays()

    def _claim_entropy(
        self, marginals: np.ndarray, scope: np.ndarray, context: _CallContext
    ) -> float:
        """H_C over the scope (entropy outside cancels in differences)."""
        if self._config.entropy_method == "exact":
            label_indices, _ = self._labels_of(context)
            labelled = set(int(i) for i in label_indices)
            free = np.asarray(
                [int(c) for c in scope if int(c) not in labelled], dtype=np.intp
            )
            if 0 < free.size <= min(self._EXACT_ENTROPY_CAP, MAX_EXACT_COMPONENT):
                # component_entropy thresholds the supplied marginals
                # directly — the database is never touched, so exact
                # entropies of different candidates run concurrently.
                return component_entropy(
                    self._model, free, probabilities=marginals
                )
        return float(binary_entropy(marginals[scope]).sum())

    def _source_entropy(
        self, marginals: np.ndarray, scope: np.ndarray, context: _CallContext
    ) -> float:
        """H_S over sources touching the scope (Eq. 18, Eq. 17).

        Source trust is estimated from the thresholded marginals — the
        light-inference surrogate of the grounding of Eq. 17.  Fully
        vectorised over the cached bipartite CSR: one gather of the
        scope's source lists, one gather of those sources' claim lists,
        one segmented mean.
        """
        grounding = (marginals >= 0.5).astype(np.int8)
        label_indices, label_values = self._labels_of(context)
        if label_indices.size:
            grounding[label_indices] = label_values.astype(np.int8)
        claim_ptr, claim_sources, source_ptr, source_claims = (
            self._database.bipartite_csr()
        )
        scope = np.asarray(scope, dtype=np.intp)
        starts = claim_ptr[scope]
        counts = claim_ptr[scope + 1] - starts
        touched = np.unique(claim_sources[concat_ranges(starts, counts)])
        if touched.size == 0:
            return 0.0
        src_starts = source_ptr[touched]
        src_counts = source_ptr[touched + 1] - src_starts
        covered = src_counts > 0
        touched = touched[covered]
        src_starts = src_starts[covered]
        src_counts = src_counts[covered]
        if touched.size == 0:
            return 0.0
        gathered = source_claims[concat_ranges(src_starts, src_counts)]
        segment = np.repeat(np.arange(touched.size), src_counts)
        sums = np.bincount(
            segment,
            weights=grounding[gathered].astype(float),
            minlength=touched.size,
        )
        trust = sums / src_counts
        return float(binary_entropy(trust).sum())


def marginal_entropy_ranking(
    database: FactDatabase, candidates: Iterable[int]
) -> np.ndarray:
    """Candidates sorted by descending marginal entropy of ``P(c)``.

    Used by the *uncertainty* baseline of §8.4 and as a pre-filter when a
    candidate pool limit is configured.
    """
    candidates = np.asarray(list(candidates), dtype=np.intp)
    probabilities = np.asarray(database.probabilities)[candidates]
    entropies = binary_entropy(probabilities)
    order = np.argsort(-entropies, kind="stable")
    return candidates[order]
