"""Declarative session configuration — typed, validated, JSON-serialisable.

A :class:`SessionSpec` fully determines a fact-checking run: which corpus,
which inference settings, which guidance strategy, which effort policy, and
— for streaming sessions — the online-EM schedule.  It replaces the kwarg
explosion of the legacy constructors (``ValidationProcess`` took 17 keyword
arguments) with composable dataclasses that round-trip through JSON, so a
run can be version-controlled, shipped to a service, or resumed from a
checkpoint with identical semantics.

Layout::

    SessionSpec
    ├── dataset:   DatasetSpec     (optional; corpus provenance)
    ├── user:      UserSpec        (simulated-oracle parameters)
    ├── inference: InferenceSpec   (iCRF EM + engine backend + M-step)
    ├── guidance:  GuidanceSpec    (strategy + gain evaluation)
    ├── effort:    EffortSpec      (goal, budget, batching, termination)
    └── stream:    StreamSpec      (online EM; streaming sessions only)

Every spec validates on construction and exposes ``to_dict`` /
``from_dict``; :class:`SessionSpec` adds ``to_json`` / ``from_json``.
``GainConfig`` and ``MStepConfig`` — already dataclasses with validation —
are embedded directly rather than mirrored.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Type, TypeVar

from repro.errors import SpecError
from repro.guidance.gain import GainConfig
from repro.guidance.strategies import STRATEGIES
from repro.inference.mstep import MStepConfig

#: Session modes understood by the façade.
SESSION_MODES = ("batch", "streaming")

#: Goal kinds buildable from a :class:`GoalSpec`.
GOAL_KINDS = ("none", "true_precision", "estimated_precision")

#: Termination-criterion kinds buildable from a :class:`TerminationSpec`.
TERMINATION_KINDS = ("urr", "cng", "pre", "pir")

_S = TypeVar("_S")


def _check_fields(cls: Type[_S], payload: Mapping[str, Any]) -> None:
    """Reject payload keys that are not fields of ``cls``."""
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(payload) - known
    if unknown:
        raise SpecError(
            f"{cls.__name__} does not accept {sorted(unknown)}; "
            f"known fields: {sorted(known)}",
            field=sorted(unknown)[0],
        )


def _build_config(cls: Type[_S], payload: Any, what: str) -> _S:
    """Coerce ``payload`` (instance or mapping) into a config dataclass."""
    if isinstance(payload, cls):
        return payload
    if payload is None:
        return cls()
    if not isinstance(payload, Mapping):
        raise SpecError(f"{what} must be a {cls.__name__} or a mapping", field=what)
    try:
        _check_fields(cls, payload)
        return cls(**payload)
    except SpecError as exc:
        raise exc.with_prefix(what) from None


@dataclass(frozen=True)
class DatasetSpec:
    """Provenance of the corpus a session runs on.

    Attributes:
        name: Profile name of a synthetic replica (``wiki`` / ``health`` /
            ``snopes``); mutually exclusive with ``path``.
        path: JSON corpus file (the :mod:`repro.datasets.io` format).
        seed: Generation seed when ``name`` is used.
        scale: Generation scale when ``name`` is used.
    """

    name: Optional[str] = None
    path: Optional[str] = None
    seed: int = 0
    scale: float = 1.0

    def __post_init__(self) -> None:
        if (self.name is None) == (self.path is None):
            raise SpecError(
                "DatasetSpec needs exactly one of 'name' (synthetic profile) "
                "or 'path' (JSON corpus file)"
            )
        if self.scale <= 0:
            raise SpecError(f"scale must be positive, got {self.scale}", field="scale")

    def load(self):
        """Materialise the corpus this spec describes."""
        from repro.datasets import load_database, load_dataset

        if self.path is not None:
            return load_database(self.path)
        return load_dataset(self.name, seed=self.seed, scale=self.scale)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DatasetSpec":
        _check_fields(cls, payload)
        return cls(**payload)


@dataclass(frozen=True)
class UserSpec:
    """Parameters of the validating user simulated from ground truth.

    Attributes:
        kind: ``"simulated"`` (the §8.1 oracle) — custom :class:`User`
            objects are passed to the session directly and override this.
        error_probability: Chance of flipping the correct answer (§8.5).
        skip_probability: Chance of declining to validate a claim (§8.5).
    """

    kind: str = "simulated"
    error_probability: float = 0.0
    skip_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.kind != "simulated":
            raise SpecError(
                f"unknown user kind {self.kind!r}; pass a custom User object "
                f"to the session for non-simulated users",
                field="kind",
            )
        for name in ("error_probability", "skip_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise SpecError(f"{name} must lie in [0, 1], got {value}", field=name)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "UserSpec":
        _check_fields(cls, payload)
        return cls(**payload)


@dataclass(frozen=True)
class InferenceSpec:
    """iCRF inference settings (§3.2) plus the hot-path backend.

    Attributes:
        aggregation: Claim-evidence aggregation mode of the CRF.
        coupling_enabled: Whether the indirect relation participates.
        em_iterations: EM iterations per inference call.
        em_tolerance: Mean-absolute marginal change below which EM stops.
        burn_in / num_samples: Gibbs sampling schedule of the E-step.
        initial_bias: Cold-start bias weight (symmetry breaking).
        estep_mode: ``"gibbs"`` (sampling) or ``"meanfield"`` (deterministic).
        engine: Backend name from
            :data:`repro.inference.engine.ENGINE_BACKENDS`.
        num_shards: Worker count for ``engine="sharded"`` (``None`` =
            automatic from host CPUs, ``1`` = in-process fast path);
            rejected for other backends.
        mstep: M-step hyper-parameters (embedded
            :class:`~repro.inference.mstep.MStepConfig`).
    """

    aggregation: str = "sqrt"
    coupling_enabled: bool = True
    em_iterations: int = 3
    em_tolerance: float = 5e-3
    burn_in: int = 4
    num_samples: int = 16
    initial_bias: float = 1.0
    estep_mode: str = "gibbs"
    engine: str = "numpy"
    num_shards: Optional[int] = None
    mstep: MStepConfig = field(default_factory=MStepConfig)

    def __post_init__(self) -> None:
        from repro.inference.engine import ENGINE_BACKENDS
        from repro.inference.icrf import ICrf

        if self.estep_mode not in ICrf.ESTEP_MODES:
            raise SpecError(
                f"estep_mode must be one of {ICrf.ESTEP_MODES}, "
                f"got {self.estep_mode!r}",
                field="estep_mode",
            )
        if self.engine not in ENGINE_BACKENDS:
            raise SpecError(
                f"unknown engine backend {self.engine!r}; "
                f"available: {tuple(sorted(ENGINE_BACKENDS))}",
                field="engine",
            )
        if self.num_shards is not None:
            if self.engine != "sharded":
                raise SpecError(
                    "num_shards only applies to engine='sharded', "
                    f"not {self.engine!r}",
                    field="num_shards",
                )
            if self.num_shards < 1:
                raise SpecError(
                    f"num_shards must be >= 1, got {self.num_shards}",
                    field="num_shards",
                )
        if self.em_iterations <= 0:
            raise SpecError("em_iterations must be positive", field="em_iterations")
        if self.em_tolerance < 0:
            raise SpecError("em_tolerance must be non-negative", field="em_tolerance")
        if self.burn_in < 0:
            raise SpecError("burn_in must be non-negative", field="burn_in")
        if self.num_samples <= 0:
            raise SpecError("num_samples must be positive", field="num_samples")
        object.__setattr__(
            self, "mstep", _build_config(MStepConfig, self.mstep, "mstep")
        )

    def engine_config(self):
        """The :class:`~repro.inference.engine.EngineConfig` this spec names."""
        from repro.inference.engine import EngineConfig

        return EngineConfig(backend=self.engine, num_shards=self.num_shards)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "InferenceSpec":
        _check_fields(cls, payload)
        return cls(**payload)


@dataclass(frozen=True)
class GuidanceSpec:
    """Claim-selection settings (§4).

    Attributes:
        strategy: Paper legend name from
            :data:`repro.guidance.strategies.STRATEGIES`.
        candidate_limit: Candidate-pool cap for gain-based strategies
            (``None`` scans all unlabelled claims).
        deterministic_ties: Break selection-score ties by claim index.
        gain: Information-gain evaluation settings (embedded
            :class:`~repro.guidance.gain.GainConfig`).
        parallel: Shorthand for ``gain.parallel`` — evaluate candidate
            gains on the snapshot-isolated executor (results bit-for-bit
            identical to sequential evaluation in both inference modes).
            ``None`` leaves the embedded config untouched.
        max_workers: Shorthand for ``gain.max_workers``; only meaningful
            with ``parallel``.  ``None`` leaves the embedded config
            untouched.
    """

    strategy: str = "hybrid"
    candidate_limit: Optional[int] = None
    deterministic_ties: bool = False
    gain: GainConfig = field(default_factory=GainConfig)
    parallel: Optional[bool] = None
    max_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise SpecError(
                f"unknown strategy {self.strategy!r}; "
                f"known: {sorted(STRATEGIES)}",
                field="strategy",
            )
        if self.candidate_limit is not None and self.candidate_limit < 1:
            raise SpecError(
                "candidate_limit must be at least 1 (or None)",
                field="candidate_limit",
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise SpecError(
                "max_workers must be at least 1 (or None)",
                field="max_workers",
            )
        gain = _build_config(GainConfig, self.gain, "gain")
        overrides = {}
        if self.parallel is not None:
            overrides["parallel"] = bool(self.parallel)
        if self.max_workers is not None:
            overrides["max_workers"] = int(self.max_workers)
        if overrides:
            gain = dataclasses.replace(gain, **overrides)
        object.__setattr__(self, "gain", gain)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "GuidanceSpec":
        _check_fields(cls, payload)
        return cls(**payload)


@dataclass(frozen=True)
class GoalSpec:
    """Validation goal Δ (§2.2) in declarative form.

    Attributes:
        kind: ``"none"``, ``"true_precision"`` (ground-truth precision,
            the §8 protocol), or ``"estimated_precision"`` (k-fold
            cross-validated estimate, deployable without truth).
        threshold: Precision threshold for the precision goals.
        folds / min_labels: Cross-validation parameters of the estimated
            goal.
    """

    kind: str = "none"
    threshold: float = 0.9
    folds: int = 5
    min_labels: int = 10

    def __post_init__(self) -> None:
        if self.kind not in GOAL_KINDS:
            raise SpecError(
                f"goal kind must be one of {GOAL_KINDS}, got {self.kind!r}",
                field="kind",
            )
        if not 0.0 <= self.threshold <= 1.0:
            raise SpecError(
                f"threshold must lie in [0, 1], got {self.threshold}",
                field="threshold",
            )

    def build(self):
        """Instantiate the :class:`~repro.validation.goals.ValidationGoal`."""
        from repro.validation.goals import (
            EstimatedPrecisionGoal,
            NoGoal,
            TruePrecisionGoal,
        )

        if self.kind == "none":
            return NoGoal()
        if self.kind == "true_precision":
            return TruePrecisionGoal(self.threshold)
        return EstimatedPrecisionGoal(
            self.threshold, folds=self.folds, min_labels=self.min_labels
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "GoalSpec":
        _check_fields(cls, payload)
        return cls(**payload)


@dataclass(frozen=True)
class TerminationSpec:
    """One early-termination criterion (§6.1) in declarative form.

    Attributes:
        kind: ``"urr"``, ``"cng"``, ``"pre"``, or ``"pir"``.
        params: Keyword arguments of the criterion constructor (thresholds,
            patience, …); validated eagerly by instantiating once.
    """

    kind: str = "urr"
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in TERMINATION_KINDS:
            raise SpecError(
                f"termination kind must be one of {TERMINATION_KINDS}, "
                f"got {self.kind!r}",
                field="kind",
            )
        object.__setattr__(self, "params", dict(self.params))
        try:
            self.build()
        except SpecError:
            raise
        except Exception as exc:
            raise SpecError(
                f"invalid parameters for termination criterion "
                f"{self.kind!r}: {exc}",
                field="params",
            ) from exc

    def build(self):
        """Instantiate a fresh criterion (criteria carry run state)."""
        from repro.effort.termination import (
            GroundingChangeCriterion,
            PrecisionImprovementCriterion,
            UncertaintyReductionCriterion,
            ValidatedPredictionCriterion,
        )

        registry = {
            "urr": UncertaintyReductionCriterion,
            "cng": GroundingChangeCriterion,
            "pre": ValidatedPredictionCriterion,
            "pir": PrecisionImprovementCriterion,
        }
        return registry[self.kind](**self.params)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TerminationSpec":
        _check_fields(cls, payload)
        return cls(**payload)


@dataclass(frozen=True)
class EffortSpec:
    """Effort policy: goal, budget, batching, robustness, termination.

    Attributes:
        goal: Declarative validation goal.
        budget: User-effort budget b (max validations); ``None`` = |C|.
        batch_size: Claims validated per iteration (k of §6.2).
        batch_utility_weight: The w of Eq. 27.
        max_skip_attempts: Next-best candidates offered on skips (§8.5).
        confirmation_interval: Run the §5.2 confirmation check after this
            many validations; ``None`` disables it.
        termination: Early-termination criteria consulted per iteration.
    """

    goal: GoalSpec = field(default_factory=GoalSpec)
    budget: Optional[int] = None
    batch_size: int = 1
    batch_utility_weight: float = 1.0
    max_skip_attempts: int = 5
    confirmation_interval: Optional[int] = None
    termination: Tuple[TerminationSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "goal", _build_config(GoalSpec, self.goal, "goal")
        )
        if self.budget is not None and self.budget < 1:
            raise SpecError("budget must be at least 1 (or None)", field="budget")
        if self.batch_size < 1:
            raise SpecError("batch_size must be at least 1", field="batch_size")
        if self.max_skip_attempts < 0:
            raise SpecError(
                "max_skip_attempts must be non-negative", field="max_skip_attempts"
            )
        if self.confirmation_interval is not None and self.confirmation_interval < 1:
            raise SpecError(
                "confirmation_interval must be at least 1 (or None)",
                field="confirmation_interval",
            )
        object.__setattr__(
            self, "termination", _build_termination(self.termination)
        )

    def to_dict(self) -> dict:
        return {
            "goal": self.goal.to_dict(),
            "budget": self.budget,
            "batch_size": self.batch_size,
            "batch_utility_weight": self.batch_utility_weight,
            "max_skip_attempts": self.max_skip_attempts,
            "confirmation_interval": self.confirmation_interval,
            "termination": [entry.to_dict() for entry in self.termination],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EffortSpec":
        _check_fields(cls, payload)
        data = dict(payload)
        if "goal" in data and isinstance(data["goal"], Mapping):
            data["goal"] = _build_config(GoalSpec, data["goal"], "goal")
        if "termination" in data:
            data["termination"] = _build_termination(data["termination"])
        return cls(**data)


@dataclass(frozen=True)
class StreamSourceSpec:
    """Replayable provenance of a claim stream.

    Declares *where the arrivals come from* so they need not be embedded
    anywhere: a session whose arrivals all came from its declared source
    checkpoints as a stream fingerprint plus position (compact streaming
    checkpoints, format version 3), and resuming replays the source up to
    that position instead of deserialising every entity.

    Attributes:
        dataset: Corpus provenance; the stream replays this corpus via
            :func:`repro.streaming.stream.stream_from_database`.
        order: Arrival-order policy.  Only ``"posting"`` (document index
            order, the §8.8 protocol) is defined.
    """

    dataset: Optional[DatasetSpec] = None
    order: str = "posting"

    def __post_init__(self) -> None:
        if self.dataset is None:
            raise SpecError(
                "StreamSourceSpec needs a 'dataset' describing the corpus "
                "the stream replays",
                field="dataset",
            )
        if not isinstance(self.dataset, DatasetSpec):
            object.__setattr__(
                self, "dataset", _build_spec(DatasetSpec, self.dataset, "dataset")
            )
        if self.order != "posting":
            raise SpecError(
                f"unknown stream order {self.order!r}; only 'posting' is "
                f"defined",
                field="order",
            )

    def arrivals(self):
        """Replay the declared corpus as a fresh arrival iterator."""
        from repro.streaming.stream import stream_from_database

        return stream_from_database(self.dataset.load())

    def to_dict(self) -> dict:
        return {"dataset": self.dataset.to_dict(), "order": self.order}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StreamSourceSpec":
        _check_fields(cls, payload)
        return cls(**payload)


@dataclass(frozen=True)
class StreamSpec:
    """Online-EM settings for streaming sessions (§7, Alg. 2).

    Attributes:
        schedule_beta / schedule_scale: Robbins–Monro step sizes
            ``γ_t = scale / t^beta``.
        meanfield_steps: E-step fixed-point iterations per arrival.
        prior: Credibility prior of newly arrived claims.
        online_mstep_iterations: Newton-iteration cap of the online M-step.
        validation_every: Interleave a validation burst (Alg. 1 on the
            current snapshot) after this many arrivals, validating the same
            number of claims; ``None`` disables interleaving in ``run``.
        source: Replayable stream provenance.  When set, ``run()`` and
            ``ingest_from_source()`` can drive the session without an
            explicit arrival iterable, and checkpoints store a compact
            fingerprint + position instead of embedding the entities.
        incremental: Grow the snapshot model in place per arrival
            (default) instead of rebuilding it; results are bit-for-bit
            identical either way.
        allow_pending_labels: Park labels recorded for claims that have
            not arrived yet instead of rejecting them.
    """

    schedule_beta: float = 0.7
    schedule_scale: float = 1.0
    meanfield_steps: int = 3
    prior: float = 0.5
    online_mstep_iterations: int = 5
    validation_every: Optional[int] = None
    source: Optional[StreamSourceSpec] = None
    incremental: bool = True
    allow_pending_labels: bool = False

    def __post_init__(self) -> None:
        if self.source is not None and not isinstance(
            self.source, StreamSourceSpec
        ):
            object.__setattr__(
                self, "source", _build_spec(StreamSourceSpec, self.source, "source")
            )
        if not 0.5 < self.schedule_beta <= 1.0:
            raise SpecError(
                f"schedule_beta must lie in (0.5, 1], got {self.schedule_beta}",
                field="schedule_beta",
            )
        if self.schedule_scale <= 0:
            raise SpecError("schedule_scale must be positive", field="schedule_scale")
        if self.meanfield_steps < 1:
            raise SpecError("meanfield_steps must be at least 1", field="meanfield_steps")
        if not 0.0 <= self.prior <= 1.0:
            raise SpecError(f"prior must lie in [0, 1], got {self.prior}", field="prior")
        if self.online_mstep_iterations < 1:
            raise SpecError(
                "online_mstep_iterations must be at least 1",
                field="online_mstep_iterations",
            )
        if self.validation_every is not None and self.validation_every < 1:
            raise SpecError(
                "validation_every must be at least 1 (or None)",
                field="validation_every",
            )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StreamSpec":
        _check_fields(cls, payload)
        return cls(**payload)


@dataclass(frozen=True)
class SessionSpec:
    """Complete declarative description of one fact-checking session.

    Attributes:
        mode: ``"batch"`` (Alg. 1 validation) or ``"streaming"`` (Alg. 2
            online EM with optional interleaved validation).
        seed: Root seed; every stochastic component derives deterministic
            children from it, so the spec fully determines the run.
        dataset: Corpus provenance; optional when the database object is
            handed to the session directly.
        user / inference / guidance / effort / stream: Component specs.
    """

    mode: str = "batch"
    seed: int = 0
    dataset: Optional[DatasetSpec] = None
    user: UserSpec = field(default_factory=UserSpec)
    inference: InferenceSpec = field(default_factory=InferenceSpec)
    guidance: GuidanceSpec = field(default_factory=GuidanceSpec)
    effort: EffortSpec = field(default_factory=EffortSpec)
    stream: StreamSpec = field(default_factory=StreamSpec)

    def __post_init__(self) -> None:
        if self.mode not in SESSION_MODES:
            raise SpecError(
                f"mode must be one of {SESSION_MODES}, got {self.mode!r}",
                field="mode",
            )
        if self.dataset is not None and not isinstance(self.dataset, DatasetSpec):
            object.__setattr__(
                self, "dataset", _build_spec(DatasetSpec, self.dataset, "dataset")
            )
        object.__setattr__(self, "user", _build_config(UserSpec, self.user, "user"))
        object.__setattr__(
            self,
            "inference",
            _build_spec(InferenceSpec, self.inference, "inference"),
        )
        object.__setattr__(
            self, "guidance", _build_spec(GuidanceSpec, self.guidance, "guidance")
        )
        object.__setattr__(
            self, "effort", _build_spec(EffortSpec, self.effort, "effort")
        )
        object.__setattr__(
            self, "stream", _build_spec(StreamSpec, self.stream, "stream")
        )

    def replace(self, **overrides) -> "SessionSpec":
        """Copy with selected top-level fields replaced."""
        return dataclasses.replace(self, **overrides)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "seed": self.seed,
            "dataset": None if self.dataset is None else self.dataset.to_dict(),
            "user": self.user.to_dict(),
            "inference": self.inference.to_dict(),
            "guidance": self.guidance.to_dict(),
            "effort": self.effort.to_dict(),
            "stream": self.stream.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SessionSpec":
        _check_fields(cls, payload)
        data = dict(payload)
        converters = {
            "dataset": DatasetSpec,
            "user": UserSpec,
            "inference": InferenceSpec,
            "guidance": GuidanceSpec,
            "effort": EffortSpec,
            "stream": StreamSpec,
        }
        for name, spec_cls in converters.items():
            value = data.get(name)
            if isinstance(value, Mapping):
                data[name] = _build_spec(spec_cls, value, name)
        return cls(**data)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialise the spec to a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, document: str) -> "SessionSpec":
        """Parse a spec from :meth:`to_json` output."""
        try:
            payload = json.loads(document)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid session-spec JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise SpecError("session-spec JSON must be an object")
        return cls.from_dict(payload)


def _build_spec(cls: Type[_S], payload: Any, what: str) -> _S:
    """Coerce ``payload`` (spec instance or mapping) into a spec class.

    Validation failures inside the nested spec are re-raised with ``what``
    prepended to their field path, so errors surfacing from
    :meth:`SessionSpec.from_json` name the full dotted location
    (``inference.engine``, ``effort.goal.kind``, …).
    """
    if isinstance(payload, cls):
        return payload
    if payload is None:
        return cls()
    if not isinstance(payload, Mapping):
        raise SpecError(f"{what} must be a {cls.__name__} or a mapping", field=what)
    try:
        return cls.from_dict(payload)
    except SpecError as exc:
        raise exc.with_prefix(what) from None


def _build_termination(entries) -> Tuple[TerminationSpec, ...]:
    """Coerce a termination sequence, indexing errors per entry."""
    criteria = []
    for index, entry in enumerate(entries):
        if isinstance(entry, TerminationSpec):
            criteria.append(entry)
            continue
        try:
            criteria.append(TerminationSpec.from_dict(entry))
        except SpecError as exc:
            raise exc.with_prefix(f"termination[{index}]") from None
    return tuple(criteria)
