"""Declarative session API: specs, the unified façade, and checkpoints.

The high-level entry point of the framework::

    from repro.api import FactCheckSession, SessionSpec, GoalSpec, EffortSpec

    spec = SessionSpec(
        seed=7,
        dataset={"name": "snopes", "seed": 7, "scale": 0.01},
        effort=EffortSpec(goal=GoalSpec(kind="true_precision", threshold=0.9)),
    )
    with FactCheckSession(spec) as session:
        result = session.run()
    print(result.stop_reason, result.final_precision)

Specs serialise to/from JSON (``spec.to_json()`` / ``SessionSpec.from_json``)
and fully determine a run; sessions checkpoint mid-run with
``session.save(path)`` and resume bit-for-bit with
``FactCheckSession.load(path)``.  See ``docs/API.md`` for the lifecycle,
every spec field, and the migration table from the legacy constructors.
"""

from repro.api.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    read_checkpoint,
    write_checkpoint,
)
from repro.api.session import FactCheckSession, SessionResult
from repro.api.specs import (
    GOAL_KINDS,
    SESSION_MODES,
    TERMINATION_KINDS,
    DatasetSpec,
    EffortSpec,
    GoalSpec,
    GuidanceSpec,
    InferenceSpec,
    SessionSpec,
    StreamSourceSpec,
    StreamSpec,
    TerminationSpec,
    UserSpec,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "DatasetSpec",
    "EffortSpec",
    "FactCheckSession",
    "GOAL_KINDS",
    "GoalSpec",
    "GuidanceSpec",
    "InferenceSpec",
    "SESSION_MODES",
    "SessionResult",
    "SessionSpec",
    "StreamSourceSpec",
    "StreamSpec",
    "TERMINATION_KINDS",
    "TerminationSpec",
    "UserSpec",
]
